//! Property-based tests over the public APIs of the substrate crates.

use proptest::prelude::*;

use sirius_nlp::regex::Regex;
use sirius_nlp::stemmer;
use sirius_search::tokenize;
use sirius_speech::features::{fft, hz_to_mel, mel_to_hz};
use sirius_speech::lexicon::{normalize_text, number_to_words};
use sirius_vision::ann::{linear_nearest, KdTree, SearchBudget};
use sirius_vision::image::GrayImage;
use sirius_vision::integral::IntegralImage;
use sirius_dcsim::queue::Mm1;

proptest! {
    #[test]
    fn stemmer_never_grows_words(word in "[a-z]{1,20}") {
        let stemmed = stemmer::stem(&word);
        prop_assert!(stemmed.len() <= word.len());
        prop_assert!(!stemmed.is_empty() || word.is_empty());
    }

    #[test]
    fn stemmer_groups_inflections(stem in "[bcdfgmpt][aeiou][ndrt]") {
        // A CVC stem plus common verbal endings should collapse together.
        let base = stemmer::stem(&stem);
        for suffix in ["ed", "ing", "s"] {
            let inflected = format!("{stem}{suffix}");
            let stemmed = stemmer::stem(&inflected);
            // The stemmed form must begin with (a prefix of) the base stem.
            prop_assert!(
                stemmed.starts_with(&base[..base.len().min(stemmed.len())]),
                "{stem}+{suffix}: {stemmed} vs {base}"
            );
        }
    }

    #[test]
    fn regex_literal_matches_containment(
        hay in "[a-z ]{0,30}",
        needle in "[a-z]{1,5}",
    ) {
        let re = Regex::new(&needle).expect("literal pattern");
        prop_assert_eq!(re.is_match(&hay), hay.contains(&needle));
    }

    #[test]
    fn regex_anchored_literal_is_equality(s in "[a-z]{0,10}", t in "[a-z]{0,10}") {
        let re = Regex::new(&format!("^{s}$")).expect("anchored literal");
        prop_assert_eq!(re.is_match(&t), s == t);
    }

    #[test]
    fn regex_class_matches_char_membership(c in proptest::char::range('a', 'z')) {
        let re = Regex::new("[aeiou]").expect("class");
        prop_assert_eq!(re.is_match(&c.to_string()), "aeiou".contains(c));
    }

    #[test]
    fn tokenizer_output_is_lowercase_alnum(s in ".{0,60}") {
        for token in tokenize::tokenize(&s) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().all(char::is_alphanumeric));
            prop_assert_eq!(token.to_lowercase(), token.clone());
        }
    }

    #[test]
    fn mel_scale_round_trips(hz in 50.0f32..8000.0) {
        let back = mel_to_hz(hz_to_mel(hz));
        prop_assert!((back - hz).abs() / hz < 1e-3);
    }

    #[test]
    fn fft_preserves_energy(xs in prop::collection::vec(-1.0f32..1.0, 32)) {
        // Parseval: sum |x|^2 = (1/N) sum |X|^2.
        let time_energy: f32 = xs.iter().map(|x| x * x).sum();
        let mut re = xs.clone();
        let mut im = vec![0.0f32; xs.len()];
        fft(&mut re, &mut im);
        let freq_energy: f32 = re
            .iter()
            .zip(&im)
            .map(|(r, i)| r * r + i * i)
            .sum::<f32>()
            / xs.len() as f32;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-3 * time_energy.max(1.0));
    }

    #[test]
    fn number_to_words_is_pronounceable(n in 0u64..10_000, ordinal: bool) {
        let words = number_to_words(n, ordinal);
        prop_assert!(!words.is_empty());
        for w in &words {
            prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn normalize_text_is_idempotent(s in "[a-zA-Z0-9 ]{0,40}") {
        let once = normalize_text(&s);
        prop_assert_eq!(normalize_text(&once), once.clone());
    }

    #[test]
    fn integral_image_box_sums_match_naive(
        w in 1usize..12,
        h in 1usize..12,
        seed in 0u32..1000,
    ) {
        let data: Vec<f32> = (0..w * h)
            .map(|i| ((i as u32).wrapping_mul(seed + 1) % 97) as f32 / 97.0)
            .collect();
        let img = GrayImage::from_data(w, h, data);
        let ii = IntegralImage::new(&img);
        let naive: f64 = (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(img.get(x, y)))
            .sum();
        let fast = ii.box_sum(0, 0, w as isize, h as isize);
        prop_assert!((naive - fast).abs() < 1e-6);
    }

    #[test]
    fn kdtree_exact_equals_linear_scan(
        points in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 1..60),
        query in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let tagged: Vec<(Vec<f32>, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        let tree = KdTree::build(tagged.clone());
        let got = tree.nearest(&query, SearchBudget::Exact);
        let expect = linear_nearest(&tagged, &query).expect("non-empty");
        prop_assert!((got.distance_sq - expect.distance_sq).abs() < 1e-4);
    }

    #[test]
    fn mm1_latency_monotone_in_load(mu in 0.5f64..100.0, rho_lo in 0.05f64..0.45) {
        let q = Mm1 { mu };
        let rho_hi = rho_lo + 0.5;
        prop_assert!(q.latency_at_load(rho_hi) > q.latency_at_load(rho_lo));
        prop_assert!(q.latency_at_load(rho_lo) >= 1.0 / mu);
    }
}
