//! Property-style tests over the public APIs of the substrate crates.
//!
//! The cases are generated from a seeded [`ChaCha8Rng`] so every run
//! exercises the same deterministic input distribution; each loop plays
//! the role the proptest strategies used to.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use sirius_dcsim::queue::Mm1;
use sirius_nlp::regex::Regex;
use sirius_nlp::stemmer;
use sirius_search::tokenize;
use sirius_speech::features::{fft, hz_to_mel, mel_to_hz};
use sirius_speech::lexicon::{normalize_text, number_to_words};
use sirius_vision::ann::{linear_nearest, KdTree, SearchBudget};
use sirius_vision::image::GrayImage;
use sirius_vision::integral::IntegralImage;

const CASES: usize = 192;

fn lowercase_word(rng: &mut ChaCha8Rng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
        .collect()
}

fn text_from(rng: &mut ChaCha8Rng, alphabet: &[char], max: usize) -> String {
    let len = rng.gen_range(0..=max);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

#[test]
fn stemmer_never_grows_words() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for _ in 0..CASES {
        let word = lowercase_word(&mut rng, 1, 20);
        let stemmed = stemmer::stem(&word);
        assert!(stemmed.len() <= word.len(), "{word} -> {stemmed}");
        assert!(!stemmed.is_empty() || word.is_empty());
    }
}

#[test]
fn stemmer_groups_inflections() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let onset = ['b', 'c', 'd', 'f', 'g', 'm', 'p', 't'];
    let nucleus = ['a', 'e', 'i', 'o', 'u'];
    let coda = ['n', 'd', 'r', 't'];
    for _ in 0..CASES {
        // A CVC stem plus common verbal endings should collapse together.
        let stem: String = [
            onset[rng.gen_range(0..onset.len())],
            nucleus[rng.gen_range(0..nucleus.len())],
            coda[rng.gen_range(0..coda.len())],
        ]
        .iter()
        .collect();
        let base = stemmer::stem(&stem);
        for suffix in ["ed", "ing", "s"] {
            let inflected = format!("{stem}{suffix}");
            let stemmed = stemmer::stem(&inflected);
            // The stemmed form must begin with (a prefix of) the base stem.
            assert!(
                stemmed.starts_with(&base[..base.len().min(stemmed.len())]),
                "{stem}+{suffix}: {stemmed} vs {base}"
            );
        }
    }
}

#[test]
fn regex_literal_matches_containment() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let hay_alphabet: Vec<char> = ('a'..='z').chain([' ']).collect();
    for _ in 0..CASES {
        let hay = text_from(&mut rng, &hay_alphabet, 30);
        let needle = lowercase_word(&mut rng, 1, 5);
        let re = Regex::new(&needle).expect("literal pattern");
        assert_eq!(
            re.is_match(&hay),
            hay.contains(&needle),
            "/{needle}/ on {hay:?}"
        );
    }
}

#[test]
fn regex_anchored_literal_is_equality() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..CASES {
        let s = lowercase_word(&mut rng, 0, 10);
        // Mix in exact copies so the equal branch is exercised too.
        let t = if rng.gen_bool(0.3) {
            s.clone()
        } else {
            lowercase_word(&mut rng, 0, 10)
        };
        let re = Regex::new(&format!("^{s}$")).expect("anchored literal");
        assert_eq!(re.is_match(&t), s == t, "^{s}$ on {t:?}");
    }
}

#[test]
fn regex_class_matches_char_membership() {
    let re = Regex::new("[aeiou]").expect("class");
    for c in 'a'..='z' {
        assert_eq!(re.is_match(&c.to_string()), "aeiou".contains(c), "{c}");
    }
}

#[test]
fn tokenizer_output_is_lowercase_alnum() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let alphabet: Vec<char> = ('a'..='z')
        .chain('A'..='Z')
        .chain('0'..='9')
        .chain([' ', '.', ',', '!', '-', 'é', 'ß', '\t'])
        .collect();
    for _ in 0..CASES {
        let s = text_from(&mut rng, &alphabet, 60);
        for token in tokenize::tokenize(&s) {
            assert!(!token.is_empty());
            assert!(
                token.chars().all(char::is_alphanumeric),
                "{token:?} from {s:?}"
            );
            assert_eq!(token.to_lowercase(), token.clone());
        }
    }
}

#[test]
fn mel_scale_round_trips() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for _ in 0..CASES {
        let hz = rng.gen_range(50.0f32..8000.0);
        let back = mel_to_hz(hz_to_mel(hz));
        assert!((back - hz).abs() / hz < 1e-3, "{hz} -> {back}");
    }
}

#[test]
fn fft_preserves_energy() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..CASES {
        let xs: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Parseval: sum |x|^2 = (1/N) sum |X|^2.
        let time_energy: f32 = xs.iter().map(|x| x * x).sum();
        let mut re = xs.clone();
        let mut im = vec![0.0f32; xs.len()];
        fft(&mut re, &mut im);
        let freq_energy: f32 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f32>() / xs.len() as f32;
        assert!((time_energy - freq_energy).abs() <= 1e-3 * time_energy.max(1.0));
    }
}

#[test]
fn number_to_words_is_pronounceable() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for _ in 0..CASES {
        let n = rng.gen_range(0u64..10_000);
        let ordinal = rng.gen_bool(0.5);
        let words = number_to_words(n, ordinal);
        assert!(!words.is_empty(), "{n}");
        for w in &words {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{n}: {w}");
        }
    }
}

#[test]
fn normalize_text_is_idempotent() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let alphabet: Vec<char> = ('a'..='z')
        .chain('A'..='Z')
        .chain('0'..='9')
        .chain([' '])
        .collect();
    for _ in 0..CASES {
        let s = text_from(&mut rng, &alphabet, 40);
        let once = normalize_text(&s);
        assert_eq!(normalize_text(&once), once.clone(), "{s:?}");
    }
}

#[test]
fn integral_image_box_sums_match_naive() {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..12);
        let h = rng.gen_range(1usize..12);
        let seed = rng.gen_range(0u32..1000);
        let data: Vec<f32> = (0..w * h)
            .map(|i| ((i as u32).wrapping_mul(seed + 1) % 97) as f32 / 97.0)
            .collect();
        let img = GrayImage::from_data(w, h, data);
        let ii = IntegralImage::new(&img);
        let naive: f64 = (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(img.get(x, y)))
            .sum();
        let fast = ii.box_sum(0, 0, w as isize, h as isize);
        assert!((naive - fast).abs() < 1e-6, "{w}x{h} seed {seed}");
    }
}

#[test]
fn kdtree_exact_equals_linear_scan() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..60);
        let tagged: Vec<(Vec<f32>, u32)> = (0..n)
            .map(|i| {
                (
                    (0..4).map(|_| rng.gen_range(-10.0f32..10.0)).collect(),
                    i as u32,
                )
            })
            .collect();
        let query: Vec<f32> = (0..4).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let tree = KdTree::build(tagged.clone());
        let got = tree.nearest(&query, SearchBudget::Exact);
        let expect = linear_nearest(&tagged, &query).expect("non-empty");
        assert!(
            (got.distance_sq - expect.distance_sq).abs() < 1e-4,
            "case {case}"
        );
    }
}

#[test]
fn sirius_pipeline_is_policy_invariant() {
    use sirius::pipeline::{Sirius, SiriusConfig};
    use sirius::taxonomy::QueryKind;
    use sirius_suite::parallel::{ExecPolicy, Strategy};

    let mut sirius = Sirius::build(SiriusConfig::default());
    let prepared = sirius::prepare_input_set(&sirius, 777);
    // One query per class covers the action, QA and image-matching paths.
    let sample: Vec<_> = QueryKind::ALL
        .iter()
        .filter_map(|&k| prepared.iter().find(|p| p.spec.kind == k))
        .collect();
    assert!(!sample.is_empty());
    let essence = |r: sirius::pipeline::SiriusResponse| (r.recognized, r.outcome, r.matched_venue);
    let base: Vec<_> = sample
        .iter()
        .map(|p| essence(sirius.process(&p.input())))
        .collect();
    for threads in [1, 2, 8] {
        for strategy in Strategy::ALL {
            sirius.set_exec_policy(ExecPolicy::new(threads, strategy));
            for (p, expect) in sample.iter().zip(&base) {
                let got = essence(sirius.process(&p.input()));
                assert_eq!(&got, expect, "threads {threads} strategy {strategy}");
            }
        }
    }
}

#[test]
fn mm1_latency_monotone_in_load() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    for _ in 0..CASES {
        let mu = rng.gen_range(0.5f64..100.0);
        let rho_lo = rng.gen_range(0.05f64..0.45);
        let q = Mm1 { mu };
        let rho_hi = rho_lo + 0.5;
        assert!(q.latency_at_load(rho_hi) > q.latency_at_load(rho_lo));
        assert!(q.latency_at_load(rho_lo) >= 1.0 / mu);
    }
}
