//! Cross-crate persistence integration: train the whole assistant, write it
//! to disk, restore it in a fresh state, and re-run the full input set.

use std::sync::OnceLock;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusOutcome};
use sirius::prepare_input_set;

fn model_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| Sirius::build(SiriusConfig::default()).to_bytes())
}

#[test]
fn restored_assistant_passes_the_input_set() {
    let restored = Sirius::from_bytes(model_bytes()).expect("decode");
    let prepared = prepare_input_set(&restored, 0xabcd);
    let mut correct = 0usize;
    for p in &prepared {
        let response = restored.process(&p.input());
        let ok = match &response.outcome {
            SiriusOutcome::Action(a) => a.action == p.spec.expected,
            SiriusOutcome::Answer(Some(ans)) => ans.eq_ignore_ascii_case(p.spec.expected),
            SiriusOutcome::Answer(None) => false,
        };
        correct += usize::from(ok);
    }
    assert!(
        correct >= 33,
        "restored assistant: only {correct}/42 queries handled correctly"
    );
}

#[test]
fn model_file_round_trips_through_disk() {
    let bytes = model_bytes();
    let path = std::env::temp_dir().join("sirius_test_models.bin");
    std::fs::write(&path, bytes).expect("write");
    let read = std::fs::read(&path).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(&read, bytes);
    let restored = Sirius::from_bytes(&read).expect("decode");
    assert_eq!(restored.venues().len(), 10);
}

#[test]
fn restored_config_matches_original() {
    // A restored assistant must carry the configuration it was built with —
    // from_bytes used to silently reset corpus/asr/qa/imm to defaults, which
    // broke any rebuild-from-restored-config workflow.
    let config = SiriusConfig {
        crf_train_sentences: 150,
        qa: sirius_nlp::qa::QaConfig { top_k: 9 },
        ..SiriusConfig::default()
    };
    let sirius = Sirius::build(config.clone());
    let restored = Sirius::from_bytes(&sirius.to_bytes()).expect("decode");
    let rc = restored.config();
    assert_eq!(rc.seed, config.seed);
    assert_eq!(rc.corpus, config.corpus);
    assert_eq!(rc.asr, config.asr);
    assert_eq!(rc.qa, config.qa);
    assert_eq!(rc.imm, config.imm);
    assert_eq!(rc.image_size, config.image_size);
    assert_eq!(rc.crf_train_sentences, config.crf_train_sentences);
}

#[test]
fn every_truncation_point_fails_cleanly() {
    // Decoding must never panic on truncated inputs, only error.
    let bytes = model_bytes();
    for cut in [0, 1, 7, 64, bytes.len() / 2, bytes.len() - 1] {
        let r = Sirius::from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "truncation at {cut} decoded successfully");
    }
}
