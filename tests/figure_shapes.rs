//! Shape tests for the paper's headline results: who wins, by roughly what
//! factor, and where the crossovers fall (see DESIGN.md Section 4).

use sirius_accel::model::{kernel_profiles, paper};
use sirius_accel::platform::PlatformKind;
use sirius_accel::service::{perf_per_watt_vs_cmp, service_speedup, ServiceKind};
use sirius_dcsim::design::{
    homogeneous_design, mean_query_latency_reduction, query_level_metrics, Objective,
};
use sirius_dcsim::gap;
use sirius_dcsim::tco::TcoParams;

#[test]
fn table5_modeled_within_25_percent_of_paper() {
    for profile in kernel_profiles() {
        for (col, kind) in PlatformKind::ALL.iter().enumerate() {
            let modeled = profile.modeled_speedup(*kind);
            let published = paper::table5(profile.name, col).expect("kernel row");
            let ratio = modeled / published;
            assert!(
                (0.75..=1.3).contains(&ratio),
                "{} on {kind}: {modeled:.1} vs paper {published:.1}",
                profile.name
            );
        }
    }
}

#[test]
fn fpga_wins_every_kernel_except_fd() {
    for profile in kernel_profiles() {
        let fpga = profile.modeled_speedup(PlatformKind::Fpga);
        let gpu = profile.modeled_speedup(PlatformKind::Gpu);
        if profile.name == "FD" {
            assert!(gpu > fpga, "FD should prefer the GPU");
        } else {
            assert!(fpga > gpu, "{} should prefer the FPGA", profile.name);
        }
    }
}

#[test]
fn headline_latency_reductions() {
    // Paper: "GPU- and FPGA-accelerated servers improve the query latency on
    // average by 10x and 16x."
    let gpu = mean_query_latency_reduction(PlatformKind::Gpu);
    let fpga = mean_query_latency_reduction(PlatformKind::Fpga);
    assert!((7.0..=14.0).contains(&gpu), "GPU mean {gpu:.1}");
    assert!((11.0..=21.0).contains(&fpga), "FPGA mean {fpga:.1}");
    assert!(fpga > gpu);
}

#[test]
fn headline_tco_reductions() {
    // Paper: "GPU- and FPGA-accelerated servers can reduce the TCO of
    // datacenters by 2.6x and 1.4x." Our TCO model reproduces the order of
    // magnitude; see EXPERIMENTS.md for the documented divergence on the
    // GPU/FPGA ordering.
    let params = TcoParams::default();
    for platform in [PlatformKind::Gpu, PlatformKind::Fpga] {
        let metrics = query_level_metrics(platform, &params);
        let mean_reduction: f64 =
            metrics.iter().map(|m| 1.0 / m.tco_normalized).sum::<f64>() / metrics.len() as f64;
        assert!(
            (1.2..=4.0).contains(&mean_reduction),
            "{platform}: mean TCO reduction {mean_reduction:.2}"
        );
    }
}

#[test]
fn scalability_gap_exceeds_two_orders_of_magnitude() {
    // Paper Figure 7a: 15 s vs 91 ms -> 165x.
    let g = gap::scalability_gap(15.0, 0.091);
    assert!(g > 100.0, "gap {g:.0}");
    // Acceleration pulls the gap down by the mean latency reduction.
    let bridged = gap::bridged_gap(g, mean_query_latency_reduction(PlatformKind::Fpga));
    assert!(bridged < g / 10.0, "bridged {bridged:.0}");
}

#[test]
fn design_objective_winners_match_table8() {
    let params = TcoParams::default();
    let all = PlatformKind::ALL;
    assert_eq!(
        homogeneous_design(Objective::MinLatency, &all, &params),
        Some(PlatformKind::Fpga)
    );
    assert_eq!(
        homogeneous_design(Objective::MinTcoWithLatencyConstraint, &all, &params),
        Some(PlatformKind::Gpu)
    );
    assert_eq!(
        homogeneous_design(Objective::MaxEfficiencyWithLatencyConstraint, &all, &params),
        Some(PlatformKind::Fpga)
    );
}

#[test]
fn fpga_energy_efficiency_dominates() {
    // Paper Figure 15: FPGA perf/W exceeds everything, >12x over the CMP for
    // most services.
    let mut above_12 = 0;
    for s in ServiceKind::ALL {
        let fpga = perf_per_watt_vs_cmp(s, PlatformKind::Fpga);
        for other in [
            PlatformKind::Gpu,
            PlatformKind::Phi,
            PlatformKind::Multicore,
        ] {
            assert!(fpga > perf_per_watt_vs_cmp(s, other), "{s} vs {other}");
        }
        if fpga > 12.0 {
            above_12 += 1;
        }
    }
    assert!(above_12 >= 3, "only {above_12}/4 services above 12x");
}

#[test]
fn gpu_vs_fpga_tradeoff_without_fpga() {
    // Paper: "replacing FPGAs using GPUs leads to a 66% longer latency, but
    // in return achieves a 47% TCO reduction" — i.e. the GPU trades latency
    // for cost. Check the direction: FPGA faster on average, GPU cheaper
    // per server.
    let params = TcoParams::default();
    let gpu_cost = sirius_dcsim::tco::monthly_tco(
        &sirius_dcsim::ServerConfig::with_accelerator(PlatformKind::Gpu),
        &params,
    )
    .total();
    let fpga_cost = sirius_dcsim::tco::monthly_tco(
        &sirius_dcsim::ServerConfig::with_accelerator(PlatformKind::Fpga),
        &params,
    )
    .total();
    assert!(gpu_cost < fpga_cost, "GPU server must be cheaper");
    // Geometric mean across services (the GPU's outlier ASR-DNN win would
    // dominate an arithmetic mean).
    let mean = |p: PlatformKind| -> f64 {
        ServiceKind::ALL
            .iter()
            .map(|&s| service_speedup(s, p))
            .product::<f64>()
            .powf(0.25)
    };
    assert!(mean(PlatformKind::Fpga) > mean(PlatformKind::Gpu));
}
