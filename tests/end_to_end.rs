//! Cross-crate integration tests: the full Sirius pipeline driven through
//! its public API, exercising speech, vision, NLP and search together.

use std::sync::OnceLock;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome};
use sirius::taxonomy::QueryKind;
use sirius::{prepare_input_set, PreparedQuery};
use sirius_speech::asr::AcousticModelKind;
use sirius_speech::synth::{SynthConfig, Synthesizer};

fn context() -> &'static (Sirius, Vec<PreparedQuery>) {
    static CTX: OnceLock<(Sirius, Vec<PreparedQuery>)> = OnceLock::new();
    CTX.get_or_init(|| {
        let sirius = Sirius::build(SiriusConfig::default());
        let prepared = prepare_input_set(&sirius, 0xe2e);
        (sirius, prepared)
    })
}

#[test]
fn input_set_accuracy_across_all_classes() {
    let (sirius, prepared) = context();
    let mut correct = 0usize;
    for p in prepared {
        let response = sirius.process(&p.input());
        let ok = match &response.outcome {
            SiriusOutcome::Action(a) => a.action == p.spec.expected,
            SiriusOutcome::Answer(Some(ans)) => ans.eq_ignore_ascii_case(p.spec.expected),
            SiriusOutcome::Answer(None) => false,
        };
        correct += usize::from(ok);
    }
    // 42 queries across three classes; demand strong end-to-end accuracy.
    assert!(correct >= 33, "only {correct}/42 queries handled correctly");
}

#[test]
fn dnn_asr_path_answers_questions_too() {
    let (sirius, prepared) = context();
    let vq = prepared
        .iter()
        .find(|p| p.spec.kind == QueryKind::VoiceQuery)
        .expect("input set has VQ");
    let response = sirius.process_with(&vq.input(), AcousticModelKind::Dnn);
    assert!(matches!(response.outcome, SiriusOutcome::Answer(_)));
    assert!(!response.recognized.is_empty());
}

#[test]
fn viq_resolves_venue_through_image_matching() {
    let (sirius, prepared) = context();
    let mut resolved = 0usize;
    let mut total = 0usize;
    for p in prepared
        .iter()
        .filter(|p| p.spec.kind == QueryKind::VoiceImageQuery)
    {
        total += 1;
        let response = sirius.process(&p.input());
        if let Some(venue) = &response.matched_venue {
            if venue.eq_ignore_ascii_case(p.spec.venue.expect("VIQ has venue")) {
                resolved += 1;
            }
        }
    }
    assert!(
        resolved * 10 >= total * 8,
        "only {resolved}/{total} venues resolved from images"
    );
}

#[test]
fn latency_ordering_matches_figure_7b() {
    // VC exercises ASR only; VIQ exercises ASR + QA + IMM. Mean latencies
    // must be ordered VC < VIQ (paper Figure 7b).
    let (sirius, prepared) = context();
    let mean = |kind: QueryKind| -> f64 {
        let xs: Vec<f64> = prepared
            .iter()
            .filter(|p| p.spec.kind == kind)
            .map(|p| {
                let t = std::time::Instant::now();
                let _ = sirius.process(&p.input());
                t.elapsed().as_secs_f64()
            })
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let vc = mean(QueryKind::VoiceCommand);
    let viq = mean(QueryKind::VoiceImageQuery);
    assert!(
        viq > vc,
        "VIQ ({viq:.3}s) should be slower than VC ({vc:.3}s)"
    );
}

#[test]
fn out_of_vocabulary_audio_degrades_gracefully() {
    let (sirius, _) = context();
    // Words never seen in training: decoding still returns *something* from
    // the closed vocabulary without panicking.
    let utt = Synthesizer::new(123, SynthConfig::default()).say("zephyr quixotic vortex");
    let response = sirius.process(&SiriusInput {
        audio: utt.samples,
        image: None,
    });
    // The outcome may be an action or an (empty) answer; the pipeline just
    // must not crash and must report timing.
    assert!(response.timing.total > std::time::Duration::ZERO);
}

#[test]
fn silence_only_audio_is_handled() {
    let (sirius, _) = context();
    let response = sirius.process(&SiriusInput {
        audio: vec![0.0; 16_000],
        image: None,
    });
    assert!(response.timing.asr.total > std::time::Duration::ZERO);
}

#[test]
fn wrong_image_still_answers_with_some_venue() {
    let (sirius, prepared) = context();
    let viq = prepared
        .iter()
        .find(|p| p.spec.kind == QueryKind::VoiceImageQuery)
        .expect("has VIQ");
    // Supply an unrelated procedural image: matching may pick any venue but
    // the pipeline must still produce a QA-routed response.
    let noise_image = sirius_vision::synth::generate_scene(0xdead, 160, 160);
    let response = sirius.process(&SiriusInput {
        audio: viq.utterance.samples.clone(),
        image: Some(noise_image),
    });
    assert!(matches!(response.outcome, SiriusOutcome::Answer(_)));
    assert!(response.timing.imm.is_some());
}
