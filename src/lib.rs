//! # sirius-e2e
//!
//! Workspace-level integration harness for the Sirius reproduction. The
//! interesting code lives in the member crates; this package hosts the
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). See the README for the crate map.

pub use sirius;
pub use sirius_accel;
pub use sirius_dcsim;
pub use sirius_nlp;
pub use sirius_search;
pub use sirius_speech;
pub use sirius_suite;
pub use sirius_vision;
