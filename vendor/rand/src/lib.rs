//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships the subset of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`SeedableRng`] (with the PCG32-based `seed_from_u64` fill
//! of `rand_core` 0.6, so seeds map to the same key material), the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`, `gen`) and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Integer ranges are sampled with Lemire's widening-multiply rejection
//! method and float ranges with the standard 24/53-bit mantissa conversion,
//! matching the statistical behaviour (not the exact stream) of `rand`.

#![warn(missing_docs)]

/// Core RNG interface: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG deterministically constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream used by
    /// `rand_core` 0.6, then delegates to [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Uniform `u64` in `[0, bound)` via Lemire's rejection method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply maps a 64-bit word onto [0, bound); reject the
    // low-product zone that would bias small buckets.
    let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(bound);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                // Reinterpret the wrapped difference in the unsigned
                // counterpart before widening, so signed spans don't
                // sign-extend.
                let span = high.wrapping_sub(low) as $u as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low > high");
                let span = (high.wrapping_sub(low) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive u64 range: every word is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: low > high");
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        low + unit * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: low > high");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// A type producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Generates one uniformly distributed value.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::generate(self) < p
    }

    /// Generates a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            // SplitMix64: decorrelates the counter stream.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(d > 0.0 && d < 1.0);
        }
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = Counter(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_roughly_respected() {
        let mut rng = Counter(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = Counter(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
