//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model-description
//! types but never serializes them through serde (persistence uses
//! `sirius-codec`). These derives therefore expand to nothing, which keeps
//! the annotated sources identical to what they would be with the real
//! crate while requiring no registry access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
