//! Minimal, API-compatible stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. This shim covers the subset of the API the Sirius benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — and reports wall-clock
//! statistics (min/mean/max over the sample set) on stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        // One untimed warm-up pass, then `sample_size` timed samples.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            samples.push(bencher.elapsed);
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            self.name,
            samples.len()
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routine_expected_number_of_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            calls += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_formats_with_parameter() {
        assert_eq!(
            BenchmarkId::new("viterbi", 250u64).to_string(),
            "viterbi/250"
        );
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
