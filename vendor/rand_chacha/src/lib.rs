//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 stream cipher (Bernstein's ChaCha with 8
//! rounds, 64-bit block counter, zero nonce) exposed through the vendored
//! [`rand`] shim traits. The keystream is a faithful ChaCha8 keystream;
//! only the buffering order relative to the real `rand_chacha` crate
//! differs (blocks are consumed strictly sequentially here).

#![warn(missing_docs)]

pub use rand as rand_core;
use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A cryptographically seeded deterministic generator: ChaCha with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12, 13).
    counter: u64,
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// `"expand 32-byte k"` — the ChaCha constant words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14/15 (nonce) stay zero: one stream per seed.
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buffer.iter_mut().zip(state.iter().zip(&initial)) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn matches_chacha8_reference_keystream() {
        // ChaCha8 with an all-zero 256-bit key, zero nonce, counter 0: the
        // first keystream words from the independent reference
        // implementation in the `chacha` test vectors
        // (first block bytes 3e00ef2f895f40d67f5bb8e81f09a5a1...).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expect_first_bytes = [0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6];
        let w0 = rng.next_u32().to_le_bytes();
        let w1 = rng.next_u32().to_le_bytes();
        assert_eq!(&expect_first_bytes[..4], &w0);
        assert_eq!(&expect_first_bytes[4..], &w1);
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Consume more than one 16-word block and check basic uniformity.
        let vals: Vec<u32> = (0..160).map(|_| rng.next_u32()).collect();
        let mut sorted = vals.clone();
        sorted.dedup();
        assert!(sorted.len() > 150, "keystream repeats suspiciously");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10 {
            let _ = rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
        assert_eq!(rng.gen_range(0..1000usize), fork.gen_range(0..1000usize));
    }
}
