//! Offline stand-in for `serde`.
//!
//! The workspace's accelerator and datacenter-model crates annotate their
//! spec types with `#[derive(Serialize, Deserialize)]` but persist nothing
//! through serde (all persistence goes through `sirius-codec`). This shim
//! re-exports the no-op derives so those sources compile unchanged in the
//! offline build container.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
