#!/usr/bin/env bash
# Regenerates BENCH_server.json: the staged-runtime load sweep (open-loop
# latency-vs-load against the M/M/1 prediction, plus closed-loop saturation
# throughput). Recipe in EXPERIMENTS.md.
#
# Usage: scripts/bench_server.sh [QUERIES] [WORKERS]
#   QUERIES  arrivals per load point (default 100)
#   WORKERS  workers per heavy stage for the saturation run (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

QUERIES="${1:-100}"
WORKERS="${2:-4}"

cargo build --release -p sirius-bench --bin bench_server
./target/release/bench_server --queries "$QUERIES" --workers "$WORKERS" > BENCH_server.json
echo "==> wrote BENCH_server.json"
