#!/usr/bin/env bash
# Regenerates BENCH_server.json: the staged-runtime load sweep (open-loop
# latency-vs-load against the M/M/1 prediction, the shed-on-full vs
# deadline-aware admission-policy head-to-head with its M/M/1/K shed-rate
# cross-check, the cross-query ASR batching policy sweep with its Pareto
# frontier, the streaming-ASR sweep over chunk size x offered load, the
# sharded-cluster sweep over replica count x routing policy, the
# multi-tenant cache sweep over offered load x result-cache capacity with
# its consistent-hash affinity head-to-head, the loopback TCP front-end
# sweep over closed-loop client counts, plus closed-loop saturation
# throughput). Recipe in EXPERIMENTS.md.
#
# Usage: scripts/bench_server.sh [QUERIES] [WORKERS]
#   QUERIES  arrivals per load point (default 100)
#   WORKERS  workers per heavy stage for the saturation run (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

QUERIES="${1:-100}"
WORKERS="${2:-4}"

cargo build --release -p sirius-bench --bin bench_server
./target/release/bench_server --queries "$QUERIES" --workers "$WORKERS" > BENCH_server.json

# The bench itself verifies that staged and admitted-query outputs are
# bit-identical to the serial pipeline; fail loudly if either check, or the
# policy-sweep accounting identity, regressed.
python3 - <<'EOF'
import json
with open("BENCH_server.json") as f:
    bench = json.load(f)
assert bench["saturation"]["outputs_match_serial"] is True, "saturation outputs diverged from serial"
sweep = bench["policy_sweep"]
assert sweep["outputs_match_serial"] is True, "policy-sweep outputs diverged from serial"
assert sweep["accounting_balanced"] is True, "admission ledger did not balance"
batch = bench["batch_sweep"]
assert batch["outputs_match_serial"] is True, "batched outputs diverged from serial DNN"
assert batch["accounting_balanced"] is True, "batch-sweep accounting did not balance"
assert any(p["max_batch"] > 1 and p["batch_size_max"] > 1 for p in batch["points"]), \
    "no cross-query batch ever formed"
stream = bench["streaming_sweep"]
assert stream["outputs_match_serial"] is True, "streaming outputs diverged from serial"
assert stream["from_end_p50_below_serial_floor_at_low_rho"] is True, \
    "streaming from-end p50 did not beat the serial sum-of-stages floor at rho <= 0.8"
assert all(p["partials_per_query"] > 0 for p in stream["points"]), \
    "a streaming point emitted no partial hypotheses"
cluster = bench["cluster_sweep"]
assert cluster["outputs_match_serial"] is True, \
    "sharded cluster outputs diverged from serial"
assert cluster["accounting_balanced"] is True, \
    "merged cluster telemetry did not account for every query exactly once"
assert cluster["least_sojourn_p99_le_round_robin_at_peak"] is True, \
    "least-sojourn p99 exceeded the round-robin noise bound at the peak routing load"
cache = bench["cache_sweep"]
assert cache["outputs_match_serial"] is True, \
    "cache-sweep outputs diverged from serial (a cache hit changed an answer)"
assert cache["accounting_balanced"] is True, \
    "per-tenant admission ledger did not balance"
assert cache["throughput_increases_with_hit_ratio"] is True, \
    "throughput did not rise with the measured hit ratio at rho >= 1.1"
assert cache["premium_protected_under_overload"] is True, \
    "premium p99 or shed ordering broke under rho = 1.5 overload"
assert any(p["capacity"] > 0 and p["hit_ratio"] > 0 for p in cache["points"]), \
    "no cache-enabled point ever hit"
affinity = bench["cache_affinity"]
assert affinity["outputs_match_serial"] is True, \
    "cache-affinity outputs diverged from serial"
assert affinity["hash_beats_round_robin"] is True, \
    "consistent-hash affinity did not beat round-robin aggregate hit ratio"
net = bench["net_sweep"]
assert net["outputs_match_serial"] is True, \
    "remote answers over the TCP front-end diverged from serial"
assert net["frames_balanced"] is True, \
    "net frame accounting did not balance (frames_in != frames_out != queries)"
assert net["ledger_balanced"] is True, \
    "per-tenant ledger did not balance across remote submissions"
assert net["scrape_ok"] is True, \
    "GET /metrics on the serving socket did not return valid Prometheus text"
assert len(net["points"]) >= 4 and all(p["qps"] > 0 for p in net["points"]), \
    "net sweep is missing closed-loop client points"
print("==> outputs_match_serial and accounting checks passed")
EOF
echo "==> wrote BENCH_server.json"
