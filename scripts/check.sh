#!/usr/bin/env bash
# Full repo gate: formatting, lints, release build, tests.
# Everything runs offline against the vendored shim crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --release -p sirius-bench --bin bench_server --bin bench_obs"
cargo build --release -p sirius-bench --bin bench_server --bin bench_obs

echo "==> cargo test --release -p sirius-obs -q (observability unit gates)"
cargo test --release -p sirius-obs -q

echo "==> cargo test --release -p sirius-cache -q (keyed result-cache unit gates)"
cargo test --release -p sirius-cache -q

echo "==> cargo test --release -p sirius-server -q (concurrency + telemetry gates)"
cargo test --release -p sirius-server -q

echo "==> cargo test --release -p sirius-server --test admission -q (deadline-aware admission gates)"
cargo test --release -p sirius-server --test admission -q

echo "==> cargo test --release -p sirius-server --test batching -q (cross-query batching equivalence gate)"
cargo test --release -p sirius-server --test batching -q

echo "==> cargo test --release -p sirius-speech --test streaming_equivalence -q (streaming ASR bit-identity + stable-prefix gates)"
cargo test --release -p sirius-speech --test streaming_equivalence -q

echo "==> cargo test --release -p sirius-server --test streaming -q (streaming serving equivalence + telemetry gates)"
cargo test --release -p sirius-server --test streaming -q

echo "==> cargo test --release -p sirius --test cluster_equivalence -q (sharded scatter-gather bit-identity gates)"
cargo test --release -p sirius --test cluster_equivalence -q

echo "==> cargo test --release -p sirius-server --test cluster -q (cluster routing equivalence + shared-registry gates)"
cargo test --release -p sirius-server --test cluster -q

echo "==> cargo test --release -p sirius-server --test qos -q (tenant-class admission + result-cache bit-identity gates)"
cargo test --release -p sirius-server --test qos -q

echo "==> cargo test --release -p sirius-server --test net -q (loopback network front-end + hostile-frame gates)"
cargo test --release -p sirius-server --test net -q

echo "==> cargo test --release -p sirius-codec -q (wire codec hardening gates)"
cargo test --release -p sirius-codec -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> all checks passed"
