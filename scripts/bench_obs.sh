#!/usr/bin/env bash
# Regenerates BENCH_obs.json: the observability overhead gate (per-primitive
# ns/op, the full per-query disabled-tracing obs block, and its fraction of
# the mean serial query latency — must stay below 1%). Recipe in
# EXPERIMENTS.md. Exits non-zero if the gate fails.
#
# Usage: scripts/bench_obs.sh [REPS]
#   REPS  A/B serial loop pairs (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-3}"

cargo build --release -p sirius-bench --bin bench_obs
./target/release/bench_obs --reps "$REPS" > BENCH_obs.json
echo "==> wrote BENCH_obs.json"
