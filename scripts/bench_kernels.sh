#!/usr/bin/env bash
# Regenerates BENCH_kernels.json: the kernel speedup summary for the lazy
# beam-driven scoring + GEMM batching work (recipe in EXPERIMENTS.md).
#
# Usage: scripts/bench_kernels.sh [REPS]   (default 9; medians over reps)
set -euo pipefail
cd "$(dirname "$0")/.."

REPS="${1:-9}"

cargo build --release -p sirius-bench --bin bench_kernels
./target/release/bench_kernels --reps "$REPS" > BENCH_kernels.json
echo "==> wrote BENCH_kernels.json"
