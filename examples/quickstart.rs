//! Quickstart: build Sirius, speak one command and one question.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome};
use sirius_speech::synth::{SynthConfig, Synthesizer};

fn main() {
    println!("training Sirius (ASR + QA + IMM models)...");
    let sirius = Sirius::build(SiriusConfig::default());
    let mut voice = Synthesizer::new(2026, SynthConfig::default());

    // A voice command: ASR -> query classifier -> device action.
    let utt = voice.say("Set my alarm for 8am");
    let response = sirius.process(&SiriusInput {
        audio: utt.samples,
        image: None,
    });
    println!("\nyou said:   {:?}", utt.words.join(" "));
    println!("recognized: {:?}", response.recognized);
    match &response.outcome {
        SiriusOutcome::Action(a) => println!("action:     {} ({:?})", a.action, a.command.trim()),
        SiriusOutcome::Answer(_) => println!("unexpectedly routed to QA"),
    }

    // A voice query: ASR -> QA over the fact corpus.
    let utt = voice.say("What is the capital of Italy");
    let response = sirius.process(&SiriusInput {
        audio: utt.samples,
        image: None,
    });
    println!("\nyou said:   {:?}", utt.words.join(" "));
    println!("recognized: {:?}", response.recognized);
    match &response.outcome {
        SiriusOutcome::Answer(Some(answer)) => println!("answer:     {answer}"),
        SiriusOutcome::Answer(None) => println!("no answer found"),
        SiriusOutcome::Action(_) => println!("unexpectedly routed to an action"),
    }
    println!(
        "\nlatency: asr {:?} + qa {:?} (total {:?})",
        response.timing.asr.total,
        response.timing.qa.as_ref().map(|q| q.total),
        response.timing.total
    );
}
