//! Mobile-visual-search style demo of the IMM service: build an image
//! database of storefront scenes, then match photos taken from different
//! viewpoints (paper Section 2.3.2).
//!
//! ```text
//! cargo run --release --example vision_search
//! ```

use sirius_vision::db::{ImageDatabase, MatchConfig};
use sirius_vision::synth;

fn main() {
    let venues = [
        "Luigi Trattoria",
        "Sakura Sushi House",
        "Blue Bottle Cafe",
        "Golden Gate Diner",
        "Crown Books",
        "Harbor Grill",
    ];
    println!("indexing {} venue images...", venues.len());
    let scenes: Vec<_> = (0..venues.len() as u64)
        .map(|s| synth::generate_scene(1000 + s, 192, 192))
        .collect();
    let db = ImageDatabase::build(scenes.iter(), MatchConfig::default());
    println!(
        "database: {} images, {} SURF descriptors\n",
        db.num_images(),
        db.num_descriptors()
    );

    let mut correct = 0;
    for (i, scene) in scenes.iter().enumerate() {
        let photo = synth::random_view(scene, 9000 + i as u64);
        let result = db.match_image(&photo);
        let matched = result
            .best
            .map(|id| venues[id.0 as usize])
            .unwrap_or("<no match>");
        let ok = result.best.map(|id| id.0 as usize) == Some(i);
        correct += usize::from(ok);
        println!(
            "photo of {:<22} -> {:<22} [{}]  ({} keypoints, FE {:?}, FD {:?}, ANN {:?})",
            venues[i],
            matched,
            if ok { "ok" } else { "MISS" },
            result.query_keypoints,
            result.timing.feature_extraction,
            result.timing.feature_description,
            result.timing.ann_search,
        );
    }
    println!("\nmatched {correct}/{} photos", venues.len());
}
