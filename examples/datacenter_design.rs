//! Explores the paper's datacenter design space (Section 5): service
//! speedups per accelerator, TCO, and the homogeneous/heterogeneous design
//! choices of Tables 8 and 9.
//!
//! ```text
//! cargo run --example datacenter_design
//! ```

use sirius_accel::platform::PlatformKind;
use sirius_accel::service::{service_speedup, ServiceKind};
use sirius_dcsim::design::{
    design_point, heterogeneous_design, homogeneous_design, mean_query_latency_reduction, Objective,
};
use sirius_dcsim::gap;
use sirius_dcsim::tco::TcoParams;

fn main() {
    let params = TcoParams::default();

    println!("service speedups over a single Haswell core (paper Fig 14):");
    for s in ServiceKind::ALL {
        print!("  {s:<10}");
        for p in PlatformKind::ALL {
            print!("  {p}: {:>6.1}x", service_speedup(s, p));
        }
        println!();
    }

    println!("\nlatency vs TCO trade-off (paper Fig 19):");
    for s in ServiceKind::ALL {
        for p in [PlatformKind::Gpu, PlatformKind::Fpga] {
            let d = design_point(s, p, &params);
            println!(
                "  {s:<10} on {p:<4}: latency {:>6.1}x better, TCO {:>4.1}x better",
                d.latency_improvement,
                1.0 / d.tco_normalized
            );
        }
    }

    println!("\nhomogeneous DC designs (paper Table 8):");
    for obj in [
        Objective::MinLatency,
        Objective::MinTcoWithLatencyConstraint,
        Objective::MaxEfficiencyWithLatencyConstraint,
    ] {
        let pick = homogeneous_design(obj, &PlatformKind::ALL, &params);
        println!(
            "  {obj:<35} -> {}",
            pick.map_or("-".into(), |p| p.to_string())
        );
    }

    println!("\nheterogeneous (partitioned) DC, min-latency (paper Table 9):");
    for (s, p) in heterogeneous_design(Objective::MinLatency, &PlatformKind::ALL, &params) {
        println!("  {s:<10} -> {p}");
    }

    let gpu = mean_query_latency_reduction(PlatformKind::Gpu);
    let fpga = mean_query_latency_reduction(PlatformKind::Fpga);
    println!("\nheadline results (paper Section 5.2.5 / Fig 21):");
    println!("  GPU  DC: mean query latency reduction {gpu:.1}x (paper ~10x)");
    println!("  FPGA DC: mean query latency reduction {fpga:.1}x (paper ~16x)");
    println!(
        "  scalability gap 165x -> {:.0}x (GPU) / {:.0}x (FPGA)",
        gap::bridged_gap(165.0, gpu),
        gap::bridged_gap(165.0, fpga)
    );
}
