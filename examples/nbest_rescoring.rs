//! Two-pass speech recognition: N-best decoding followed by language-model
//! rescoring (the hybrid hypothesis-rescoring approach the paper cites for
//! production GPU decoders).
//!
//! ```text
//! cargo run --release --example nbest_rescoring
//! ```

use sirius_speech::asr::{AsrSystem, AsrTrainConfig};
use sirius_speech::hmm::{AcousticScorer, DecoderConfig};
use sirius_speech::lm::TrigramLm;
use sirius_speech::nbest;
use sirius_speech::synth::{SynthConfig, Synthesizer};

fn main() {
    let corpus = [
        "go on now",
        "go on now",
        "no go on",
        "on and on",
        "now and then",
    ];
    println!("training recognizer on {} sentences...", corpus.len());
    let asr = AsrSystem::train(&corpus, 77, AsrTrainConfig::default());

    let spoken = "go on now";
    let utt = Synthesizer::new(4242, SynthConfig::default()).say(spoken);
    println!("\nspoken: {spoken:?}\n");

    let frames = asr.frontend().extract(&utt.samples);
    let emissions = asr.gmm_scorer().score_utterance(&frames);
    let nbest = asr
        .decoder()
        .decode_nbest(&emissions, asr.lm(), asr.lexicon(), 5);

    println!("first pass (acoustic + bigram LM):");
    for h in &nbest {
        println!(
            "  #{}  {:>10.1}  {:?}",
            h.rank + 1,
            h.score,
            h.words.join(" ")
        );
    }

    let config = DecoderConfig::default();
    for weight in [0.0f32, config.lm_weight, 12.0] {
        let rescored = nbest::rescore(&nbest, &config, asr.lm(), asr.lm(), asr.lexicon(), weight);
        println!("\nrescored with bigram LM, weight {weight}:");
        for h in rescored.iter().take(3) {
            println!(
                "  #{}  {:>10.1}  {:?}",
                h.rank + 1,
                h.score,
                h.words.join(" ")
            );
        }
    }

    // Second pass with a stronger (trigram) model.
    let trigram = TrigramLm::train(corpus.iter().copied(), asr.lexicon());
    let rescored = nbest::rescore(
        &nbest,
        &config,
        asr.lm(),
        &trigram,
        asr.lexicon(),
        config.lm_weight,
    );
    println!("\nrescored with trigram LM, weight {}:", config.lm_weight);
    for h in rescored.iter().take(3) {
        println!(
            "  #{}  {:>10.1}  {:?}",
            h.rank + 1,
            h.score,
            h.words.join(" ")
        );
    }
}
