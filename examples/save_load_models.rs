//! Train once, ship the models: serializes a fully trained Sirius to disk
//! and restores it without retraining (the paper's "deployability" design
//! objective, Section 2.1).
//!
//! ```text
//! cargo run --release --example save_load_models
//! ```

use std::time::Instant;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome};
use sirius_speech::synth::{SynthConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = Instant::now();
    println!("training Sirius from scratch...");
    let sirius = Sirius::build(SiriusConfig::default());
    let train_time = t.elapsed();

    let path = std::env::temp_dir().join("sirius_models.bin");
    let bytes = sirius.to_bytes();
    std::fs::write(&path, &bytes)?;
    println!(
        "trained in {train_time:.2?}; wrote {} KiB of models to {}",
        bytes.len() / 1024,
        path.display()
    );

    let t = Instant::now();
    let restored = Sirius::from_bytes(&std::fs::read(&path)?)?;
    println!("restored in {:.2?} (no training)", t.elapsed());

    let utt = Synthesizer::new(77, SynthConfig::default()).say("What is the capital of Japan");
    let response = restored.process(&SiriusInput {
        audio: utt.samples,
        image: None,
    });
    println!("recognized: {:?}", response.recognized);
    match response.outcome {
        SiriusOutcome::Answer(Some(answer)) => println!("answer:     {answer}"),
        other => println!("unexpected outcome: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
