//! Runs the paper's full 42-query input set (Table 1) end to end and
//! reports per-class accuracy and latency — a miniature of the paper's
//! Section 3 characterization.
//!
//! ```text
//! cargo run --release --example voice_assistant
//! ```

use std::time::Instant;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusOutcome};
use sirius::prepare_input_set;
use sirius::profile::Profiler;
use sirius::taxonomy::QueryKind;

fn main() {
    println!("training Sirius...");
    let sirius = Sirius::build(SiriusConfig::default());
    let prepared = prepare_input_set(&sirius, 0xfeed);
    let mut profiler = Profiler::new();
    let mut correct = [0usize; 3];
    let mut totals = [0usize; 3];

    println!("running {} queries...\n", prepared.len());
    for p in &prepared {
        let idx = p.spec.kind as usize;
        totals[idx] += 1;
        let t = Instant::now();
        let response = sirius.process(&p.input());
        let elapsed = t.elapsed();
        profiler.record(p.spec.kind, &response);
        let ok = match &response.outcome {
            SiriusOutcome::Action(a) => a.action == p.spec.expected,
            SiriusOutcome::Answer(Some(answer)) => answer.eq_ignore_ascii_case(p.spec.expected),
            SiriusOutcome::Answer(None) => false,
        };
        correct[idx] += usize::from(ok);
        let status = if ok { "ok " } else { "MISS" };
        println!(
            "[{status}] {:>4} {:<55} -> {:?} ({elapsed:.2?})",
            p.spec.kind.to_string(),
            p.spec.text,
            match &response.outcome {
                SiriusOutcome::Action(a) => a.action.clone(),
                SiriusOutcome::Answer(ans) => ans.clone().unwrap_or_else(|| "-".into()),
            },
        );
    }

    println!("\nper-class results:");
    for kind in QueryKind::ALL {
        let i = kind as usize;
        println!(
            "  {:>4}: {}/{} correct",
            kind.to_string(),
            correct[i],
            totals[i]
        );
    }
    println!("\nlatency by class (paper Fig 7b shape: VC < VQ < VIQ):");
    for (kind, stats) in profiler.latency_stats() {
        println!(
            "  {kind:>4}: mean {:?}  min {:?}  max {:?}",
            stats.mean, stats.min, stats.max
        );
    }
    println!("\nQA latency correlates with document-filter hits (paper Fig 8c):");
    println!(
        "  Pearson r = {:.2} over {} QA queries",
        profiler.filter_hit_correlation(),
        profiler.filter_hit_samples().len()
    );
}
