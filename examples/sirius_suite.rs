//! Runs the seven Sirius Suite kernels (paper Table 4) at a chosen scale
//! and prints the measured multicore speedups — the CMP column of Table 5.
//!
//! ```text
//! cargo run --release --example sirius_suite [scale] [threads]
//! ```

use sirius_suite::{measure, standard_suite};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let threads: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));

    println!("Sirius Suite at scale {scale} with {threads} threads\n");
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>12} {:>9} {:>10} {:>9}",
        "kernel", "service", "items", "baseline", "parallel", "speedup", "paper CMP", "checksum"
    );
    for kernel in standard_suite(scale, 42) {
        let m = measure(kernel.as_ref(), threads, 3);
        let paper = sirius_accel::paper::table5(m.name, 0).unwrap_or(f64::NAN);
        println!(
            "{:<8} {:<8} {:>10} {:>12.2?} {:>12.2?} {:>8.1}x {:>9.1}x {:>9}",
            m.name,
            m.service.to_string(),
            m.items,
            m.baseline_time,
            m.parallel_time,
            m.speedup(),
            paper,
            if m.checksum_match { "ok" } else { "MISMATCH" },
        );
    }
    println!("\ngranularity per kernel (paper Table 4):");
    for kernel in standard_suite(0.01, 42) {
        println!(
            "  {:<8} baseline: {:<12} granularity: {}",
            kernel.name(),
            kernel.baseline_origin(),
            kernel.granularity()
        );
    }
}
