//! # sirius-kernels
//!
//! Dense CPU micro-kernels shared by the Sirius hot paths: a frame-batched
//! GEMM used by the DNN acoustic scorer and a cache-friendly transpose for
//! preparing weight matrices.
//!
//! Every kernel here is **bit-identical** to the naive reference loop it
//! replaces: each output element accumulates its products in the exact same
//! order as the scalar matrix-vector code (`acc = bias; acc += w[i] * x[i]`
//! for increasing `i`). Speed comes from restructuring *across* output
//! elements — the axpy/outer-product formulation walks the shared `k`
//! dimension once per input row and updates all outputs of a tile with
//! independent accumulators, which vectorizes — never from reassociating a
//! single dot product. This keeps the ASR equivalence gates exact: the lazy
//! GEMM-batched decoder produces the same bits as the eager scalar one.

#![warn(missing_docs)]

/// Transposes a row-major `rows x cols` matrix into a row-major
/// `cols x rows` matrix.
///
/// # Panics
///
/// Panics if `m.len() != rows * cols`.
pub fn transpose(m: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    assert_eq!(m.len(), rows * cols, "matrix shape mismatch");
    let mut out = vec![0.0f32; m.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = m[r * cols + c];
        }
    }
    out
}

/// Batched affine map `out = x * w^T + bias`, with `w` supplied
/// **pre-transposed**: `wt[k * outputs + o] == w[o * inputs + k]`.
///
/// * `x` is row-major `rows x inputs` (one input vector per row),
/// * `wt` is row-major `inputs x outputs` (the transposed weight matrix),
/// * `bias` has `outputs` entries,
/// * `out` is row-major `rows x outputs` and is fully overwritten.
///
/// Each output element is computed as `bias[o] + Σ_k w[o][k] * x[r][k]`
/// with `k` strictly increasing, so the result is bit-identical to the
/// scalar matrix-vector loop while the inner update vectorizes across the
/// `outputs` dimension (an axpy per input coordinate).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shapes.
pub fn gemm_xwt_bias(
    x: &[f32],
    rows: usize,
    inputs: usize,
    wt: &[f32],
    outputs: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(x.len(), rows * inputs, "input matrix shape");
    assert_eq!(wt.len(), inputs * outputs, "weight matrix shape");
    assert_eq!(bias.len(), outputs, "bias length");
    assert_eq!(out.len(), rows * outputs, "output matrix shape");
    for r in 0..rows {
        let xr = &x[r * inputs..(r + 1) * inputs];
        let or = &mut out[r * outputs..(r + 1) * outputs];
        or.copy_from_slice(bias);
        for (k, &xk) in xr.iter().enumerate() {
            let wrow = &wt[k * outputs..(k + 1) * outputs];
            for (o, &w) in or.iter_mut().zip(wrow) {
                *o += w * xk;
            }
        }
    }
}

/// Reference scalar implementation of [`gemm_xwt_bias`] taking the weight
/// matrix in its natural row-major `outputs x inputs` layout. Used by tests
/// and the scalar-vs-GEMM ablation bench.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated shapes.
pub fn matvec_rows_bias(
    x: &[f32],
    rows: usize,
    inputs: usize,
    w: &[f32],
    outputs: usize,
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(x.len(), rows * inputs, "input matrix shape");
    assert_eq!(w.len(), outputs * inputs, "weight matrix shape");
    assert_eq!(bias.len(), outputs, "bias length");
    assert_eq!(out.len(), rows * outputs, "output matrix shape");
    for r in 0..rows {
        let xr = &x[r * inputs..(r + 1) * inputs];
        for o in 0..outputs {
            let wrow = &w[o * inputs..(o + 1) * inputs];
            let mut acc = bias[o];
            for (wv, xv) in wrow.iter().zip(xr) {
                acc += wv * xv;
            }
            out[r * outputs + o] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic(n: usize, seed: u64) -> Vec<f32> {
        // Small LCG so the crate stays dependency-free.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn transpose_round_trips() {
        let m = deterministic(6 * 4, 1);
        let t = transpose(&m, 6, 4);
        let back = transpose(&t, 4, 6);
        assert_eq!(m, back);
        assert_eq!(t[5], m[5 * 4]);
        assert_eq!(t[3 * 6 + 2], m[2 * 4 + 3]);
    }

    /// The axpy GEMM must be BIT-identical to the scalar matrix-vector
    /// reference — this is the property the ASR equivalence gates rely on.
    #[test]
    fn gemm_is_bit_identical_to_scalar_reference() {
        for (rows, inputs, outputs) in [(1, 7, 5), (3, 78, 96), (17, 96, 81), (32, 13, 1)] {
            let x = deterministic(rows * inputs, 2);
            let w = deterministic(outputs * inputs, 3);
            let bias = deterministic(outputs, 4);
            let wt = transpose(&w, outputs, inputs);
            let mut fast = vec![0.0f32; rows * outputs];
            let mut reference = vec![0.0f32; rows * outputs];
            gemm_xwt_bias(&x, rows, inputs, &wt, outputs, &bias, &mut fast);
            matvec_rows_bias(&x, rows, inputs, &w, outputs, &bias, &mut reference);
            assert!(
                fast.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{rows}x{inputs}x{outputs} differs"
            );
        }
    }

    #[test]
    fn gemm_handles_zero_rows() {
        let wt = transpose(&deterministic(3 * 2, 5), 3, 2);
        let mut out = [0.0f32; 0];
        gemm_xwt_bias(&[], 0, 2, &wt, 3, &[0.0; 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "weight matrix shape")]
    fn gemm_rejects_bad_shapes() {
        let mut out = [0.0f32; 2];
        gemm_xwt_bias(&[1.0, 2.0], 1, 2, &[0.0; 3], 2, &[0.0; 2], &mut out);
    }
}
