//! The OpenEphyra-style question-answering engine (paper Section 2.3.3).
//!
//! Pipeline, mirroring Figure 6: question analysis (regex + stemmer + CRF) →
//! web-search query generation → document retrieval → document filters →
//! candidate extraction and scoring → best answer.
//!
//! Every stage is instrumented with wall-clock timing and work counters so
//! the end-to-end pipeline can reproduce the paper's cycle breakdowns
//! (Figure 8b: stemmer/regex/CRF shares; Figure 8c: latency vs filter hits;
//! Figure 9: QA component cycle breakdown).

pub mod extract;
pub mod filters;
pub mod question;

use std::time::{Duration, Instant};

use sirius_search::{DocId, SearchEngine, SearchHit};

use crate::crf::Crf;
use filters::{standard_filters, DocumentFilter};
pub use question::{AnswerType, QuestionAnalysis, QuestionAnalyzer};

/// Per-stage timing and work counters for one QA invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QaBreakdown {
    /// Time in question analysis + document-filter stemming.
    pub stemmer: Duration,
    /// Time in regex pattern evaluation (question + answer-type filter).
    pub regex: Duration,
    /// Time in CRF tagging.
    pub crf: Duration,
    /// Time in retrieval (the web-search substrate).
    pub search: Duration,
    /// Time in document filters + candidate scoring (excluding the stemmer
    /// and regex time already attributed above).
    pub filtering: Duration,
    /// Total wall-clock for the query.
    pub total: Duration,
    /// Total document-filter hits (the Figure 8c x-axis).
    pub filter_hits: usize,
    /// Number of documents retrieved and filtered.
    pub docs_considered: usize,
    /// Number of regex evaluations performed.
    pub regex_ops: usize,
}

/// The answer produced for a question.
#[derive(Debug, Clone, PartialEq)]
pub struct QaResult {
    /// Best answer text, or `None` when no candidate survived filtering.
    pub answer: Option<String>,
    /// Ranked runner-up candidates (including the winner at index 0).
    pub candidates: Vec<extract::Candidate>,
    /// The top filter-ranked documents supporting the answer (citations).
    pub supporting: Vec<DocId>,
    /// The analyzed question.
    pub analysis: QuestionAnalysis,
    /// Stage-level instrumentation.
    pub breakdown: QaBreakdown,
}

/// Configuration for the QA engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QaConfig {
    /// How many documents to retrieve per generated query.
    pub top_k: usize,
}

impl Default for QaConfig {
    fn default() -> Self {
        Self { top_k: 12 }
    }
}

/// The question-answering engine.
///
/// # Example
///
/// ```
/// use sirius_nlp::qa::QaEngine;
/// use sirius_nlp::{crf::{Crf, TrainConfig}, pos};
/// use sirius_search::{corpus::FactCorpus, SearchEngine};
///
/// let corpus = FactCorpus::generate(1, Default::default());
/// let engine = SearchEngine::build(corpus.documents().iter().map(|d| d.text.as_str()));
/// let crf = Crf::train(pos::tag_set(), &pos::generate(2, 150), TrainConfig::default());
/// let qa = QaEngine::new(engine, crf, Default::default());
/// let result = qa.answer("What is the capital of Italy?");
/// assert_eq!(result.answer.as_deref(), Some("Rome"));
/// ```
#[derive(Debug)]
pub struct QaEngine {
    search: SearchEngine,
    analyzer: QuestionAnalyzer,
    filters: Vec<Box<dyn DocumentFilter + Send + Sync>>,
    config: QaConfig,
    /// Runtime-only execution policy: document filters and the stage-3b CRF
    /// tagging fan out over retrieved documents, bit-identically to serial.
    exec: sirius_par::ExecPolicy,
}

impl QaEngine {
    /// Creates a QA engine over a search engine and a trained CRF tagger.
    pub fn new(search: SearchEngine, crf: Crf, config: QaConfig) -> Self {
        Self {
            search,
            analyzer: QuestionAnalyzer::new(crf),
            filters: standard_filters(),
            config,
            exec: sirius_par::ExecPolicy::serial(),
        }
    }

    /// The underlying search engine.
    pub fn search_engine(&self) -> &SearchEngine {
        &self.search
    }

    /// Builds shard `shard` of `num_shards` of this engine: the retrieval
    /// index is sharded ([`SearchEngine::shard`] — postings partitioned,
    /// document store and global statistics carried whole) while the CRF
    /// tagger, filters and configuration are replicated. A shard can
    /// therefore run the full answer pipeline; only its *retrieval* is
    /// partial, and [`answer_with_retrieval`](Self::answer_with_retrieval)
    /// with a `sirius_search::merge_hits` scatter-gather over all shards is
    /// bit-identical to the unsharded [`answer`](Self::answer).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or `shard >= num_shards`.
    pub fn shard(&self, shard: u32, num_shards: u32) -> QaEngine {
        QaEngine {
            search: self.search.shard(shard, num_shards),
            analyzer: QuestionAnalyzer::new(self.analyzer.crf().clone()),
            filters: standard_filters(),
            config: self.config,
            exec: self.exec,
        }
    }

    /// Applies a multicore execution policy to the per-document kernels
    /// (filters + CRF tagging). Results are bit-identical to the serial
    /// path at every thread count and strategy.
    pub fn set_exec_policy(&mut self, policy: sirius_par::ExecPolicy) {
        self.exec = policy;
    }

    /// Serializes the engine: the search corpus and the trained CRF tagger
    /// (filters and patterns are rebuilt on load).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = sirius_codec::Encoder::new();
        e.tag("sirius_qa_v1");
        e.bytes(&self.search.to_bytes());
        self.analyzer.crf().write_to(&mut e);
        e.u32(self.config.top_k as u32);
        e.into_bytes()
    }

    /// Restores an engine saved with [`QaEngine::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on malformed, truncated or inconsistent bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sirius_codec::DecodeError> {
        let mut d = sirius_codec::Decoder::new(bytes);
        d.tag("sirius_qa_v1")?;
        let search = SearchEngine::from_bytes(&d.bytes_vec()?)?;
        let crf = Crf::read_from(&mut d)?;
        let top_k = d.u32()? as usize;
        d.finish()?;
        Ok(Self::new(search, crf, QaConfig { top_k }))
    }

    /// Answers a natural-language question.
    pub fn answer(&self, question_text: &str) -> QaResult {
        self.answer_with_retrieval(question_text, |query, k| self.search.search(query, k))
    }

    /// Answers a question with a caller-supplied retrieval stage.
    ///
    /// `retrieve` receives the generated keyword query and the configured
    /// `top_k` and must return ranked [`SearchHit`]s over *this engine's*
    /// document id space. [`answer`](Self::answer) is exactly this with
    /// [`SearchEngine::search`] plugged in; a sharded cluster instead plugs
    /// in a scatter-gather (`sirius_search::merge_hits` over per-shard
    /// searches), which returns bit-identical hits — so every downstream
    /// stage (filters, CRF tagging, extraction) is bit-identical too.
    /// Everything except the retrieval call runs on this engine, which must
    /// therefore hold the full document store and global collection
    /// statistics (a shard built by [`SearchEngine::shard`] does).
    pub fn answer_with_retrieval<F>(&self, question_text: &str, retrieve: F) -> QaResult
    where
        F: FnOnce(&str, usize) -> Vec<SearchHit>,
    {
        let t_total = Instant::now();
        let mut breakdown = QaBreakdown::default();

        // Stage 1: question analysis (regex + stemmer + CRF).
        // The CRF dominates this stage; we time its tagging separately by
        // re-running it, attributing the remainder to regex/stemming.
        let t = Instant::now();
        let analysis = self.analyzer.analyze(question_text);
        let analyze_time = t.elapsed();
        let t = Instant::now();
        let _ = self.analyzer.crf().tag(&analysis.tokens);
        breakdown.crf = t.elapsed();
        breakdown.regex = analyze_time.saturating_sub(breakdown.crf) / 2;
        breakdown.stemmer = analyze_time.saturating_sub(breakdown.crf) - breakdown.regex;
        breakdown.regex_ops = analysis.regex_ops;

        // Stage 2: retrieval.
        let t = Instant::now();
        let query = analysis.keywords.join(" ");
        let hits = retrieve(&query, self.config.top_k);
        breakdown.search = t.elapsed();
        breakdown.docs_considered = hits.len();

        // Stage 3: document filters.
        let docs: Vec<&str> = hits.iter().map(|h| self.search.document(h.doc)).collect();
        let mut doc_scores = vec![0.0f64; docs.len()];
        for filter in &self.filters {
            let t = Instant::now();
            // Documents are filtered independently; scores and hit counts
            // are folded in document order below.
            let outs = self
                .exec
                .map_collect(docs.len(), |i| filter.apply(docs[i], &analysis));
            for (i, out) in outs.into_iter().enumerate() {
                doc_scores[i] += out.score;
                breakdown.filter_hits += out.hits;
            }
            let elapsed = t.elapsed();
            // Attribute filter time to its dominant kernel, as the paper's
            // VTune profiling attributes QA cycles to stemmer/regex/CRF.
            match filter.name() {
                "keyword" | "proximity" => breakdown.stemmer += elapsed,
                "answer-type" => breakdown.regex += elapsed,
                _ => breakdown.filtering += elapsed,
            }
        }

        // Stage 3b: CRF part-of-speech tagging over the retrieved documents.
        // OpenEphyra tags retrieved text for answer-type matching; this is
        // where the bulk of the paper's QA CRF cycles come from (Figure 9).
        let t = Instant::now();
        let noun_id = self.analyzer.crf().label_id("NOUN");
        let num_id = self.analyzer.crf().label_id("NUM");
        // Each document is tagged independently; the per-document counts
        // are folded in document order below.
        let answer_bearing_counts = self.exec.map_collect(docs.len(), |i| {
            let mut answer_bearing = 0usize;
            for sentence in filters::split_sentences(docs[i]) {
                // Only tag passages that mention a query keyword, as
                // OpenEphyra's passage filters gate its taggers.
                let lower = sentence.to_lowercase();
                if !analysis.keywords.iter().any(|k| lower.contains(k)) {
                    continue;
                }
                let tokens: Vec<String> = sentence
                    .split_whitespace()
                    .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()).to_owned())
                    .filter(|w| !w.is_empty())
                    .collect();
                if tokens.is_empty() {
                    continue;
                }
                let tags = self.analyzer.crf().decode(&tokens);
                answer_bearing += tags
                    .iter()
                    .filter(|&&tag| Some(tag) == noun_id || Some(tag) == num_id)
                    .count();
            }
            answer_bearing
        });
        for (i, answer_bearing) in answer_bearing_counts.into_iter().enumerate() {
            // Documents rich in nouns/numbers are likelier to bear answers.
            doc_scores[i] += 0.05 * answer_bearing as f64;
            breakdown.filter_hits += answer_bearing;
        }
        breakdown.crf += t.elapsed();

        // Stage 4: candidate extraction over filter-ranked documents.
        let t = Instant::now();
        let mut order: Vec<usize> = (0..docs.len()).collect();
        order.sort_by(|&a, &b| doc_scores[b].total_cmp(&doc_scores[a]));
        let ranked: Vec<&str> = order.iter().map(|&i| docs[i]).collect();
        let supporting: Vec<DocId> = order.iter().take(3).map(|&i| hits[i].doc).collect();
        let candidates = extract::score_candidates(&ranked, &analysis, self.search.index());
        breakdown.filtering += t.elapsed();

        breakdown.total = t_total.elapsed();
        QaResult {
            answer: candidates.first().map(|c| c.text.clone()),
            candidates,
            supporting,
            analysis,
            breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crf::TrainConfig;
    use crate::pos;
    use sirius_search::corpus::{CorpusConfig, FactCorpus};

    fn engine() -> (QaEngine, FactCorpus) {
        let corpus = FactCorpus::generate(21, CorpusConfig::default());
        let search = SearchEngine::build(corpus.documents().iter().map(|d| d.text.as_str()));
        let crf = Crf::train(
            pos::tag_set(),
            &pos::generate(4, 200),
            TrainConfig::default(),
        );
        (QaEngine::new(search, crf, QaConfig::default()), corpus)
    }

    #[test]
    fn answers_capital_questions() {
        let (qa, _) = engine();
        let r = qa.answer("What is the capital of Italy?");
        assert_eq!(r.answer.as_deref(), Some("Rome"));
        let r = qa.answer("What is the capital of Cuba?");
        assert_eq!(r.answer.as_deref(), Some("Havana"));
    }

    #[test]
    fn answers_author_questions() {
        let (qa, _) = engine();
        let r = qa.answer("Who is the author of Harry Potter?");
        assert_eq!(r.answer.as_deref(), Some("Joanne Rowling"));
    }

    #[test]
    fn answers_president_questions() {
        let (qa, _) = engine();
        let r = qa.answer("Who was elected 44th president of the United States?");
        assert_eq!(r.answer.as_deref(), Some("Barack Obama"));
    }

    #[test]
    fn answers_location_questions() {
        let (qa, _) = engine();
        let r = qa.answer("Where is Las Vegas?");
        assert_eq!(r.answer.as_deref(), Some("Nevada"));
    }

    #[test]
    fn answers_time_questions() {
        let (qa, _) = engine();
        let r = qa.answer("When does Luigi Trattoria close?");
        assert_eq!(r.answer.as_deref(), Some("10 pm"));
    }

    #[test]
    fn qa_engine_persistence_round_trips_answers() {
        let (qa, _) = engine();
        let restored = QaEngine::from_bytes(&qa.to_bytes()).expect("decode");
        for q in [
            "What is the capital of Italy?",
            "Who is the author of Harry Potter?",
        ] {
            assert_eq!(restored.answer(q).answer, qa.answer(q).answer, "{q}");
        }
    }

    #[test]
    fn supporting_documents_cite_the_answer() {
        let (qa, _) = engine();
        let r = qa.answer("What is the capital of Italy?");
        assert!(!r.supporting.is_empty());
        // The top supporting document must actually contain the answer.
        let top = qa.search_engine().document(r.supporting[0]);
        assert!(top.contains("Rome"), "top doc: {top}");
    }

    #[test]
    fn breakdown_is_populated() {
        let (qa, _) = engine();
        let r = qa.answer("What is the capital of France?");
        assert!(r.breakdown.total > Duration::ZERO);
        assert!(r.breakdown.docs_considered > 0);
        assert!(r.breakdown.filter_hits > 0);
        assert!(r.breakdown.regex_ops > 0);
    }

    #[test]
    fn unanswerable_questions_return_none_or_weak_candidates() {
        let (qa, _) = engine();
        let r = qa.answer("What is the capital of Atlantis?");
        // Atlantis is not in the corpus; either nothing comes back or the
        // score of whatever does is below that of a real answer.
        let real = qa.answer("What is the capital of Japan?");
        let real_score = real.candidates.first().map_or(0.0, |c| c.score);
        let fake_score = r.candidates.first().map_or(0.0, |c| c.score);
        assert!(fake_score < real_score);
    }

    #[test]
    fn answers_are_policy_invariant() {
        use sirius_par::{ExecPolicy, Strategy};
        let (mut qa, _) = engine();
        let questions = [
            "What is the capital of Italy?",
            "Who is the author of Harry Potter?",
            "Where is Las Vegas?",
        ];
        let base: Vec<QaResult> = questions.iter().map(|q| qa.answer(q)).collect();
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                qa.set_exec_policy(ExecPolicy::new(threads, strategy));
                for (q, expect) in questions.iter().zip(&base) {
                    let got = qa.answer(q);
                    // Timing fields differ run to run; everything the answer
                    // depends on must be bit-identical.
                    assert_eq!(
                        got.answer, expect.answer,
                        "{q} threads {threads} {strategy}"
                    );
                    assert_eq!(got.candidates, expect.candidates, "{q} threads {threads}");
                    assert_eq!(got.supporting, expect.supporting, "{q} threads {threads}");
                    assert_eq!(
                        got.breakdown.filter_hits, expect.breakdown.filter_hits,
                        "{q} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_scatter_gather_answers_are_bit_identical() {
        let (qa, _) = engine();
        let questions = [
            "What is the capital of Italy?",
            "Who is the author of Harry Potter?",
            "When does Luigi Trattoria close?",
            "Where is Las Vegas?",
        ];
        for q in questions {
            let expect = qa.answer(q);
            for n in [1u32, 2, 4, 8] {
                let shards: Vec<QaEngine> = (0..n).map(|i| qa.shard(i, n)).collect();
                // The "home" shard runs the pipeline; retrieval fans out to
                // every shard and merges under the shared total order.
                let got = shards[0].answer_with_retrieval(q, |query, k| {
                    sirius_search::merge_hits(
                        shards.iter().map(|s| s.search_engine().search(query, k)),
                        k,
                    )
                });
                assert_eq!(got.answer, expect.answer, "{q} shards {n}");
                assert_eq!(got.candidates, expect.candidates, "{q} shards {n}");
                assert_eq!(got.supporting, expect.supporting, "{q} shards {n}");
                assert_eq!(
                    got.breakdown.filter_hits, expect.breakdown.filter_hits,
                    "{q} shards {n}"
                );
                assert_eq!(
                    got.breakdown.docs_considered, expect.breakdown.docs_considered,
                    "{q} shards {n}"
                );
            }
        }
    }

    #[test]
    fn filter_hits_vary_across_queries() {
        let (qa, _) = engine();
        let hits: Vec<usize> = [
            "What is the capital of Italy?",
            "Who was elected 44th president of the United States?",
            "Where is Mount Fuji?",
        ]
        .iter()
        .map(|q| qa.answer(q).breakdown.filter_hits)
        .collect();
        assert!(
            hits.iter().any(|&h| h != hits[0]),
            "hits all equal: {hits:?}"
        );
    }
}
