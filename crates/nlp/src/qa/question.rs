//! Question analysis: the "input filter" stage of the OpenEphyra pipeline
//! (paper Figure 6) — regex-based question-word detection, Porter stemming
//! of content words, and CRF part-of-speech tagging.

use crate::crf::Crf;
use crate::regex::Regex;
use crate::stemmer;
use sirius_search::tokenize;

/// Expected answer type derived from the question form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerType {
    /// "Who ..." — a person name.
    Person,
    /// "Where ..." or "what is the capital of ..." — a place name.
    Location,
    /// "When ..." — a time or date expression.
    Time,
    /// "How many ..." — a number.
    Number,
    /// Anything else — a generic entity.
    Entity,
}

/// The analyzed form of a natural-language question.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionAnalysis {
    /// Original question text.
    pub text: String,
    /// Lowercased tokens.
    pub tokens: Vec<String>,
    /// Content keywords (stop words removed), original surface forms.
    pub keywords: Vec<String>,
    /// Porter stems of the keywords.
    pub stems: Vec<String>,
    /// CRF part-of-speech tags, parallel to `tokens`.
    pub pos_tags: Vec<String>,
    /// The expected answer type.
    pub answer_type: AnswerType,
    /// Number of regex pattern evaluations performed (instrumentation).
    pub regex_ops: usize,
}

/// Analyzer bundling the trained CRF and compiled question patterns.
#[derive(Debug)]
pub struct QuestionAnalyzer {
    crf: Crf,
    wh_pattern: Regex,
    special_chars: Regex,
    how_many: Regex,
    capital_of: Regex,
}

impl QuestionAnalyzer {
    /// Creates an analyzer around a trained CRF tagger.
    pub fn new(crf: Crf) -> Self {
        Self {
            crf,
            wh_pattern: Regex::new("^(who|what|where|when|which|why|how)$")
                .expect("built-in pattern"),
            special_chars: Regex::new("[^a-zA-Z0-9 ]").expect("built-in pattern"),
            how_many: Regex::new("^how (many|much)").expect("built-in pattern"),
            capital_of: Regex::new("capital of").expect("built-in pattern"),
        }
    }

    /// Access to the underlying CRF tagger.
    pub fn crf(&self) -> &Crf {
        &self.crf
    }

    /// Analyzes a question, producing keywords, stems, tags and answer type.
    pub fn analyze(&self, question: &str) -> QuestionAnalysis {
        let mut regex_ops = 0usize;

        // Input filter: strip special characters (paper Figure 6).
        regex_ops += 1;
        let cleaned: String = question
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == ' ' || c == '\'' {
                    c
                } else {
                    ' '
                }
            })
            .collect();
        let _ = self.special_chars.is_match(question);

        let tokens = tokenize::tokenize(&cleaned);

        // Question-word detection.
        let mut wh: Option<String> = None;
        for t in &tokens {
            regex_ops += 1;
            if self.wh_pattern.is_match(t) {
                wh = Some(t.clone());
                break;
            }
        }

        regex_ops += 2;
        let lower = cleaned.to_lowercase();
        let answer_type = if self.how_many.is_match(&lower) {
            AnswerType::Number
        } else {
            match wh.as_deref() {
                Some("who") => AnswerType::Person,
                Some("where") => AnswerType::Location,
                Some("when") => AnswerType::Time,
                Some("what") | Some("which") if self.capital_of.is_match(&lower) => {
                    AnswerType::Location
                }
                _ => AnswerType::Entity,
            }
        };

        // Keywords: drop stop words and auxiliary verbs.
        let keywords: Vec<String> = tokens
            .iter()
            .filter(|t| !tokenize::is_stop_word(t) && !is_auxiliary(t))
            .cloned()
            .collect();
        let stems: Vec<String> = keywords.iter().map(|k| stemmer::stem(k)).collect();

        // CRF tagging of the full token sequence.
        let pos_tags = self.crf.tag(&tokens);

        QuestionAnalysis {
            text: question.to_owned(),
            tokens,
            keywords,
            stems,
            pos_tags,
            answer_type,
            regex_ops,
        }
    }
}

fn is_auxiliary(word: &str) -> bool {
    matches!(
        word,
        "do" | "does" | "did" | "can" | "could" | "would" | "should" | "current" | "currently"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crf::TrainConfig;
    use crate::pos;

    fn analyzer() -> QuestionAnalyzer {
        let train = pos::generate(11, 200);
        let crf = Crf::train(pos::tag_set(), &train, TrainConfig::default());
        QuestionAnalyzer::new(crf)
    }

    #[test]
    fn who_questions_expect_person() {
        let a = analyzer().analyze("Who was elected 44th president?");
        assert_eq!(a.answer_type, AnswerType::Person);
        assert!(a.keywords.contains(&"elected".to_owned()));
        assert!(a.keywords.contains(&"44th".to_owned()));
        assert!(a.stems.contains(&"elect".to_owned()));
    }

    #[test]
    fn where_questions_expect_location() {
        let a = analyzer().analyze("Where is Las Vegas?");
        assert_eq!(a.answer_type, AnswerType::Location);
        assert_eq!(a.keywords, vec!["las", "vegas"]);
    }

    #[test]
    fn capital_questions_expect_location() {
        let a = analyzer().analyze("What is the capital of Italy?");
        assert_eq!(a.answer_type, AnswerType::Location);
        assert!(a.stems.contains(&"itali".to_owned()));
    }

    #[test]
    fn when_questions_expect_time() {
        let a = analyzer().analyze("When does this restaurant close?");
        assert_eq!(a.answer_type, AnswerType::Time);
        assert!(a.keywords.contains(&"restaurant".to_owned()));
        assert!(!a.keywords.contains(&"does".to_owned()));
    }

    #[test]
    fn how_many_expects_number() {
        let a = analyzer().analyze("How many students visited the museum?");
        assert_eq!(a.answer_type, AnswerType::Number);
    }

    #[test]
    fn pos_tags_cover_all_tokens() {
        let a = analyzer().analyze("Who wrote the famous book?");
        assert_eq!(a.pos_tags.len(), a.tokens.len());
        // "who" must be tagged WH by the trained CRF.
        assert_eq!(a.pos_tags[0], "WH");
    }

    #[test]
    fn special_characters_are_stripped() {
        let a = analyzer().analyze("What is the capital-of (Italy)???");
        assert!(a
            .tokens
            .iter()
            .all(|t| t.chars().all(char::is_alphanumeric)));
        assert!(a.regex_ops > 0);
    }
}
