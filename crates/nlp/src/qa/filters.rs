//! Document filters: the stage of the OpenEphyra pipeline whose runtime
//! variability the paper identifies as the cause of QA's high latency
//! variance ("the high variance is primarily due to the runtime variability
//! of various document filters in the NLP component", Section 3, Figure 8c).
//!
//! Each filter scans a retrieved document and reports a score together with
//! the number of *hits* (pattern or keyword matches) it produced. The total
//! hit count is what Figure 8c correlates with end-to-end QA latency.

use crate::regex::Regex;
use crate::stemmer;
use sirius_search::tokenize;

use super::question::{AnswerType, QuestionAnalysis};

/// The outcome of running one filter over one document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterOutcome {
    /// Relevance contribution of this filter.
    pub score: f64,
    /// Number of matches the filter produced while scanning.
    pub hits: usize,
}

/// A document filter in the OpenEphyra sense.
pub trait DocumentFilter: std::fmt::Debug {
    /// Short name used in breakdown reports.
    fn name(&self) -> &'static str;
    /// Scans `doc` for evidence relevant to `question`.
    fn apply(&self, doc: &str, question: &QuestionAnalysis) -> FilterOutcome;
}

/// Counts stemmed keyword occurrences (runs the Porter stemmer over every
/// document token — the stemmer hot loop of Figure 9).
#[derive(Debug, Default)]
pub struct KeywordFilter;

impl DocumentFilter for KeywordFilter {
    fn name(&self) -> &'static str {
        "keyword"
    }

    fn apply(&self, doc: &str, question: &QuestionAnalysis) -> FilterOutcome {
        let mut hits = 0usize;
        for token in tokenize::tokenize(doc) {
            let stem = stemmer::stem(&token);
            if question.stems.contains(&stem) {
                hits += 1;
            }
        }
        FilterOutcome {
            score: hits as f64,
            hits,
        }
    }
}

/// Counts tokens whose surface shape is compatible with the expected answer
/// type (regex pattern matching over every token — the regex hot loop).
#[derive(Debug)]
pub struct AnswerTypeFilter {
    capitalized: Regex,
    number: Regex,
    time: Regex,
}

impl Default for AnswerTypeFilter {
    fn default() -> Self {
        Self {
            capitalized: Regex::new("^[A-Z][a-z]+$").expect("built-in pattern"),
            number: Regex::new("^[0-9]+(th|st|nd|rd)?$").expect("built-in pattern"),
            time: Regex::new("^([0-9]+|midnight|noon|am|pm)$").expect("built-in pattern"),
        }
    }
}

impl AnswerTypeFilter {
    /// Returns `true` if raw token `word` could be (part of) an answer of
    /// type `at`.
    pub fn token_compatible(&self, word: &str, at: AnswerType) -> bool {
        match at {
            AnswerType::Person | AnswerType::Location | AnswerType::Entity => {
                self.capitalized.is_match(word)
            }
            AnswerType::Number => self.number.is_match(&word.to_lowercase()),
            AnswerType::Time => self.time.is_match(&word.to_lowercase()),
        }
    }
}

impl DocumentFilter for AnswerTypeFilter {
    fn name(&self) -> &'static str {
        "answer-type"
    }

    fn apply(&self, doc: &str, question: &QuestionAnalysis) -> FilterOutcome {
        let mut hits = 0usize;
        for raw in doc.split_whitespace() {
            let word: String = raw.chars().filter(|c| c.is_alphanumeric()).collect();
            if word.is_empty() {
                continue;
            }
            if self.token_compatible(&word, question.answer_type) {
                hits += 1;
            }
        }
        FilterOutcome {
            score: (hits as f64).sqrt(),
            hits,
        }
    }
}

/// Rewards sentences where many query keywords co-occur in a small window,
/// approximating OpenEphyra's proximity/passage scoring.
#[derive(Debug, Default)]
pub struct ProximityFilter;

impl DocumentFilter for ProximityFilter {
    fn name(&self) -> &'static str {
        "proximity"
    }

    fn apply(&self, doc: &str, question: &QuestionAnalysis) -> FilterOutcome {
        let mut hits = 0usize;
        let mut best = 0.0f64;
        for sentence in split_sentences(doc) {
            let tokens = tokenize::tokenize(sentence);
            let mut found = 0usize;
            for stem_q in &question.stems {
                if tokens.iter().any(|t| stemmer::stem(t) == *stem_q) {
                    found += 1;
                }
            }
            if found >= 2 {
                hits += 1;
                let density = found as f64 / tokens.len().max(1) as f64;
                let coverage = found as f64 / question.stems.len().max(1) as f64;
                best = best.max(coverage * (1.0 + density));
            }
        }
        FilterOutcome {
            score: best * 4.0,
            hits,
        }
    }
}

/// Splits document text into sentences on `.`, `!` and `?`.
pub fn split_sentences(text: &str) -> impl Iterator<Item = &str> {
    text.split_terminator(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
}

/// The standard OpenEphyra-style filter bank.
pub fn standard_filters() -> Vec<Box<dyn DocumentFilter + Send + Sync>> {
    vec![
        Box::new(KeywordFilter),
        Box::new(AnswerTypeFilter::default()),
        Box::new(ProximityFilter),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crf::{Crf, TrainConfig};
    use crate::pos;
    use crate::qa::question::QuestionAnalyzer;

    fn question(q: &str) -> QuestionAnalysis {
        let crf = Crf::train(
            pos::tag_set(),
            &pos::generate(3, 150),
            TrainConfig::default(),
        );
        QuestionAnalyzer::new(crf).analyze(q)
    }

    #[test]
    fn keyword_filter_counts_stemmed_hits() {
        let q = question("What is the capital of Italy?");
        let out = KeywordFilter.apply("Rome is the capital city of Italy. Italy is lovely.", &q);
        // capital x1, italy x2 (stems match).
        assert_eq!(out.hits, 3);
        assert!(out.score > 0.0);
    }

    #[test]
    fn keyword_filter_matches_morphological_variants() {
        let q = question("Who was elected 44th president?");
        let out = KeywordFilter.apply("The election elected electing presidents", &q);
        // elected + electing share stem "elect"; "election" stems to "elect" too;
        // presidents stems to president's stem.
        assert!(out.hits >= 3, "hits = {}", out.hits);
    }

    #[test]
    fn answer_type_filter_sees_capitalized_names() {
        let q = question("Who wrote Hamlet?");
        let out = AnswerTypeFilter::default().apply("William Shakespeare wrote it in London", &q);
        assert!(out.hits >= 3); // William, Shakespeare, London
    }

    #[test]
    fn answer_type_filter_time_tokens() {
        let q = question("When does the cafe close?");
        let f = AnswerTypeFilter::default();
        assert!(f.token_compatible("10", super::super::question::AnswerType::Time));
        assert!(f.token_compatible("pm", super::super::question::AnswerType::Time));
        assert!(f.token_compatible("midnight", super::super::question::AnswerType::Time));
        assert!(!f.token_compatible("banana", super::super::question::AnswerType::Time));
        let out = f.apply("The cafe closes at 10 pm", &q);
        assert_eq!(out.hits, 2);
    }

    #[test]
    fn proximity_filter_prefers_dense_sentences() {
        let q = question("What is the capital of Italy?");
        let dense = ProximityFilter.apply("Rome is the capital of Italy.", &q);
        let sparse = ProximityFilter.apply(
            "The capital was discussed. Somewhere far away lies Italy, a country.",
            &q,
        );
        assert!(dense.score > sparse.score);
        assert!(dense.hits >= 1);
    }

    #[test]
    fn sentence_splitting() {
        let s: Vec<&str> = split_sentences("One. Two! Three? ").collect();
        assert_eq!(s, vec!["One", "Two", "Three"]);
    }

    #[test]
    fn filters_report_zero_on_irrelevant_docs() {
        let q = question("What is the capital of Italy?");
        for f in standard_filters() {
            let out = f.apply("zzz qqq", &q);
            if f.name() == "keyword" || f.name() == "proximity" {
                assert_eq!(out.hits, 0, "filter {}", f.name());
            }
        }
    }
}
