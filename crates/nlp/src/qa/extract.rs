//! Candidate answer extraction and scoring (the "document selector" of the
//! OpenEphyra pipeline, paper Figure 6).
//!
//! Candidates are proper-noun chunks, numbers, or time expressions extracted
//! from sentences that contain query keywords. Each candidate is scored by
//! sentence keyword coverage, retrieval rank, and the rarity (IDF) of its
//! tokens, then aggregated across all retrieved documents; the best-scoring
//! candidate string is the answer.

use std::collections::HashMap;

use crate::stemmer;
use sirius_search::{tokenize, InvertedIndex};

use super::filters::{split_sentences, AnswerTypeFilter};
use super::question::{AnswerType, QuestionAnalysis};

/// A scored candidate answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Surface form of the answer.
    pub text: String,
    /// Aggregated score across documents.
    pub score: f64,
    /// In how many scanned sentences the candidate appeared.
    pub support: usize,
}

/// Extracts candidate spans of the expected answer type from one sentence.
///
/// For person/location/entity types these are maximal runs of capitalized
/// words (skipping leading stop words such as sentence-initial "The"); for
/// numbers, digit tokens; for times, expressions like "10 pm" / "midnight".
pub fn extract_spans(sentence: &str, at: AnswerType, shapes: &AnswerTypeFilter) -> Vec<String> {
    let words: Vec<&str> = sentence.split_whitespace().collect();
    let clean = |w: &str| -> String { w.chars().filter(|c| c.is_alphanumeric()).collect() };
    match at {
        AnswerType::Person | AnswerType::Location | AnswerType::Entity => {
            let mut spans = Vec::new();
            let mut current: Vec<String> = Vec::new();
            for raw in &words {
                let w = clean(raw);
                let is_cap = shapes.token_compatible(&w, at);
                let is_stop = tokenize::is_stop_word(&w.to_lowercase());
                if is_cap && !is_stop {
                    current.push(w);
                } else {
                    if !current.is_empty() {
                        spans.push(current.join(" "));
                        current.clear();
                    }
                }
                // A trailing punctuation mark ends the span too (handled by
                // clean() removing it but the token loop above continuing).
                if raw.ends_with([',', ';', ':']) && !current.is_empty() {
                    spans.push(current.join(" "));
                    current.clear();
                }
            }
            if !current.is_empty() {
                spans.push(current.join(" "));
            }
            spans
        }
        AnswerType::Number => words
            .iter()
            .map(|w| clean(w))
            .filter(|w| !w.is_empty() && shapes.token_compatible(w, at))
            .collect(),
        AnswerType::Time => {
            let mut spans = Vec::new();
            let mut i = 0;
            while i < words.len() {
                let w = clean(words[i]).to_lowercase();
                if w == "midnight" || w == "noon" {
                    spans.push(w);
                } else if w.chars().all(|c| c.is_ascii_digit()) && !w.is_empty() {
                    // "10 pm" / "6 am" two-token time.
                    if i + 1 < words.len() {
                        let next = clean(words[i + 1]).to_lowercase();
                        if next == "am" || next == "pm" {
                            spans.push(format!("{w} {next}"));
                            i += 2;
                            continue;
                        }
                    }
                    spans.push(w);
                }
                i += 1;
            }
            spans
        }
    }
}

/// Scores candidates across a ranked list of documents.
///
/// `ranked_docs` is ordered best-first (retrieval order); earlier documents
/// receive a higher rank weight, mirroring OpenEphyra's use of search rank.
pub fn score_candidates(
    ranked_docs: &[&str],
    question: &QuestionAnalysis,
    index: &InvertedIndex,
) -> Vec<Candidate> {
    let shapes = AnswerTypeFilter::default();
    let mut scores: HashMap<String, (f64, usize)> = HashMap::new();
    let question_stems: Vec<&str> = question.stems.iter().map(String::as_str).collect();

    for (rank, doc) in ranked_docs.iter().enumerate() {
        let rank_weight = 1.0 / (1.0 + rank as f64 * 0.25);
        for sentence in split_sentences(doc) {
            let tokens = tokenize::tokenize(sentence);
            let mut coverage = 0usize;
            for qs in &question_stems {
                if tokens.iter().any(|t| stemmer::stem(t) == *qs) {
                    coverage += 1;
                }
            }
            if coverage == 0 {
                continue;
            }
            let coverage_frac = coverage as f64 / question_stems.len().max(1) as f64;
            for span in extract_spans(sentence, question.answer_type, &shapes) {
                if overlaps_question(&span, question) {
                    continue;
                }
                let idf = mean_idf(&span, index);
                let entry = scores.entry(span).or_insert((0.0, 0));
                entry.0 += rank_weight * coverage_frac * (1.0 + idf);
                entry.1 += 1;
            }
        }
    }

    let mut out: Vec<Candidate> = scores
        .into_iter()
        .map(|(text, (score, support))| Candidate {
            text,
            score,
            support,
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.text.cmp(&b.text)));
    out
}

/// A candidate that repeats the question's own keywords is not an answer.
fn overlaps_question(span: &str, question: &QuestionAnalysis) -> bool {
    tokenize::tokenize(span)
        .iter()
        .any(|t| question.stems.iter().any(|s| *s == stemmer::stem(t)))
}

/// Mean BM25 IDF of the span's tokens — rarer names are better answers.
fn mean_idf(span: &str, index: &InvertedIndex) -> f64 {
    let tokens = tokenize::tokenize(span);
    if tokens.is_empty() {
        return 0.0;
    }
    tokens.iter().map(|t| index.idf(t)).sum::<f64>() / tokens.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> AnswerTypeFilter {
        AnswerTypeFilter::default()
    }

    #[test]
    fn extracts_proper_noun_chunks() {
        let spans = extract_spans(
            "Barack Obama was elected in the United States",
            AnswerType::Person,
            &shapes(),
        );
        assert!(spans.contains(&"Barack Obama".to_owned()));
        assert!(spans.contains(&"United States".to_owned()));
    }

    #[test]
    fn skips_stop_word_capitals() {
        let spans = extract_spans(
            "The committee met Rome officials",
            AnswerType::Location,
            &shapes(),
        );
        assert!(spans.contains(&"Rome".to_owned()));
        assert!(!spans.iter().any(|s| s.contains("The")));
    }

    #[test]
    fn extracts_two_token_times() {
        let spans = extract_spans("It closes at 10 pm, not noon.", AnswerType::Time, &shapes());
        assert_eq!(spans, vec!["10 pm".to_owned(), "noon".to_owned()]);
    }

    #[test]
    fn extracts_numbers() {
        let spans = extract_spans("In 1990 there were 44 items", AnswerType::Number, &shapes());
        assert_eq!(spans, vec!["1990", "44"]);
    }

    #[test]
    fn scoring_prefers_supported_rare_candidates() {
        let docs = [
            "Rome is the capital of Italy. Rome has history.",
            "The capital city of Italy is Rome.",
            "Paris is the capital of France.",
        ];
        let mut index = InvertedIndex::new();
        for d in &docs {
            index.add_document(d);
        }
        index.finalize();
        let question = QuestionAnalysis {
            text: "What is the capital of Italy?".into(),
            tokens: vec![
                "what".into(),
                "is".into(),
                "the".into(),
                "capital".into(),
                "of".into(),
                "italy".into(),
            ],
            keywords: vec!["capital".into(), "italy".into()],
            stems: vec!["capit".into(), "itali".into()],
            pos_tags: vec![],
            answer_type: AnswerType::Location,
            regex_ops: 0,
        };
        let refs: Vec<&str> = docs.to_vec();
        let cands = score_candidates(&refs, &question, &index);
        assert_eq!(cands[0].text, "Rome");
        assert!(cands[0].support >= 2);
        // "Paris" may appear (its sentence contains "capital") but must rank
        // below Rome, whose sentences also contain "Italy".
        if let Some(paris) = cands.iter().find(|c| c.text == "Paris") {
            assert!(paris.score < cands[0].score);
        }
    }
}
