//! Synthetic part-of-speech corpus generation (CoNLL-style stand-in).
//!
//! The paper trains its CRF kernel on the CoNLL-2000 shared task data, which
//! we cannot redistribute. This module generates tagged sentences from a
//! small probabilistic grammar with a per-tag vocabulary, giving the CRF a
//! learnable but non-trivial tagging problem (ambiguous words included) and
//! the Sirius Suite CRF kernel a realistic input set.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::crf::TaggedSentence;

/// The tag inventory used across the QA pipeline.
pub const TAGS: [&str; 8] = ["DET", "ADJ", "NOUN", "VERB", "PREP", "NUM", "WH", "PRON"];

/// Index of a tag name in [`TAGS`].
///
/// # Panics
///
/// Panics if `name` is not in the inventory.
pub fn tag_id(name: &str) -> usize {
    TAGS.iter()
        .position(|t| *t == name)
        .unwrap_or_else(|| panic!("unknown tag {name}"))
}

const DETS: &[&str] = &["the", "a", "this", "that", "every"];
const ADJS: &[&str] = &[
    "quick", "old", "famous", "red", "small", "great", "current", "ancient", "local", "new",
];
const NOUNS: &[&str] = &[
    "dog",
    "city",
    "capital",
    "president",
    "author",
    "book",
    "restaurant",
    "river",
    "mountain",
    "museum",
    "election",
    "country",
    "student",
    "teacher",
    "library",
];
/// Capitalized proper nouns, tagged NOUN; teaches the CRF that the
/// capitalized word shape is noun-like (used when tagging retrieved
/// documents in the QA pipeline).
const PROPER_NOUNS: &[&str] = &[
    "Rome",
    "Paris",
    "London",
    "Tokyo",
    "Nevada",
    "Obama",
    "Shakespeare",
    "Homer",
    "Fuji",
    "Arizona",
];
const VERBS: &[&str] = &[
    "runs",
    "closes",
    "opens",
    "wrote",
    "visited",
    "elected",
    "reads",
    "describes",
    "holds",
    "announced",
];
const PREPS: &[&str] = &["in", "of", "on", "near", "with", "at"];
const NUMS: &[&str] = &["one", "two", "44th", "16th", "1990", "2015", "first"];
const WHS: &[&str] = &["who", "what", "where", "when", "which"];
const PRONS: &[&str] = &["he", "she", "it", "they", "we"];

/// Words that appear under more than one tag, forcing the CRF to use context.
const AMBIGUOUS: &[(&str, &str, &str)] = &[
    // word, tag-as-noun-context, tag-as-verb-context
    ("book", "NOUN", "VERB"),
    ("visit", "NOUN", "VERB"),
    ("close", "ADJ", "VERB"),
];

fn pick<'a>(rng: &mut impl Rng, words: &[&'a str]) -> &'a str {
    words.choose(rng).expect("non-empty word list")
}

/// Generates one declarative sentence: DET (ADJ)? NOUN VERB (PREP DET NOUN)?
fn declarative(rng: &mut impl Rng) -> TaggedSentence {
    let mut tokens = Vec::new();
    let mut labels = Vec::new();
    let push = |w: &str, t: &str, tokens: &mut Vec<String>, labels: &mut Vec<usize>| {
        tokens.push(w.to_owned());
        labels.push(tag_id(t));
    };
    push(pick(rng, DETS), "DET", &mut tokens, &mut labels);
    if rng.gen_bool(0.5) {
        push(pick(rng, ADJS), "ADJ", &mut tokens, &mut labels);
    }
    // Occasionally use an ambiguous word or a capitalized proper noun.
    if rng.gen_bool(0.15) {
        let (w, noun_tag, _) = AMBIGUOUS.choose(rng).expect("non-empty");
        push(w, noun_tag, &mut tokens, &mut labels);
    } else if rng.gen_bool(0.25) {
        push(pick(rng, PROPER_NOUNS), "NOUN", &mut tokens, &mut labels);
    } else {
        push(pick(rng, NOUNS), "NOUN", &mut tokens, &mut labels);
    }
    if rng.gen_bool(0.15) {
        let (w, _, verb_tag) = AMBIGUOUS.choose(rng).expect("non-empty");
        push(w, verb_tag, &mut tokens, &mut labels);
    } else {
        push(pick(rng, VERBS), "VERB", &mut tokens, &mut labels);
    }
    if rng.gen_bool(0.6) {
        push(pick(rng, PREPS), "PREP", &mut tokens, &mut labels);
        push(pick(rng, DETS), "DET", &mut tokens, &mut labels);
        push(pick(rng, NOUNS), "NOUN", &mut tokens, &mut labels);
    }
    if rng.gen_bool(0.25) {
        push(pick(rng, PREPS), "PREP", &mut tokens, &mut labels);
        push(pick(rng, NUMS), "NUM", &mut tokens, &mut labels);
    }
    TaggedSentence { tokens, labels }
}

/// Generates one question: WH VERB DET (ADJ)? NOUN (PREP NOUN)?
fn question(rng: &mut impl Rng) -> TaggedSentence {
    let mut tokens = Vec::new();
    let mut labels = Vec::new();
    let push = |w: &str, t: &str, tokens: &mut Vec<String>, labels: &mut Vec<usize>| {
        tokens.push(w.to_owned());
        labels.push(tag_id(t));
    };
    push(pick(rng, WHS), "WH", &mut tokens, &mut labels);
    push(pick(rng, VERBS), "VERB", &mut tokens, &mut labels);
    if rng.gen_bool(0.7) {
        push(pick(rng, DETS), "DET", &mut tokens, &mut labels);
    } else {
        push(pick(rng, PRONS), "PRON", &mut tokens, &mut labels);
    }
    if rng.gen_bool(0.4) {
        push(pick(rng, NUMS), "NUM", &mut tokens, &mut labels);
    }
    push(pick(rng, NOUNS), "NOUN", &mut tokens, &mut labels);
    if rng.gen_bool(0.4) {
        push(pick(rng, PREPS), "PREP", &mut tokens, &mut labels);
        push(pick(rng, NOUNS), "NOUN", &mut tokens, &mut labels);
    }
    TaggedSentence { tokens, labels }
}

/// Generates `n` tagged sentences (a mix of declaratives and questions).
pub fn generate(seed: u64, n: usize) -> Vec<TaggedSentence> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.3) {
                question(&mut rng)
            } else {
                declarative(&mut rng)
            }
        })
        .collect()
}

/// Returns the tag inventory as owned strings, in id order.
pub fn tag_set() -> Vec<String> {
    TAGS.iter().map(|t| (*t).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crf::{Crf, TrainConfig};

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(9, 20), generate(9, 20));
        assert_ne!(generate(9, 20), generate(10, 20));
    }

    #[test]
    fn labels_are_in_range() {
        for s in generate(1, 100) {
            assert_eq!(s.tokens.len(), s.labels.len());
            assert!(s.labels.iter().all(|&l| l < TAGS.len()));
            assert!(!s.tokens.is_empty());
        }
    }

    #[test]
    fn crf_learns_the_grammar() {
        let train = generate(5, 300);
        let test = generate(6, 60);
        let crf = Crf::train(tag_set(), &train, TrainConfig::default());
        let acc = crf.accuracy(&test);
        assert!(acc > 0.93, "held-out accuracy {acc}");
    }

    #[test]
    fn ambiguous_words_require_context() {
        // "book" appears both as NOUN ("the book closes") and VERB.
        let data = generate(2, 500);
        let mut noun = 0;
        let mut verb = 0;
        for s in &data {
            for (w, &l) in s.tokens.iter().zip(&s.labels) {
                if w == "book" {
                    if l == tag_id("NOUN") {
                        noun += 1;
                    }
                    if l == tag_id("VERB") {
                        verb += 1;
                    }
                }
            }
        }
        assert!(noun > 0 && verb > 0, "noun={noun} verb={verb}");
    }

    #[test]
    fn tag_id_round_trips() {
        for (i, t) in TAGS.iter().enumerate() {
            assert_eq!(tag_id(t), i);
        }
    }
}
