//! A compact regular-expression engine in the spirit of SLRE (Super Light
//! Regular Expression library), the baseline the paper uses for the Sirius
//! Suite Regex kernel (Table 4: "100 expressions / 400 sentences, data
//! granularity: each regex-sentence pair").
//!
//! Supported syntax: literals, `.`, escapes (`\d \D \w \W \s \S` plus escaped
//! metacharacters), character classes `[a-z0-9]` / negated `[^...]`,
//! quantifiers `* + ?` and bounded `{m}` / `{m,}` / `{m,n}` (greedy),
//! grouping `(...)`, alternation `|`, and anchors `^` / `$`.
//!
//! Matching is backtracking over a parsed AST, which matches SLRE's approach
//! (and its branchy, divergence-heavy execution profile that the paper
//! highlights when porting to SIMD platforms).

use std::fmt;

/// Error produced when compiling an invalid pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte position in the pattern where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid regex at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseRegexError {}

/// A matched span, in character indices into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Start character index (inclusive).
    pub start: usize,
    /// End character index (exclusive).
    pub end: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum ClassItem {
    Char(char),
    Range(char, char),
    Digit,
    NotDigit,
    Word,
    NotWord,
    Space,
    NotSpace,
}

impl ClassItem {
    fn matches(&self, c: char) -> bool {
        match *self {
            ClassItem::Char(x) => c == x,
            ClassItem::Range(lo, hi) => c >= lo && c <= hi,
            ClassItem::Digit => c.is_ascii_digit(),
            ClassItem::NotDigit => !c.is_ascii_digit(),
            ClassItem::Word => c.is_alphanumeric() || c == '_',
            ClassItem::NotWord => !(c.is_alphanumeric() || c == '_'),
            ClassItem::Space => c.is_whitespace(),
            ClassItem::NotSpace => !c.is_whitespace(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
    },
    AnchorStart,
    AnchorEnd,
    Empty,
}

/// A compiled regular expression.
///
/// # Example
///
/// ```
/// use sirius_nlp::regex::Regex;
///
/// let re = Regex::new(r"^[0-9]+(th|st|nd|rd)$")?;
/// assert!(re.is_match("44th"));
/// assert!(!re.is_match("44x"));
/// # Ok::<(), sirius_nlp::regex::ParseRegexError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Regex {
    pattern: String,
    ast: Ast,
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegexError`] for malformed syntax (unbalanced parens,
    /// dangling quantifiers, bad classes or bounds).
    pub fn new(pattern: &str) -> Result<Self, ParseRegexError> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let ast = p.parse_alt()?;
        if p.pos != p.chars.len() {
            return Err(ParseRegexError {
                message: "unexpected character (unbalanced ')'?)".into(),
                position: p.pos,
            });
        }
        Ok(Self {
            pattern: pattern.to_owned(),
            ast,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns `true` if the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Finds the leftmost match, if any.
    pub fn find(&self, text: &str) -> Option<Match> {
        let chars: Vec<char> = text.chars().collect();
        for start in 0..=chars.len() {
            let mut found: Option<usize> = None;
            match_node(&self.ast, &chars, start, start == 0, &mut |end| {
                found = Some(end);
                true
            });
            if let Some(end) = found {
                return Some(Match { start, end });
            }
        }
        None
    }

    /// Finds all non-overlapping matches, leftmost-first.
    pub fn find_all(&self, text: &str) -> Vec<Match> {
        let chars: Vec<char> = text.chars().collect();
        let mut out = Vec::new();
        let mut start = 0;
        while start <= chars.len() {
            let mut found: Option<usize> = None;
            for s in start..=chars.len() {
                match_node(&self.ast, &chars, s, s == 0, &mut |end| {
                    found = Some(end);
                    true
                });
                if let Some(end) = found {
                    out.push(Match { start: s, end });
                    // Avoid infinite loops on empty matches.
                    start = if end > s { end } else { s + 1 };
                    break;
                }
            }
            if found.is_none() {
                break;
            }
        }
        out
    }

    /// Counts matches in `text`; the per-sentence work item of the Sirius
    /// Suite Regex kernel.
    pub fn count_matches(&self, text: &str) -> usize {
        self.find_all(text).len()
    }
}

// -------------------------------------------------------------------------
// Parsing
// -------------------------------------------------------------------------

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: &str) -> ParseRegexError {
        ParseRegexError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseRegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseRegexError> {
        let atom = self.parse_atom()?;
        let quantifiable = !matches!(atom, Ast::AnchorStart | Ast::AnchorEnd);
        let (min, max) = match self.peek() {
            Some('*') => (0, None),
            Some('+') => (1, None),
            Some('?') => (0, Some(1)),
            Some('{') => {
                self.bump();
                let (min, max) = self.parse_bounds()?;
                if !quantifiable {
                    return Err(self.err("quantifier applied to anchor"));
                }
                return Ok(Ast::Repeat {
                    node: Box::new(atom),
                    min,
                    max,
                });
            }
            _ => return Ok(atom),
        };
        self.bump();
        if !quantifiable {
            return Err(self.err("quantifier applied to anchor"));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), ParseRegexError> {
        let min = self.parse_number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((min, None));
                }
                let max = self.parse_number()?;
                if self.bump() != Some('}') {
                    return Err(self.err("expected '}' after bounds"));
                }
                if max < min {
                    return Err(self.err("bound max < min"));
                }
                Ok((min, Some(max)))
            }
            _ => Err(self.err("expected '}' or ',' in bounds")),
        }
    }

    fn parse_number(&mut self) -> Result<u32, ParseRegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected number in bounds"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|_| self.err("bound too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseRegexError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unbalanced '('"));
                }
                Ok(inner)
            }
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Any),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('\\') => self.parse_escape(false).map(|item| match item {
                ClassItem::Char(c) => Ast::Char(c),
                other => Ast::Class {
                    negated: false,
                    items: vec![other],
                },
            }),
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.pos -= 1;
                Err(self.err(&format!("dangling quantifier '{c}'")))
            }
            Some(c) => Ok(Ast::Char(c)),
        }
    }

    fn parse_escape(&mut self, in_class: bool) -> Result<ClassItem, ParseRegexError> {
        match self.bump() {
            None => Err(self.err("trailing backslash")),
            Some('d') => Ok(ClassItem::Digit),
            Some('D') => Ok(ClassItem::NotDigit),
            Some('w') => Ok(ClassItem::Word),
            Some('W') => Ok(ClassItem::NotWord),
            Some('s') => Ok(ClassItem::Space),
            Some('S') => Ok(ClassItem::NotSpace),
            Some('n') => Ok(ClassItem::Char('\n')),
            Some('t') => Ok(ClassItem::Char('\t')),
            Some('r') => Ok(ClassItem::Char('\r')),
            Some(c) if !c.is_alphanumeric() || in_class => Ok(ClassItem::Char(c)),
            Some(c) => Err(self.err(&format!("unknown escape '\\{c}'"))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseRegexError> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated character class")),
                Some(']') => break,
                Some('\\') => items.push(self.parse_escape(true)?),
                Some(c) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump(); // '-'
                        let hi = match self.bump() {
                            Some('\\') => match self.parse_escape(true)? {
                                ClassItem::Char(h) => h,
                                _ => return Err(self.err("class shorthand in range")),
                            },
                            Some(h) => h,
                            None => return Err(self.err("unterminated range")),
                        };
                        if hi < c {
                            return Err(self.err("inverted range"));
                        }
                        items.push(ClassItem::Range(c, hi));
                    } else {
                        items.push(ClassItem::Char(c));
                    }
                }
            }
        }
        Ok(Ast::Class { negated, items })
    }
}

// -------------------------------------------------------------------------
// Matching
// -------------------------------------------------------------------------

/// Attempts to match `node` at `chars[pos..]`. Calls `k` with the end
/// position of each successful parse; `k` returns `true` to stop the search.
/// Returns `true` if the continuation accepted.
fn match_node(
    node: &Ast,
    chars: &[char],
    pos: usize,
    at_start: bool,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match node {
        Ast::Empty => k(pos),
        Ast::Char(c) => {
            if chars.get(pos) == Some(c) {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::Any => {
            if pos < chars.len() {
                k(pos + 1)
            } else {
                false
            }
        }
        Ast::Class { negated, items } => match chars.get(pos) {
            Some(&c) => {
                let hit = items.iter().any(|i| i.matches(c));
                if hit != *negated {
                    k(pos + 1)
                } else {
                    false
                }
            }
            None => false,
        },
        Ast::AnchorStart => {
            if pos == 0 && at_start {
                k(pos)
            } else if pos == 0 {
                // `find` probes interior starts; '^' only matches the true
                // string start.
                false
            } else {
                false
            }
        }
        Ast::AnchorEnd => {
            if pos == chars.len() {
                k(pos)
            } else {
                false
            }
        }
        Ast::Concat(items) => match_seq(items, chars, pos, at_start, k),
        Ast::Alt(branches) => branches
            .iter()
            .any(|b| match_node(b, chars, pos, at_start, k)),
        Ast::Repeat { node, min, max } => match_repeat(node, *min, *max, chars, pos, at_start, k),
    }
}

fn match_seq(
    items: &[Ast],
    chars: &[char],
    pos: usize,
    at_start: bool,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    match items.split_first() {
        None => k(pos),
        Some((head, rest)) => match_node(head, chars, pos, at_start, &mut |next| {
            match_seq(rest, chars, next, at_start, k)
        }),
    }
}

fn match_repeat(
    node: &Ast,
    min: u32,
    max: Option<u32>,
    chars: &[char],
    pos: usize,
    at_start: bool,
    k: &mut dyn FnMut(usize) -> bool,
) -> bool {
    // Greedy: recursively consume as many repetitions as possible first.
    fn go(
        node: &Ast,
        remaining_min: u32,
        remaining_max: Option<u32>,
        chars: &[char],
        pos: usize,
        at_start: bool,
        k: &mut dyn FnMut(usize) -> bool,
    ) -> bool {
        let can_take_more = remaining_max.is_none_or(|m| m > 0);
        if can_take_more {
            let taken = match_node(node, chars, pos, at_start, &mut |next| {
                if next == pos {
                    // Zero-width repetition cannot make progress; stop to
                    // guarantee termination.
                    return false;
                }
                go(
                    node,
                    remaining_min.saturating_sub(1),
                    remaining_max.map(|m| m - 1),
                    chars,
                    next,
                    at_start,
                    k,
                )
            });
            if taken {
                return true;
            }
        }
        if remaining_min == 0 {
            k(pos)
        } else {
            false
        }
    }
    go(node, min, max, chars, pos, at_start, k)
}

/// The question-word and token-shape patterns used by the OpenEphyra-style
/// question analysis, mirroring the paper's example `^[0-9,th]$` style
/// filters (Figure 6).
pub fn question_patterns() -> Vec<Regex> {
    [
        r"^(what|who|where|when|which|why|how)$",
        r"^[0-9]+(th|st|nd|rd)?$",
        r"^[A-Z][a-z]+$",
        r"[^a-zA-Z0-9 ]",
        r"^(is|was|are|were|does|do|did)$",
    ]
    .iter()
    .map(|p| Regex::new(p).expect("built-in patterns compile"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?}: {e}"))
    }

    #[test]
    fn literal_match() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("abx"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(!re("^abc$").is_match("abcx"));
        assert!(re("^a").is_match("abc"));
        assert!(re("c$").is_match("abc"));
    }

    #[test]
    fn star_plus_question() {
        assert!(re("ab*c").is_match("ac"));
        assert!(re("ab*c").is_match("abbbc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab+c").is_match("abc"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
        assert!(!re("ab?c").is_match("abbc"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(re("a{3}").is_match("aaa"));
        assert!(!re("^a{3}$").is_match("aa"));
        assert!(re("^a{2,}$").is_match("aaaa"));
        assert!(!re("^a{2,3}$").is_match("aaaa"));
        assert!(re("^a{2,3}$").is_match("aaa"));
        assert!(re("^a{0,1}$").is_match(""));
    }

    #[test]
    fn classes_and_ranges() {
        assert!(re("[a-c]+").is_match("bb"));
        assert!(!re("^[a-c]+$").is_match("bd"));
        assert!(re("[^0-9]").is_match("a"));
        assert!(!re("^[^0-9]$").is_match("5"));
        assert!(re(r"^[\d]+$").is_match("123"));
        assert!(re(r"^[a\-z]$").is_match("-"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").is_match("year 2015"));
        assert!(!re(r"^\d+$").is_match("20a15"));
        assert!(re(r"\w+").is_match("hello"));
        assert!(re(r"\s").is_match("a b"));
        assert!(re(r"\.").is_match("a.b"));
        assert!(!re(r"^\.$").is_match("x"));
        assert!(re(r"\S+").is_match("abc"));
        assert!(re(r"\W").is_match("a!b"));
        assert!(re(r"\D").is_match("a1"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(re("^(cat|dog)$").is_match("dog"));
        assert!(!re("^(cat|dog)$").is_match("cow"));
        assert!(re("^a(b|c)*d$").is_match("abcbcd"));
        assert!(re("gr(a|e)y").is_match("grey"));
    }

    #[test]
    fn paper_ordinal_pattern() {
        let ordinal = re(r"^[0-9]+(th|st|nd|rd)$");
        assert!(ordinal.is_match("44th"));
        assert!(ordinal.is_match("1st"));
        assert!(ordinal.is_match("2nd"));
        assert!(ordinal.is_match("3rd"));
        assert!(!ordinal.is_match("44"));
        assert!(!ordinal.is_match("th"));
    }

    #[test]
    fn find_returns_leftmost() {
        let m = re("o+").find("foo boo").expect("match");
        assert_eq!((m.start, m.end), (1, 3));
    }

    #[test]
    fn find_all_non_overlapping() {
        let ms = re("a+").find_all("aa b aaa a");
        assert_eq!(ms.len(), 3);
        assert_eq!((ms[0].start, ms[0].end), (0, 2));
        assert_eq!((ms[1].start, ms[1].end), (5, 8));
        assert_eq!((ms[2].start, ms[2].end), (9, 10));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("abc"));
        assert_eq!(re("a*").count_matches("bbb"), 4); // empty match at each gap
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(abc").is_err());
        assert!(Regex::new("abc)").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[abc").is_err());
        assert!(Regex::new(r"a\").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("a{x}").is_err());
        assert!(Regex::new("^*").is_err());
    }

    #[test]
    fn unicode_text() {
        assert!(re("^..$").is_match("日本"));
        assert!(re("本").is_match("日本語"));
    }

    #[test]
    fn builtin_question_patterns_compile_and_hit() {
        let pats = question_patterns();
        assert!(pats[0].is_match("who"));
        assert!(pats[1].is_match("44th"));
        assert!(pats[4].is_match("was"));
    }

    #[test]
    fn display_round_trips_pattern() {
        let r = re("^a(b|c)*d$");
        assert_eq!(r.to_string(), "^a(b|c)*d$");
        assert_eq!(r.pattern(), "^a(b|c)*d$");
    }
}
