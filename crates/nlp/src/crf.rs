//! Linear-chain Conditional Random Field for part-of-speech tagging.
//!
//! The paper's QA service spends a large share of its cycles in CRFsuite-style
//! part-of-speech tagging (Figure 6/9; Sirius Suite "CRF" kernel trained on
//! the CoNLL-2000 shared task). This module implements the full model from
//! Lafferty et al. (2001): sparse emission features, label-transition
//! weights, forward-backward marginals, exact conditional log-likelihood with
//! analytic gradients (unit-tested against finite differences), SGD training
//! with L2 regularization, and Viterbi decoding.

use std::collections::HashMap;

/// A tagged training/evaluation sentence: tokens with gold label ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedSentence {
    /// The tokens of the sentence.
    pub tokens: Vec<String>,
    /// Gold label id per token (indices into the model's label set).
    pub labels: Vec<usize>,
}

/// Sparse per-position emission features (feature ids).
type PositionFeatures = Vec<u32>;

/// Extracts string-valued features for token `t` of `tokens`.
///
/// The templates mirror common CRF POS taggers: word identity, lowercased
/// word, suffixes, shape, and neighbouring words.
pub fn token_features(tokens: &[String], t: usize) -> Vec<String> {
    let w = &tokens[t];
    let lower = w.to_lowercase();
    let mut feats = vec![format!("w={w}"), format!("lw={lower}"), "bias".to_owned()];
    let chars: Vec<char> = lower.chars().collect();
    for n in 1..=3usize {
        if chars.len() >= n {
            let suffix: String = chars[chars.len() - n..].iter().collect();
            feats.push(format!("suf{n}={suffix}"));
        }
    }
    if w.chars().next().is_some_and(char::is_uppercase) {
        feats.push("shape=cap".to_owned());
    }
    if w.chars().all(|c| c.is_ascii_digit()) {
        feats.push("shape=digits".to_owned());
    } else if w.chars().any(|c| c.is_ascii_digit()) {
        feats.push("shape=hasdigit".to_owned());
    }
    if t == 0 {
        feats.push("pos=first".to_owned());
    }
    if t + 1 == tokens.len() {
        feats.push("pos=last".to_owned());
    }
    if t > 0 {
        feats.push(format!("w-1={}", tokens[t - 1].to_lowercase()));
    }
    if t + 1 < tokens.len() {
        feats.push(format!("w+1={}", tokens[t + 1].to_lowercase()));
    }
    feats
}

/// A trained linear-chain CRF.
#[derive(Debug, Clone)]
pub struct Crf {
    labels: Vec<String>,
    feature_map: HashMap<String, u32>,
    /// Emission weights, indexed `feature_id * L + label`.
    emission: Vec<f64>,
    /// Transition weights, indexed `prev * L + next`.
    transition: Vec<f64>,
    /// Weights for the first label of a sequence.
    begin: Vec<f64>,
}

/// Training hyper-parameters for [`Crf::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength (per-example).
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            learning_rate: 0.2,
            l2: 1e-4,
        }
    }
}

impl Crf {
    /// Creates an untrained CRF over `labels`, building the feature map from
    /// `data`.
    pub fn new(labels: Vec<String>, data: &[TaggedSentence]) -> Self {
        let mut feature_map = HashMap::new();
        for sent in data {
            for t in 0..sent.tokens.len() {
                for f in token_features(&sent.tokens, t) {
                    let next = feature_map.len() as u32;
                    feature_map.entry(f).or_insert(next);
                }
            }
        }
        let num_labels = labels.len();
        let num_features = feature_map.len();
        Self {
            labels,
            feature_map,
            emission: vec![0.0; num_features * num_labels],
            transition: vec![0.0; num_labels * num_labels],
            begin: vec![0.0; num_labels],
        }
    }

    /// Trains on `data` and returns the CRF, as a convenience.
    pub fn train(labels: Vec<String>, data: &[TaggedSentence], config: TrainConfig) -> Self {
        let mut crf = Self::new(labels, data);
        for epoch in 0..config.epochs {
            // Simple learning-rate decay keeps late epochs stable.
            let lr = config.learning_rate / (1.0 + 0.3 * epoch as f64);
            for sent in data {
                crf.sgd_step(sent, lr, config.l2);
            }
        }
        crf
    }

    /// The label inventory, in id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of distinct emission features.
    pub fn num_features(&self) -> usize {
        self.feature_map.len()
    }

    /// Returns the label id for `name`, if it is in the inventory.
    pub fn label_id(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    fn featurize(&self, tokens: &[String]) -> Vec<PositionFeatures> {
        (0..tokens.len())
            .map(|t| {
                token_features(tokens, t)
                    .into_iter()
                    .filter_map(|f| self.feature_map.get(&f).copied())
                    .collect()
            })
            .collect()
    }

    /// Emission score of `label` at a position with features `feats`.
    fn score(&self, feats: &PositionFeatures, label: usize) -> f64 {
        let num_labels = self.labels.len();
        feats
            .iter()
            .map(|&f| self.emission[f as usize * num_labels + label])
            .sum()
    }

    /// Per-position unnormalized log-potentials, `scores[t][y]`.
    fn potentials(&self, feats: &[PositionFeatures]) -> Vec<Vec<f64>> {
        feats
            .iter()
            .map(|pf| (0..self.labels.len()).map(|y| self.score(pf, y)).collect())
            .collect()
    }

    /// Viterbi-decodes `tokens` into the most likely label sequence.
    ///
    /// Returns an empty vector for empty input.
    pub fn decode(&self, tokens: &[String]) -> Vec<usize> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let num_labels = self.labels.len();
        let feats = self.featurize(tokens);
        let pot = self.potentials(&feats);
        let n = tokens.len();
        let mut delta = vec![vec![f64::NEG_INFINITY; num_labels]; n];
        let mut back = vec![vec![0usize; num_labels]; n];
        for y in 0..num_labels {
            delta[0][y] = self.begin[y] + pot[0][y];
        }
        for t in 1..n {
            for y in 0..num_labels {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0;
                #[allow(clippy::needless_range_loop)] // indexes two arrays
                for prev in 0..num_labels {
                    let s = delta[t - 1][prev] + self.transition[prev * num_labels + y];
                    if s > best {
                        best = s;
                        arg = prev;
                    }
                }
                delta[t][y] = best + pot[t][y];
                back[t][y] = arg;
            }
        }
        let mut last = (0..num_labels)
            .max_by(|&a, &b| delta[n - 1][a].total_cmp(&delta[n - 1][b]))
            .expect("non-empty label set");
        let mut path = vec![0usize; n];
        path[n - 1] = last;
        for t in (1..n).rev() {
            last = back[t][last];
            path[t - 1] = last;
        }
        path
    }

    /// Decodes and maps ids back to label strings.
    pub fn tag(&self, tokens: &[String]) -> Vec<String> {
        self.decode(tokens)
            .into_iter()
            .map(|y| self.labels[y].clone())
            .collect()
    }

    /// Conditional log-likelihood `log p(labels | tokens)` of one sentence.
    pub fn log_likelihood(&self, sent: &TaggedSentence) -> f64 {
        let feats = self.featurize(&sent.tokens);
        let pot = self.potentials(&feats);
        let gold = self.path_score(&pot, &sent.labels);
        let log_z = self.log_partition(&pot);
        gold - log_z
    }

    fn path_score(&self, pot: &[Vec<f64>], labels: &[usize]) -> f64 {
        let num_labels = self.labels.len();
        let mut s = self.begin[labels[0]] + pot[0][labels[0]];
        for t in 1..labels.len() {
            s += self.transition[labels[t - 1] * num_labels + labels[t]] + pot[t][labels[t]];
        }
        s
    }

    fn log_partition(&self, pot: &[Vec<f64>]) -> f64 {
        let alpha = self.forward(pot);
        log_sum_exp(alpha.last().expect("non-empty sentence"))
    }

    /// Forward log-messages `alpha[t][y]`.
    fn forward(&self, pot: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let num_labels = self.labels.len();
        let n = pot.len();
        let mut alpha = vec![vec![0.0; num_labels]; n];
        for y in 0..num_labels {
            alpha[0][y] = self.begin[y] + pot[0][y];
        }
        let mut scratch = vec![0.0; num_labels];
        for t in 1..n {
            for y in 0..num_labels {
                #[allow(clippy::needless_range_loop)] // indexes two arrays
                for prev in 0..num_labels {
                    scratch[prev] = alpha[t - 1][prev] + self.transition[prev * num_labels + y];
                }
                alpha[t][y] = log_sum_exp(&scratch) + pot[t][y];
            }
        }
        alpha
    }

    /// Backward log-messages `beta[t][y]`.
    fn backward(&self, pot: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let num_labels = self.labels.len();
        let n = pot.len();
        let mut beta = vec![vec![0.0; num_labels]; n];
        let mut scratch = vec![0.0; num_labels];
        for t in (0..n - 1).rev() {
            for y in 0..num_labels {
                for next in 0..num_labels {
                    scratch[next] = self.transition[y * num_labels + next]
                        + pot[t + 1][next]
                        + beta[t + 1][next];
                }
                beta[t][y] = log_sum_exp(&scratch);
            }
        }
        beta
    }

    /// Posterior marginals `p(y_t = y | tokens)`.
    pub fn marginals(&self, tokens: &[String]) -> Vec<Vec<f64>> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let feats = self.featurize(tokens);
        let pot = self.potentials(&feats);
        let alpha = self.forward(&pot);
        let beta = self.backward(&pot);
        let log_z = log_sum_exp(alpha.last().expect("non-empty"));
        alpha
            .iter()
            .zip(&beta)
            .map(|(a, b)| {
                (0..self.labels.len())
                    .map(|y| (a[y] + b[y] - log_z).exp())
                    .collect()
            })
            .collect()
    }

    /// Posterior (per-position argmax of marginals) decoding, used by the
    /// CRF ablation bench as an alternative to Viterbi.
    pub fn decode_posterior(&self, tokens: &[String]) -> Vec<usize> {
        self.marginals(tokens)
            .into_iter()
            .map(|m| {
                m.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty label set")
            })
            .collect()
    }

    /// One SGD step on a sentence: gradient of the conditional log-likelihood
    /// minus L2 pull. Exposed for testing; [`Crf::train`] calls this.
    pub fn sgd_step(&mut self, sent: &TaggedSentence, lr: f64, l2: f64) {
        if sent.tokens.is_empty() {
            return;
        }
        let num_labels = self.labels.len();
        let feats = self.featurize(&sent.tokens);
        let pot = self.potentials(&feats);
        let alpha = self.forward(&pot);
        let beta = self.backward(&pot);
        let log_z = log_sum_exp(alpha.last().expect("non-empty"));
        let n = sent.tokens.len();

        // Emission gradient: observed - expected per position.
        for t in 0..n {
            let gold = sent.labels[t];
            for y in 0..num_labels {
                let p = (alpha[t][y] + beta[t][y] - log_z).exp();
                let g = f64::from(u8::from(y == gold)) - p;
                if g != 0.0 {
                    for &f in &feats[t] {
                        let idx = f as usize * num_labels + y;
                        self.emission[idx] += lr * (g - l2 * self.emission[idx]);
                    }
                }
            }
        }
        // Begin gradient.
        for y in 0..num_labels {
            let p = (alpha[0][y] + beta[0][y] - log_z).exp();
            let g = f64::from(u8::from(y == sent.labels[0])) - p;
            self.begin[y] += lr * (g - l2 * self.begin[y]);
        }
        // Transition gradient: observed - expected pairwise marginals.
        for t in 1..n {
            for prev in 0..num_labels {
                for y in 0..num_labels {
                    let log_p = alpha[t - 1][prev]
                        + self.transition[prev * num_labels + y]
                        + pot[t][y]
                        + beta[t][y]
                        - log_z;
                    let p = log_p.exp();
                    let observed =
                        f64::from(u8::from(prev == sent.labels[t - 1] && y == sent.labels[t]));
                    let idx = prev * num_labels + y;
                    self.transition[idx] += lr * (observed - p - l2 * self.transition[idx]);
                }
            }
        }
    }

    /// Serializes the trained model (see [`sirius_codec`]).
    pub fn write_to(&self, e: &mut sirius_codec::Encoder) {
        e.tag("crf_v1");
        e.str_slice(&self.labels);
        // Feature map as parallel (name, id) lists, in id order for
        // deterministic output.
        let mut feats: Vec<(&String, &u32)> = self.feature_map.iter().collect();
        feats.sort_by_key(|(_, id)| **id);
        e.u32(feats.len() as u32);
        for (name, id) in feats {
            e.str(name);
            e.u32(*id);
        }
        let to_f32 = |xs: &[f64]| xs.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        e.f32_slice(&to_f32(&self.emission));
        e.f32_slice(&to_f32(&self.transition));
        e.f32_slice(&to_f32(&self.begin));
    }

    /// Restores a model saved with [`Crf::write_to`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn read_from(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("crf_v1")?;
        let labels = d.str_vec()?;
        let n = d.u32()? as usize;
        let mut feature_map = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = d.str()?;
            let id = d.u32()?;
            feature_map.insert(name, id);
        }
        let to_f64 = |xs: Vec<f32>| xs.into_iter().map(f64::from).collect::<Vec<f64>>();
        let emission = to_f64(d.f32_vec()?);
        let transition = to_f64(d.f32_vec()?);
        let begin = to_f64(d.f32_vec()?);
        let num_labels = labels.len();
        if num_labels == 0
            || begin.len() != num_labels
            || transition.len() != num_labels * num_labels
            || emission.len() != feature_map.len() * num_labels
        {
            return Err(sirius_codec::DecodeError {
                message: "inconsistent CRF dimensions".into(),
                offset: 0,
            });
        }
        Ok(Self {
            labels,
            feature_map,
            emission,
            transition,
            begin,
        })
    }

    /// Token-level accuracy over `data`.
    pub fn accuracy(&self, data: &[TaggedSentence]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for sent in data {
            let pred = self.decode(&sent.tokens);
            correct += pred
                .iter()
                .zip(&sent.labels)
                .filter(|(a, b)| a == b)
                .count();
            total += sent.labels.len();
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Numerically stable `log(sum(exp(xs)))`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> (Vec<String>, Vec<TaggedSentence>) {
        let labels = vec!["DET".to_owned(), "NOUN".to_owned(), "VERB".to_owned()];
        let mk = |words: &[&str], tags: &[usize]| TaggedSentence {
            tokens: words.iter().map(|w| (*w).to_owned()).collect(),
            labels: tags.to_vec(),
        };
        let data = vec![
            mk(&["the", "dog", "runs"], &[0, 1, 2]),
            mk(&["a", "cat", "sleeps"], &[0, 1, 2]),
            mk(&["the", "cat", "runs"], &[0, 1, 2]),
            mk(&["a", "dog", "sleeps"], &[0, 1, 2]),
            mk(&["the", "bird", "sings"], &[0, 1, 2]),
        ];
        (labels, data)
    }

    #[test]
    fn training_fits_toy_grammar() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        assert!(
            crf.accuracy(&data) > 0.99,
            "accuracy {}",
            crf.accuracy(&data)
        );
        let tags = crf.tag(&["a".into(), "bird".into(), "runs".into()]);
        assert_eq!(tags, vec!["DET", "NOUN", "VERB"]);
    }

    #[test]
    fn log_likelihood_increases_with_training() {
        let (labels, data) = toy_data();
        let untrained = Crf::new(labels.clone(), &data);
        let trained = Crf::train(labels, &data, TrainConfig::default());
        let before: f64 = data.iter().map(|s| untrained.log_likelihood(s)).sum();
        let after: f64 = data.iter().map(|s| trained.log_likelihood(s)).sum();
        assert!(after > before);
        assert!(after < 0.0 + 1e-9, "log-likelihood must stay <= 0");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (labels, data) = toy_data();
        let mut crf = Crf::new(labels, &data);
        let sent = &data[0];
        // Analytic gradient via a tiny SGD step with lr=eps_step, no reg.
        let base_emission = crf.emission.clone();
        let base_transition = crf.transition.clone();
        let lr = 1e-3;
        crf.sgd_step(sent, lr, 0.0);
        let grad_emission: Vec<f64> = crf
            .emission
            .iter()
            .zip(&base_emission)
            .map(|(a, b)| (a - b) / lr)
            .collect();
        let grad_transition: Vec<f64> = crf
            .transition
            .iter()
            .zip(&base_transition)
            .map(|(a, b)| (a - b) / lr)
            .collect();
        // Restore and compare against central differences.
        crf.emission = base_emission.clone();
        crf.transition = base_transition.clone();
        let eps = 1e-5;
        for idx in [0usize, 3, 7] {
            if idx >= crf.emission.len() {
                continue;
            }
            crf.emission[idx] = base_emission[idx] + eps;
            let up = crf.log_likelihood(sent);
            crf.emission[idx] = base_emission[idx] - eps;
            let down = crf.log_likelihood(sent);
            crf.emission[idx] = base_emission[idx];
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad_emission[idx]).abs() < 1e-3,
                "emission[{idx}]: fd={fd} analytic={}",
                grad_emission[idx]
            );
        }
        for idx in 0..crf.transition.len() {
            crf.transition[idx] = base_transition[idx] + eps;
            let up = crf.log_likelihood(sent);
            crf.transition[idx] = base_transition[idx] - eps;
            let down = crf.log_likelihood(sent);
            crf.transition[idx] = base_transition[idx];
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad_transition[idx]).abs() < 1e-3,
                "transition[{idx}]: fd={fd} analytic={}",
                grad_transition[idx]
            );
        }
    }

    #[test]
    fn marginals_sum_to_one() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        let m = crf.marginals(&["the".into(), "dog".into(), "runs".into()]);
        for row in m {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "marginal row sums to {s}");
        }
    }

    #[test]
    fn viterbi_beats_random_paths() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        let tokens: Vec<String> = vec!["the".into(), "dog".into(), "sings".into()];
        let best = crf.decode(&tokens);
        let feats = crf.featurize(&tokens);
        let pot = crf.potentials(&feats);
        let best_score = crf.path_score(&pot, &best);
        // Exhaustively enumerate all 27 paths.
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let s = crf.path_score(&pot, &[a, b, c]);
                    assert!(s <= best_score + 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_input_decodes_empty() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        assert!(crf.decode(&[]).is_empty());
        assert!(crf.marginals(&[]).is_empty());
    }

    #[test]
    fn log_sum_exp_stability() {
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn persistence_round_trips_tagging() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        let mut e = sirius_codec::Encoder::new();
        crf.write_to(&mut e);
        let bytes = e.into_bytes();
        let mut d = sirius_codec::Decoder::new(&bytes);
        let restored = Crf::read_from(&mut d).expect("decode");
        d.finish().expect("fully consumed");
        let tokens: Vec<String> = vec!["the".into(), "dog".into(), "runs".into()];
        assert_eq!(crf.tag(&tokens), restored.tag(&tokens));
        assert_eq!(crf.labels(), restored.labels());
        // Corruption is caught.
        let mut bad = bytes.clone();
        bad[5] ^= 0x55;
        assert!(Crf::read_from(&mut sirius_codec::Decoder::new(&bad)).is_err());
    }

    #[test]
    fn posterior_decoding_agrees_on_confident_inputs() {
        let (labels, data) = toy_data();
        let crf = Crf::train(labels, &data, TrainConfig::default());
        let tokens: Vec<String> = vec!["the".into(), "cat".into(), "sleeps".into()];
        assert_eq!(crf.decode(&tokens), crf.decode_posterior(&tokens));
    }
}
