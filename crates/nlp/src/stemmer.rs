//! Porter stemming algorithm (Porter, 1980), implemented from the original
//! paper's step description.
//!
//! This is one of the three hot QA components the paper extracts into Sirius
//! Suite (Table 4: "Porter Stemming (Stemmer), baseline Porter, input 4M word
//! list, data granularity: each individual word"). The FPGA port discussion
//! (Section 4.3.4) revolves around the mutual exclusivity of the suffix test
//! conditions in these steps; the structure below mirrors those six steps.

/// Stems a single lowercase English word, returning the stemmed form.
///
/// Words of length <= 2 are returned unchanged, as in the reference
/// implementation. Input is expected to be lowercase ASCII; other characters
/// pass through untouched.
///
/// # Example
///
/// ```
/// assert_eq!(sirius_nlp::stemmer::stem("caresses"), "caress");
/// assert_eq!(sirius_nlp::stemmer::stem("ponies"), "poni");
/// assert_eq!(sirius_nlp::stemmer::stem("relational"), "relat");
/// ```
pub fn stem(word: &str) -> String {
    let mut s = Stemmer::new(word);
    s.run();
    s.into_string()
}

/// Stems every word in a slice; the unit of parallelism used by the Sirius
/// Suite stemmer kernel ("for each individual word").
pub fn stem_all(words: &[String]) -> Vec<String> {
    words.iter().map(|w| stem(w)).collect()
}

struct Stemmer {
    b: Vec<u8>,
    /// End of the string (exclusive) — the "k" pointer of the reference code.
    k: usize,
}

impl Stemmer {
    fn new(word: &str) -> Self {
        let b: Vec<u8> = word.bytes().collect();
        let k = b.len();
        Self { b, k }
    }

    fn into_string(mut self) -> String {
        self.b.truncate(self.k);
        String::from_utf8(self.b).unwrap_or_default()
    }

    fn run(&mut self) {
        if self.k <= 2 {
            return;
        }
        self.step1ab();
        self.step1c();
        self.step2();
        self.step3();
        self.step4();
        self.step5();
    }

    /// True if b[i] is a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measure of the stem b[0..j]: the number of VC sequences.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        while i < j && self.cons(i) {
            i += 1;
        }
        loop {
            // Skip vowels.
            while i < j && !self.cons(i) {
                i += 1;
            }
            if i >= j {
                return n;
            }
            // Skip consonants — one full VC observed.
            while i < j && self.cons(i) {
                i += 1;
            }
            n += 1;
            if i >= j {
                return n;
            }
        }
    }

    /// True if b[0..j] contains a vowel.
    fn vowel_in_stem(&self, j: usize) -> bool {
        (0..j).any(|i| !self.cons(i))
    }

    /// True if b[i-1..=i] is a double consonant.
    fn double_cons(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// True if b[i-2..=i] is consonant-vowel-consonant and the final
    /// consonant is not w, x or y — the "cvc" test used to restore an 'e'.
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the word currently ends with `suffix`; if so, `j` is set so
    /// that b[0..j] is the stem.
    fn ends(&self, suffix: &str) -> Option<usize> {
        let s = suffix.as_bytes();
        if s.len() > self.k {
            return None;
        }
        let j = self.k - s.len();
        if &self.b[j..self.k] == s {
            Some(j)
        } else {
            None
        }
    }

    /// Replaces the current suffix (stem ends at `j`) with `to`.
    fn set_to(&mut self, j: usize, to: &str) {
        self.b.truncate(j);
        self.b.extend_from_slice(to.as_bytes());
        self.k = self.b.len();
    }

    /// If the stem measure at `j` is > 0, replace the suffix with `to`.
    fn replace_if_m0(&mut self, j: usize, to: &str) {
        if self.measure(j) > 0 {
            self.set_to(j, to);
        }
    }

    /// Step 1a: plurals. caresses->caress, ponies->poni, cats->cat.
    /// Step 1b: -ed/-ing. agreed->agree, plastered->plaster, motoring->motor.
    fn step1ab(&mut self) {
        if self.b.get(self.k.wrapping_sub(1)) == Some(&b's') {
            if let Some(j) = self.ends("sses") {
                self.set_to(j, "ss");
            } else if let Some(j) = self.ends("ies") {
                self.set_to(j, "i");
            } else if self.k >= 2 && self.b[self.k - 2] != b's' {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        }
        if let Some(j) = self.ends("eed") {
            if self.measure(j) > 0 {
                self.k -= 1;
                self.b.truncate(self.k);
            }
        } else {
            let j = self
                .ends("ed")
                .filter(|&j| self.vowel_in_stem(j))
                .or_else(|| self.ends("ing").filter(|&j| self.vowel_in_stem(j)));
            if let Some(j) = j {
                self.set_to(j, "");
                if self.ends("at").is_some()
                    || self.ends("bl").is_some()
                    || self.ends("iz").is_some()
                {
                    self.b.push(b'e');
                    self.k += 1;
                } else if self.k >= 1 && self.double_cons(self.k - 1) {
                    let last = self.b[self.k - 1];
                    if !matches!(last, b'l' | b's' | b'z') {
                        self.k -= 1;
                        self.b.truncate(self.k);
                    }
                } else if self.measure(self.k) == 1 && self.k >= 1 && self.cvc(self.k - 1) {
                    self.b.push(b'e');
                    self.k += 1;
                }
            }
        }
    }

    /// Step 1c: turn terminal y to i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if let Some(j) = self.ends("y") {
            if self.vowel_in_stem(j) {
                self.b[self.k - 1] = b'i';
            }
        }
    }

    /// Step 2: double suffixes to single ones, when measure > 0.
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        const RULES: &[(&str, &str)] = &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("abli", "able"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
        ];
        for (from, to) in RULES {
            if let Some(j) = self.ends(from) {
                self.replace_if_m0(j, to);
                return;
            }
        }
    }

    /// Step 3: -ic-, -full, -ness etc.
    fn step3(&mut self) {
        const RULES: &[(&str, &str)] = &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ];
        for (from, to) in RULES {
            if let Some(j) = self.ends(from) {
                self.replace_if_m0(j, to);
                return;
            }
        }
    }

    /// Step 4: strip -ant, -ence etc. when measure > 1.
    fn step4(&mut self) {
        const SUFFIXES: &[&str] = &[
            "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
            "ism", "ate", "iti", "ous", "ive", "ize",
        ];
        for suffix in SUFFIXES {
            if let Some(j) = self.ends(suffix) {
                // "-ion" requires a preceding s or t; handled separately below.
                if self.measure(j) > 1 {
                    self.set_to(j, "");
                }
                return;
            }
        }
        if let Some(j) = self.ends("ion") {
            if j >= 1 && matches!(self.b[j - 1], b's' | b't') && self.measure(j) > 1 {
                self.set_to(j, "");
            }
        }
    }

    /// Step 5: remove final -e when measure > 1 and tidy -ll.
    fn step5(&mut self) {
        if self.k == 0 {
            return;
        }
        if self.b[self.k - 1] == b'e' {
            let j = self.k - 1;
            let m = self.measure(j);
            if m > 1 || (m == 1 && !(j >= 1 && self.cvc(j - 1))) {
                self.k = j;
                self.b.truncate(self.k);
            }
        }
        if self.k >= 1
            && self.b[self.k - 1] == b'l'
            && self.double_cons(self.k - 1)
            && self.measure(self.k) > 1
        {
            self.k -= 1;
            self.b.truncate(self.k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's paper and the canonical test vocabulary.
    #[test]
    fn canonical_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, expected) in cases {
            assert_eq!(stem(input), expected, "stem({input:?})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem(""), "");
    }

    #[test]
    fn stem_all_matches_individual() {
        let words = vec!["running".to_owned(), "capitals".to_owned()];
        assert_eq!(stem_all(&words), vec!["run", "capit"]);
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        for w in ["running", "relational", "ponies", "hopefulness", "elected"] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not idempotent in general, but is on this set; this
            // guards against accidental over-stripping.
            assert_eq!(once, twice, "word {w}");
        }
    }
}
