//! # sirius-nlp
//!
//! The natural-language-processing substrate of the Sirius reproduction
//! (Hauswald et al., ASPLOS 2015): the three hot QA kernels the paper
//! extracts into Sirius Suite, plus the OpenEphyra-style question-answering
//! pipeline that consumes them.
//!
//! * [`stemmer`] — the Porter stemming algorithm (Sirius Suite "Stemmer").
//! * [`regex`] — an SLRE-style regular-expression engine ("Regex").
//! * [`crf`] — a linear-chain Conditional Random Field tagger ("CRF").
//! * [`pos`] — synthetic tagged-sentence generation (CoNLL-2000 stand-in).
//! * [`qa`] — the OpenEphyra-style QA engine: question analysis, retrieval
//!   via [`sirius_search`], document filters and answer extraction, fully
//!   instrumented for the paper's Figure 8/9 breakdowns.
//!
//! # Example
//!
//! ```
//! use sirius_nlp::stemmer::stem;
//! assert_eq!(stem("elected"), "elect");
//! ```

#![warn(missing_docs)]
// Numeric kernels index parallel arrays; indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

pub mod crf;
pub mod pos;
pub mod qa;
pub mod regex;
pub mod stemmer;

pub use crf::{Crf, TaggedSentence, TrainConfig};
pub use qa::{QaConfig, QaEngine, QaResult};
pub use regex::Regex;
