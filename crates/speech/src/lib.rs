//! # sirius-speech
//!
//! The automatic-speech-recognition substrate of the Sirius reproduction
//! (Hauswald et al., ASPLOS 2015): a complete HMM decoder with both
//! GMM (CMU Sphinx style) and hybrid DNN (Kaldi / RWTH RASR style) acoustic
//! scoring, the two headline ASR configurations of the paper (Figure 4).
//!
//! * [`features`] — MFCC front-end (FFT, mel filterbank, DCT, deltas).
//! * [`gmm`] — diagonal-covariance GMMs; the Sirius Suite "GMM" kernel loop.
//! * [`dnn`] — feed-forward network; the Sirius Suite "DNN" kernel.
//! * [`lexicon`] — phone inventory, pronunciations, text normalization.
//! * [`lm`] — bigram language model.
//! * [`hmm`] — decoding graph and beam Viterbi search.
//! * [`synth`] — synthetic speech with ground-truth alignment (substitutes
//!   for recorded queries; see DESIGN.md).
//! * [`asr`] — end-to-end training and recognition with per-stage timing.
//!
//! # Example
//!
//! ```
//! use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig};
//! use sirius_speech::synth::{SynthConfig, Synthesizer};
//!
//! let corpus = ["turn lights on", "turn lights off"];
//! let asr = AsrSystem::train(&corpus, 7, AsrTrainConfig::default());
//! let utt = Synthesizer::new(99, SynthConfig::default()).say("turn lights on");
//! let out = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
//! assert_eq!(out.text, "turn lights on");
//! ```

#![warn(missing_docs)]
// Numeric kernels index parallel arrays; indexed loops are the clearer idiom.
#![allow(clippy::needless_range_loop)]

pub mod asr;
pub mod dnn;
pub mod features;
pub mod gmm;
pub mod hmm;
pub mod lexicon;
pub mod lm;
pub mod nbest;
pub mod streaming;
pub mod synth;
pub mod vad;

pub use asr::{AcousticModelKind, AsrOutput, AsrSystem, AsrTrainConfig, ScoringMode};
pub use hmm::{StreamingDecoder, WindowScorer};
pub use streaming::{StreamProgress, StreamingError, StreamingRecognizer};
pub use synth::{SynthConfig, Synthesizer, Utterance};
