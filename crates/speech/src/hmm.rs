//! HMM decoding graph and beam Viterbi search.
//!
//! Mirrors the paper's ASR pipeline (Figure 4): "the HMM builds a tree of
//! states for the current speech frame using input feature vectors. The GMM
//! or DNN scores the probability of the state transitions in the tree, and
//! the Viterbi algorithm then searches for the most likely path."
//!
//! Words are linear chains of 3-state left-to-right phone HMMs with tied
//! emissions (81 tied states, [`crate::lexicon::NUM_STATES`]); word-to-word
//! transitions carry bigram language-model scores, with optional inter-word
//! silence.

use crate::dnn::{Dnn, DnnPlan, DnnScratch};
use crate::gmm::{Gmm, GmmSoa};
use crate::lexicon::{Lexicon, NUM_STATES, SIL, STATES_PER_PHONE};
use crate::lm::BigramLm;
use sirius_par::ExecPolicy;
use std::time::{Duration, Instant};

/// Scores acoustic frames against all tied HMM states.
pub trait AcousticScorer {
    /// Returns `scores[t][s]` = log-likelihood of frame `t` under tied state
    /// `s`, for the whole utterance at once (DNN scorers need frame context).
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// Human-readable model name ("GMM" or "DNN").
    fn name(&self) -> &'static str;
}

/// On-demand acoustic scores for one utterance, consumed frame by frame by
/// [`Decoder::decode_lazy`].
///
/// The decoder announces each frame with [`FrameScores::begin_frame`], then
/// reads emission scores with [`FrameScores::get`]. Providers that benefit
/// from knowing the beam-surviving state set ahead of the reads (the lazy
/// GMM path) set [`FrameScores::WANTS_ACTIVE_SET`] so the decoder runs a
/// cheap collection pass and calls [`FrameScores::prepare`] first.
///
/// Every implementation in this crate returns **bit-identical** values to
/// the corresponding [`AcousticScorer::score_utterance`] row, so lazy and
/// eager decodes agree exactly (same words, same total log-score bits).
pub trait FrameScores {
    /// Whether the decoder should collect the emission states reachable from
    /// beam-surviving tokens and pass them to [`FrameScores::prepare`].
    const WANTS_ACTIVE_SET: bool;

    /// Number of frames in the utterance.
    fn num_frames(&self) -> usize;

    /// Announces that subsequent [`FrameScores::get`] calls refer to frame
    /// `t`. Frames are visited in non-decreasing order.
    fn begin_frame(&mut self, t: usize);

    /// Hints the set of tied emission states the decoder may read this
    /// frame (deduplicated). Implementations may batch-compute them here.
    fn prepare(&mut self, _needed: &[u16]) {}

    /// Emission score of tied state `s` for the current frame.
    fn get(&mut self, s: usize) -> f32;
}

/// [`FrameScores`] view over a fully pre-computed score matrix — the exact
/// (eager) reference mode.
#[derive(Debug)]
pub struct EagerScores<'a> {
    emis: &'a [Vec<f32>],
    t: usize,
}

impl<'a> EagerScores<'a> {
    /// Wraps pre-computed emission rows `emis[t][tied_state]`.
    pub fn new(emis: &'a [Vec<f32>]) -> Self {
        Self { emis, t: 0 }
    }
}

impl FrameScores for EagerScores<'_> {
    const WANTS_ACTIVE_SET: bool = false;

    fn num_frames(&self) -> usize {
        self.emis.len()
    }

    fn begin_frame(&mut self, t: usize) {
        self.t = t;
    }

    fn get(&mut self, s: usize) -> f32 {
        self.emis[self.t][s]
    }
}

/// Counters exposed by the lazy score providers, for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LazyScoreStats {
    /// `(frame, state)` score reads issued by the decoder.
    pub requested: usize,
    /// `(frame, state)` cells actually evaluated (each at most once).
    pub computed: usize,
    /// Total cells in the dense score matrix (`frames x states`), the
    /// eager scorer's work; `computed / total_cells` is the lazy win.
    pub total_cells: usize,
}

/// Lazily evaluated GMM emission scores with a per-frame memo table.
///
/// The cache is a flat `NUM_STATES`-wide value array validated by an epoch
/// stamp — advancing to the next frame is a single counter increment, no
/// clearing and no allocation. States the beam never reaches are never
/// scored.
#[derive(Debug)]
pub struct LazyGmmScores<'a> {
    soa: &'a [GmmSoa],
    frames: &'a [Vec<f32>],
    policy: ExecPolicy,
    values: Vec<f32>,
    stamp: Vec<u32>,
    epoch: u32,
    t: usize,
    missing: Vec<u16>,
    stats: LazyScoreStats,
    compute_time: Duration,
}

/// Below this many cache misses a parallel prepare costs more in thread
/// startup than it saves; the fan-out only kicks in above it.
const LAZY_PAR_MIN: usize = 48;

impl<'a> LazyGmmScores<'a> {
    fn new(soa: &'a [GmmSoa], frames: &'a [Vec<f32>], policy: ExecPolicy) -> Self {
        Self {
            soa,
            frames,
            policy,
            values: vec![0.0; NUM_STATES],
            stamp: vec![0; NUM_STATES],
            epoch: 0,
            t: 0,
            missing: Vec::with_capacity(NUM_STATES),
            stats: LazyScoreStats {
                total_cells: frames.len() * NUM_STATES,
                ..LazyScoreStats::default()
            },
            compute_time: Duration::ZERO,
        }
    }

    /// Evaluation counters for this utterance.
    pub fn stats(&self) -> LazyScoreStats {
        self.stats
    }

    /// Wall time spent evaluating GMMs (the "scoring" share of the decode).
    pub fn compute_time(&self) -> Duration {
        self.compute_time
    }
}

impl FrameScores for LazyGmmScores<'_> {
    const WANTS_ACTIVE_SET: bool = true;

    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn begin_frame(&mut self, t: usize) {
        self.t = t;
        // A fresh epoch invalidates the whole value array in O(1).
        self.epoch = self.epoch.wrapping_add(1);
    }

    fn prepare(&mut self, needed: &[u16]) {
        let start = Instant::now();
        self.missing.clear();
        for &s in needed {
            if self.stamp[s as usize] != self.epoch {
                self.missing.push(s);
            }
        }
        let frame = &self.frames[self.t];
        if self.missing.len() >= LAZY_PAR_MIN && !self.policy.is_serial(self.missing.len()) {
            let soa = self.soa;
            let vals = self
                .policy
                .map_slice_collect(&self.missing, |&s| soa[s as usize].log_likelihood(frame));
            for (&s, v) in self.missing.iter().zip(vals) {
                self.values[s as usize] = v;
                self.stamp[s as usize] = self.epoch;
            }
        } else {
            for &s in &self.missing {
                self.values[s as usize] = self.soa[s as usize].log_likelihood(frame);
                self.stamp[s as usize] = self.epoch;
            }
        }
        self.stats.computed += self.missing.len();
        self.compute_time += start.elapsed();
    }

    fn get(&mut self, s: usize) -> f32 {
        self.stats.requested += 1;
        if self.stamp[s] != self.epoch {
            // Miss outside prepare (should not happen with a correct active
            // set, but stays correct if it does).
            let start = Instant::now();
            self.values[s] = self.soa[s].log_likelihood(&self.frames[self.t]);
            self.stamp[s] = self.epoch;
            self.stats.computed += 1;
            self.compute_time += start.elapsed();
        }
        self.values[s]
    }
}

/// Frames scored per GEMM batch by [`LazyDnnScores`]. The network reads a
/// whole context window anyway, so the DNN's laziness is in *batching*:
/// frames are scored in blocks of this size, one GEMM per layer per block,
/// instead of one matrix-vector product per frame per layer.
const DNN_BLOCK: usize = 16;

/// Reusable buffers for one block-batched DNN forward: the stacked context
/// windows, the layer ping-pong scratch, and the posterior output.
#[derive(Debug, Default)]
struct BlockScratch {
    x: Vec<f32>,
    scratch: DnnScratch,
    post: Vec<f32>,
}

/// Block-batched DNN emission scores for [`Decoder::decode_lazy`].
///
/// Unlike the GMM, a DNN forward pass produces *all* state posteriors at
/// once, so skipping individual states saves nothing. Instead this provider
/// turns the per-frame matrix-vector products into per-block GEMMs
/// (bit-identical per row — see [`Dnn::forward_batch_into`]), reusing one
/// scratch allocation for the whole utterance.
#[derive(Debug)]
pub struct LazyDnnScores<'a> {
    scorer: &'a DnnScorer,
    frames: &'a [Vec<f32>],
    block: Vec<f32>,
    block_start: usize,
    block_len: usize,
    t: usize,
    buf: BlockScratch,
    stats: LazyScoreStats,
    compute_time: Duration,
}

impl<'a> LazyDnnScores<'a> {
    fn new(scorer: &'a DnnScorer, frames: &'a [Vec<f32>]) -> Self {
        Self {
            scorer,
            frames,
            block: Vec::new(),
            block_start: 0,
            block_len: 0,
            t: 0,
            buf: BlockScratch::default(),
            stats: LazyScoreStats {
                total_cells: frames.len() * NUM_STATES,
                ..LazyScoreStats::default()
            },
            compute_time: Duration::ZERO,
        }
    }

    /// Evaluation counters for this utterance.
    pub fn stats(&self) -> LazyScoreStats {
        self.stats
    }

    /// Wall time spent in the network forward passes.
    pub fn compute_time(&self) -> Duration {
        self.compute_time
    }
}

impl FrameScores for LazyDnnScores<'_> {
    const WANTS_ACTIVE_SET: bool = false;

    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn begin_frame(&mut self, t: usize) {
        self.t = t;
        let in_block = self.block_len > 0
            && (self.block_start..self.block_start + self.block_len).contains(&t);
        if !in_block {
            let start = Instant::now();
            let len = (self.frames.len() - t).min(DNN_BLOCK);
            self.block.clear();
            self.block.resize(len * NUM_STATES, 0.0);
            self.scorer
                .score_block(self.frames, t, len, &mut self.buf, &mut self.block);
            self.block_start = t;
            self.block_len = len;
            self.stats.computed += len * NUM_STATES;
            self.compute_time += start.elapsed();
        }
    }

    fn get(&mut self, s: usize) -> f32 {
        self.stats.requested += 1;
        self.block[(self.t - self.block_start) * NUM_STATES + s]
    }
}

/// Block-batched DNN emission scores whose GEMMs run on a remote
/// [`WindowScorer`] instead of the local network.
///
/// Structurally a twin of [`LazyDnnScores`]: the decoder visits frames in
/// order, so blocks are the same deterministic `[0, 16), [16, 32), ...`
/// partition, and the context windows are built with the same
/// [`DnnScorer::context_window_into`]. Only the forward pass is delegated —
/// which is what lets a serving layer coalesce blocks from several
/// in-flight queries into one GEMM while every query's scores stay
/// bit-identical (row independence, see [`WindowScorer`]).
///
/// [`BatchedDnnScores::compute_time`] includes any time the remote scorer
/// spends waiting for batch-mates; it is the query's *scoring latency*, not
/// pure model FLOP time.
pub struct BatchedDnnScores<'a> {
    scorer: &'a DnnScorer,
    remote: &'a dyn WindowScorer,
    frames: &'a [Vec<f32>],
    block: Vec<f32>,
    block_start: usize,
    block_len: usize,
    t: usize,
    /// Staging buffer for the stacked context windows of one block.
    x: Vec<f32>,
    stats: LazyScoreStats,
    compute_time: Duration,
}

impl<'a> BatchedDnnScores<'a> {
    fn new(scorer: &'a DnnScorer, frames: &'a [Vec<f32>], remote: &'a dyn WindowScorer) -> Self {
        Self {
            scorer,
            remote,
            frames,
            block: Vec::new(),
            block_start: 0,
            block_len: 0,
            t: 0,
            x: Vec::new(),
            stats: LazyScoreStats {
                total_cells: frames.len() * NUM_STATES,
                ..LazyScoreStats::default()
            },
            compute_time: Duration::ZERO,
        }
    }

    /// Evaluation counters for this utterance.
    pub fn stats(&self) -> LazyScoreStats {
        self.stats
    }

    /// Wall time spent obtaining scores from the remote scorer (includes
    /// batch-formation wait, so under load this is scoring *latency*).
    pub fn compute_time(&self) -> Duration {
        self.compute_time
    }
}

impl std::fmt::Debug for BatchedDnnScores<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedDnnScores")
            .field("frames", &self.frames.len())
            .field("block_start", &self.block_start)
            .field("block_len", &self.block_len)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FrameScores for BatchedDnnScores<'_> {
    const WANTS_ACTIVE_SET: bool = false;

    fn num_frames(&self) -> usize {
        self.frames.len()
    }

    fn begin_frame(&mut self, t: usize) {
        self.t = t;
        let in_block = self.block_len > 0
            && (self.block_start..self.block_start + self.block_len).contains(&t);
        if !in_block {
            let start = Instant::now();
            let len = (self.frames.len() - t).min(DNN_BLOCK);
            let dim = self.frames[0].len();
            let width = dim * (2 * self.scorer.context + 1);
            self.x.clear();
            self.x.resize(len * width, 0.0);
            for r in 0..len {
                DnnScorer::context_window_into(
                    self.frames,
                    t + r,
                    self.scorer.context,
                    &mut self.x[r * width..(r + 1) * width],
                );
            }
            self.block = self.remote.score_windows(&self.x, len);
            debug_assert_eq!(self.block.len(), len * NUM_STATES, "remote row width");
            self.block_start = t;
            self.block_len = len;
            self.stats.computed += len * NUM_STATES;
            self.compute_time += start.elapsed();
        }
    }

    fn get(&mut self, s: usize) -> f32 {
        self.stats.requested += 1;
        self.block[(self.t - self.block_start) * NUM_STATES + s]
    }
}

/// GMM emission scorer: one diagonal GMM per tied state (the Sphinx path).
#[derive(Debug, Clone)]
pub struct GmmScorer {
    gmms: Vec<Gmm>,
    /// Dimension-major mirrors of `gmms`, built once; scoring reads these
    /// (bit-identical to the AoS loop, see [`GmmSoa`]).
    soa: Vec<GmmSoa>,
    /// Runtime-only execution policy; states are independent, so scoring
    /// parallelizes over them with bit-identical output at any width.
    policy: ExecPolicy,
}

impl GmmScorer {
    /// Creates a scorer from per-state GMMs.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`NUM_STATES`] models are provided.
    pub fn new(gmms: Vec<Gmm>) -> Self {
        assert_eq!(gmms.len(), NUM_STATES, "need one GMM per tied state");
        let soa = gmms.iter().map(Gmm::soa).collect();
        Self {
            gmms,
            soa,
            policy: ExecPolicy::serial(),
        }
    }

    /// The per-state models.
    pub fn models(&self) -> &[Gmm] {
        &self.gmms
    }

    /// Sets the execution policy used by [`AcousticScorer::score_utterance`].
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The current execution policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// A lazily evaluating [`FrameScores`] provider over `frames` for
    /// [`Decoder::decode_lazy`]. Only beam-reachable `(frame, state)` cells
    /// are ever scored, each at most once.
    pub fn lazy_scores<'a>(&'a self, frames: &'a [Vec<f32>]) -> LazyGmmScores<'a> {
        LazyGmmScores::new(&self.soa, frames, self.policy)
    }
}

impl GmmScorer {
    /// Serializes all per-state models.
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("gmm_scorer");
        e.u32(self.gmms.len() as u32);
        for g in &self.gmms {
            g.encode(e);
        }
    }

    /// Deserializes a scorer written by [`GmmScorer::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes or a wrong state count.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("gmm_scorer")?;
        let n = d.u32()? as usize;
        if n != NUM_STATES {
            return Err(sirius_codec::DecodeError {
                message: format!("expected {NUM_STATES} state models, found {n}"),
                offset: 0,
            });
        }
        let gmms = (0..n)
            .map(|_| Gmm::decode(d))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(gmms))
    }
}

impl AcousticScorer for GmmScorer {
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        // State-major evaluation: stream one state's (small) parameter block
        // over all frames, so parameters stay in registers/L1 while the
        // frame data streams. Values are bit-identical to the frame-major
        // AoS loop; only the traversal order changes, plus a transpose of
        // independent results.
        let n = frames.len();
        let cols: Vec<Vec<f32>> = self.policy.map_slice_collect(&self.soa, |g| {
            let mut col = vec![0.0f32; n];
            g.log_likelihood_batch(frames, &mut col);
            col
        });
        (0..n)
            .map(|t| cols.iter().map(|c| c[t]).collect())
            .collect()
    }

    fn name(&self) -> &'static str {
        "GMM"
    }
}

/// Hybrid DNN/HMM emission scorer: scaled log-posteriors minus log-priors
/// (the Kaldi/RASR path).
#[derive(Debug, Clone)]
pub struct DnnScorer {
    dnn: Dnn,
    /// Transposed-weight plan for the GEMM-batched forward pass; rebuilt
    /// whenever the network is (de)serialized or constructed.
    plan: DnnPlan,
    log_priors: Vec<f32>,
    /// Number of context frames on each side fed to the network.
    context: usize,
    /// Acoustic scale applied to the pseudo log-likelihoods.
    scale: f32,
    /// Runtime-only execution policy; frame blocks are independent, so
    /// scoring parallelizes over them bit-identically.
    policy: ExecPolicy,
}

impl DnnScorer {
    /// Creates a scorer from a trained network and state priors.
    ///
    /// # Panics
    ///
    /// Panics if the network output or prior vector is not [`NUM_STATES`]
    /// wide.
    pub fn new(dnn: Dnn, priors: &[f32], context: usize) -> Self {
        assert_eq!(dnn.output_dim(), NUM_STATES, "DNN output width");
        assert_eq!(priors.len(), NUM_STATES, "prior vector width");
        let total: f32 = priors.iter().sum();
        let log_priors = priors.iter().map(|p| (p / total).max(1e-8).ln()).collect();
        let plan = dnn.plan();
        Self {
            dnn,
            plan,
            log_priors,
            context,
            scale: 1.2,
            policy: ExecPolicy::serial(),
        }
    }

    /// The underlying network.
    pub fn dnn(&self) -> &Dnn {
        &self.dnn
    }

    /// Number of context frames on each side of the scored frame.
    pub fn context(&self) -> usize {
        self.context
    }

    /// Sets the execution policy used by [`AcousticScorer::score_utterance`].
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The current execution policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Builds the stacked context window for frame `t`.
    pub fn context_window(frames: &[Vec<f32>], t: usize, context: usize) -> Vec<f32> {
        let dim = frames[0].len();
        let mut x = vec![0.0f32; dim * (2 * context + 1)];
        Self::context_window_into(frames, t, context, &mut x);
        x
    }

    /// Writes the stacked context window for frame `t` into `out`
    /// (allocation-free variant of [`DnnScorer::context_window`]).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim * (2 * context + 1)` or `frames` is empty.
    pub fn context_window_into(frames: &[Vec<f32>], t: usize, context: usize, out: &mut [f32]) {
        let dim = frames[0].len();
        assert_eq!(out.len(), dim * (2 * context + 1), "window width");
        let n = frames.len() as isize;
        for (i, off) in (-(context as isize)..=(context as isize)).enumerate() {
            let idx = (t as isize + off).clamp(0, n - 1) as usize;
            out[i * dim..(i + 1) * dim].copy_from_slice(&frames[idx]);
        }
    }

    /// Scores frames `start..start + len` into `out` (row-major
    /// `len x NUM_STATES`) with one GEMM per layer over the whole block.
    /// Bit-identical to the per-frame path in
    /// [`AcousticScorer::score_utterance`].
    fn score_block(
        &self,
        frames: &[Vec<f32>],
        start: usize,
        len: usize,
        buf: &mut BlockScratch,
        out: &mut [f32],
    ) {
        let BlockScratch { x, scratch, post } = buf;
        let dim = frames[0].len();
        let width = dim * (2 * self.context + 1);
        x.clear();
        x.resize(len * width, 0.0);
        for r in 0..len {
            Self::context_window_into(
                frames,
                start + r,
                self.context,
                &mut x[r * width..(r + 1) * width],
            );
        }
        self.score_windows_into(x, len, scratch, post, out);
    }

    /// Scores `rows` stacked context windows (row-major `rows x width`) into
    /// `out` (row-major `rows x NUM_STATES`): one GEMM per layer over the
    /// whole batch, then the per-row emission conversion
    /// `scale * (ln(max(p, 1e-12)) - log_prior)`.
    ///
    /// Both the forward pass ([`Dnn::forward_batch_into`]) and the emission
    /// conversion operate strictly row-by-row, so each output row is
    /// bit-identical no matter how many — or whose — windows share the
    /// batch. That row independence is the entire correctness argument for
    /// cross-query batching: a collector may concatenate windows from
    /// several in-flight queries, call this once, and scatter the rows back
    /// without perturbing any query's scores.
    fn score_windows_into(
        &self,
        x: &[f32],
        rows: usize,
        scratch: &mut DnnScratch,
        post: &mut Vec<f32>,
        out: &mut [f32],
    ) {
        self.dnn
            .forward_batch_into(x, rows, &self.plan, scratch, post);
        for r in 0..rows {
            let probs = &post[r * NUM_STATES..(r + 1) * NUM_STATES];
            let row = &mut out[r * NUM_STATES..(r + 1) * NUM_STATES];
            for ((slot, p), pr) in row.iter_mut().zip(probs).zip(&self.log_priors) {
                *slot = self.scale * (p.max(1e-12).ln() - pr);
            }
        }
    }

    /// A block-batched [`FrameScores`] provider over `frames` for
    /// [`Decoder::decode_lazy`].
    pub fn lazy_scores<'a>(&'a self, frames: &'a [Vec<f32>]) -> LazyDnnScores<'a> {
        LazyDnnScores::new(self, frames)
    }

    /// A [`FrameScores`] provider like [`DnnScorer::lazy_scores`] whose
    /// block GEMMs are delegated to `remote` — typically a serving-layer
    /// batch collector that coalesces blocks from several in-flight
    /// queries into one forward pass. Bit-identical to the local path for
    /// any correct [`WindowScorer`] (see [`DnnScorer::score_windows`]).
    pub fn batched_scores<'a>(
        &'a self,
        frames: &'a [Vec<f32>],
        remote: &'a dyn WindowScorer,
    ) -> BatchedDnnScores<'a> {
        BatchedDnnScores::new(self, frames, remote)
    }
}

/// Scores a batch of stacked DNN context windows into emission rows.
///
/// This is the seam a serving layer batches across queries at: the decoder
/// side ([`BatchedDnnScores`]) builds windows exactly as the local path
/// does, and any implementation must return, for each row, bits identical
/// to [`DnnScorer::score_windows`] on that row alone. The reference
/// implementation is `DnnScorer` itself; a batch collector satisfies the
/// contract for free because [`Dnn::forward_batch_into`] and the emission
/// conversion are strictly row-independent.
pub trait WindowScorer: Send + Sync {
    /// Scores `rows` stacked context windows (row-major `rows x width`,
    /// where `width = feature_dim * (2 * context + 1)`) and returns the
    /// emission rows (row-major `rows x NUM_STATES`).
    fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32>;
}

impl WindowScorer for DnnScorer {
    fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
        let mut scratch = DnnScratch::default();
        let mut post = Vec::new();
        let mut out = vec![0.0f32; rows * NUM_STATES];
        self.score_windows_into(x, rows, &mut scratch, &mut post, &mut out);
        out
    }
}

impl DnnScorer {
    /// Serializes the scorer.
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("dnn_scorer");
        self.dnn.encode(e);
        e.f32_slice(&self.log_priors);
        e.u32(self.context as u32);
        e.f32(self.scale);
    }

    /// Deserializes a scorer written by [`DnnScorer::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("dnn_scorer")?;
        let dnn = Dnn::decode(d)?;
        let log_priors = d.f32_vec()?;
        let context = d.u32()? as usize;
        let scale = d.f32()?;
        if dnn.output_dim() != NUM_STATES || log_priors.len() != NUM_STATES {
            return Err(sirius_codec::DecodeError {
                message: "scorer width mismatch".into(),
                offset: 0,
            });
        }
        let plan = dnn.plan();
        Ok(Self {
            dnn,
            plan,
            log_priors,
            context,
            scale,
            policy: ExecPolicy::serial(),
        })
    }
}

impl AcousticScorer for DnnScorer {
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        // Frame-blocked GEMM forward: one matrix multiply per layer per
        // block instead of a matrix-vector product per frame per layer.
        // Rows are bit-identical to the scalar path (see
        // `Dnn::forward_batch_into`); the policy fans out over blocks.
        let n = frames.len();
        let nb = n.div_ceil(DNN_BLOCK);
        let blocks: Vec<Vec<Vec<f32>>> = self.policy.map_collect(nb, |b| {
            let start = b * DNN_BLOCK;
            let len = (n - start).min(DNN_BLOCK);
            let mut buf = BlockScratch::default();
            let mut flat = vec![0.0f32; len * NUM_STATES];
            self.score_block(frames, start, len, &mut buf, &mut flat);
            flat.chunks(NUM_STATES).map(<[f32]>::to_vec).collect()
        });
        blocks.into_iter().flatten().collect()
    }

    fn name(&self) -> &'static str {
        "DNN"
    }
}

/// Decoder tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Log-domain pruning beam; larger is slower but more exact.
    pub beam: f32,
    /// Additive penalty applied when entering a new word.
    pub word_insertion_penalty: f32,
    /// Weight on language-model log-probabilities.
    pub lm_weight: f32,
    /// HMM self-loop probability.
    pub self_loop: f32,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            beam: 2500.0,
            word_insertion_penalty: -4.0,
            lm_weight: 3.0,
            self_loop: 0.6,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ChainState {
    /// Tied emission state id.
    emission: u16,
    /// Word index, `u32::MAX` for the silence chain.
    word: u32,
}

/// The decoding result plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path log-score.
    pub score: f32,
    /// Log-score of the best competing acceptance state with a different
    /// word history, if any. The gap to `score` is a confidence margin.
    pub runner_up_score: Option<f32>,
    /// Whether the path ended at a true acceptance state (a word end or
    /// the inter-word silence). `false` means the beam pruned every
    /// complete path and the best surviving mid-word token was accepted
    /// as a fallback.
    pub complete: bool,
    /// Total tokens expanded (search effort).
    pub tokens_expanded: usize,
}

impl DecodeResult {
    /// A [0, 1] confidence estimate from the per-frame score margin between
    /// the best hypothesis and its closest competitor.
    pub fn confidence(&self, num_frames: usize) -> f32 {
        match self.runner_up_score {
            None => 1.0,
            Some(second) => {
                let margin = (self.score - second) / num_frames.max(1) as f32;
                (margin / 2.0).clamp(0.0, 1.0)
            }
        }
    }
}

/// Beam Viterbi decoder over a word-loop graph.
#[derive(Debug, Clone)]
pub struct Decoder {
    entries: Vec<ChainState>,
    word_first: Vec<usize>,
    word_last: Vec<usize>,
    sil_first: usize,
    sil_last: usize,
    config: DecoderConfig,
    num_words: usize,
}

const ROOT: u32 = u32::MAX;

impl Decoder {
    /// Builds the decoding graph for `lexicon` with configuration `config`.
    ///
    /// # Panics
    ///
    /// Panics if the lexicon is empty.
    pub fn new(lexicon: &Lexicon, config: DecoderConfig) -> Self {
        assert!(!lexicon.is_empty(), "decoder needs a non-empty lexicon");
        let mut entries = Vec::new();
        let mut word_first = Vec::with_capacity(lexicon.len());
        let mut word_last = Vec::with_capacity(lexicon.len());
        for (w, _, pron) in lexicon.iter() {
            word_first.push(entries.len());
            for phone in pron {
                for s in 0..STATES_PER_PHONE {
                    entries.push(ChainState {
                        emission: (phone.first_state() + s) as u16,
                        word: w as u32,
                    });
                }
            }
            word_last.push(entries.len() - 1);
        }
        let sil_first = entries.len();
        for s in 0..STATES_PER_PHONE {
            entries.push(ChainState {
                emission: (SIL.first_state() + s) as u16,
                word: u32::MAX,
            });
        }
        let sil_last = entries.len() - 1;
        Self {
            entries,
            word_first,
            word_last,
            sil_first,
            sil_last,
            config,
            num_words: lexicon.len(),
        }
    }

    /// Number of graph states (search-space size).
    pub fn num_graph_states(&self) -> usize {
        self.entries.len()
    }

    /// The decoder's configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// First graph state of word `w`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn word_first_state(&self, w: usize) -> usize {
        self.word_first[w]
    }

    /// Last graph state of word `w`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn word_last_state(&self, w: usize) -> usize {
        self.word_last[w]
    }

    /// First state of the inter-word silence chain.
    pub fn sil_first_state(&self) -> usize {
        self.sil_first
    }

    /// Last state of the inter-word silence chain.
    pub fn sil_last_state(&self) -> usize {
        self.sil_last
    }

    /// Tied emission-state id of graph state `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn emission_of(&self, e: usize) -> usize {
        self.entries[e].emission as usize
    }

    /// Whether graph state `e` ends a word chain.
    pub fn is_word_end_state(&self, e: usize) -> bool {
        let st = &self.entries[e];
        st.word != u32::MAX && e == self.word_last[st.word as usize]
    }

    /// Decodes pre-scored emissions `emis[t][tied_state]` into words.
    ///
    /// This is the exact (eager) reference mode: the full score matrix is
    /// computed up front. [`Decoder::decode_lazy`] produces bit-identical
    /// results while only evaluating beam-reachable scores.
    ///
    /// Returns `None` if no complete path survives the beam.
    pub fn decode_scores(
        &self,
        emis: &[Vec<f32>],
        lm: &BigramLm,
        lexicon: &Lexicon,
    ) -> Option<DecodeResult> {
        self.decode_lazy(&mut EagerScores::new(emis), lm, lexicon)
    }

    /// Decodes with an on-demand score provider (see [`FrameScores`]).
    ///
    /// The Viterbi search pulls `(frame, state)` scores as it needs them;
    /// with a lazy provider, states outside the beam are never scored.
    /// For every provider in this crate the result is bit-identical to
    /// [`Decoder::decode_scores`] over the eagerly computed matrix.
    ///
    /// Returns `None` if no complete path survives the beam.
    pub fn decode_lazy<S: FrameScores>(
        &self,
        scores: &mut S,
        lm: &BigramLm,
        lexicon: &Lexicon,
    ) -> Option<DecodeResult> {
        let t_max = scores.num_frames();
        if t_max == 0 {
            return None;
        }
        let mut st = BeamState::new(self);
        self.beam_init(&mut st, scores, lm);
        for t in 1..t_max {
            if !self.beam_step(&mut st, scores, lm, t) {
                return None;
            }
        }
        self.beam_finish(&st, lexicon)
    }

    /// Consumes frame 0: silence or any word start.
    fn beam_init<S: FrameScores>(&self, st: &mut BeamState, scores: &mut S, lm: &BigramLm) {
        let wip = self.config.word_insertion_penalty;
        let lmw = self.config.lm_weight;
        scores.begin_frame(0);
        if S::WANTS_ACTIVE_SET {
            st.needed.push(self.entries[self.sil_first].emission);
            st.needed_epoch += 1;
            st.needed_stamp[self.entries[self.sil_first].emission as usize] = st.needed_epoch;
            for w in 0..self.num_words {
                let em = self.entries[self.word_first[w]].emission;
                if st.needed_stamp[em as usize] != st.needed_epoch {
                    st.needed_stamp[em as usize] = st.needed_epoch;
                    st.needed.push(em);
                }
            }
            scores.prepare(&st.needed);
        }
        st.cur[self.sil_first] = scores.get(self.entries[self.sil_first].emission as usize);
        for w in 0..self.num_words {
            let e = self.word_first[w];
            st.arena.push((w as u32, ROOT));
            st.cur[e] = lmw * lm.log_start(w) + wip + scores.get(self.entries[e].emission as usize);
            st.cur_hist[e] = (st.arena.len() - 1) as u32;
        }
    }

    /// Advances the beam through frame `t` (t >= 1). Returns `false` and
    /// marks the state dead if no token survives (a batch decode would
    /// return `None`).
    fn beam_step<S: FrameScores>(
        &self,
        st: &mut BeamState,
        scores: &mut S,
        lm: &BigramLm,
        t: usize,
    ) -> bool {
        let n = self.entries.len();
        let log_self = self.config.self_loop.ln();
        let log_adv = (1.0 - self.config.self_loop).ln();
        let wip = self.config.word_insertion_penalty;
        let lmw = self.config.lm_weight;
        let neg = f32::NEG_INFINITY;
        let BeamState {
            cur,
            cur_hist,
            nxt,
            nxt_hist,
            arena,
            lm_rows,
            exit_best,
            exit_hist,
            needed,
            needed_stamp,
            needed_epoch,
            tokens_expanded,
            dead,
        } = st;

        nxt.fill(neg);
        let best = cur.iter().copied().fold(neg, f32::max);
        if best == neg {
            *dead = true;
            return false;
        }
        let threshold = best - self.config.beam;
        scores.begin_frame(t);
        if S::WANTS_ACTIVE_SET {
            // Collection pass: emissions of every relax target reachable
            // from a beam-surviving source, deduplicated by epoch stamp.
            needed.clear();
            *needed_epoch = needed_epoch.wrapping_add(1);
            let epoch = *needed_epoch;
            let mut mark = |em: u16, needed: &mut Vec<u16>| {
                if needed_stamp[em as usize] != epoch {
                    needed_stamp[em as usize] = epoch;
                    needed.push(em);
                }
            };
            let mut any_exit = false;
            let mut any_word_end = false;
            for e in 0..n {
                if cur[e] < threshold {
                    continue;
                }
                let st = self.entries[e];
                mark(st.emission, &mut *needed);
                let is_word_end = st.word != u32::MAX && e == self.word_last[st.word as usize];
                if !is_word_end && e != self.sil_last {
                    mark(self.entries[e + 1].emission, &mut *needed);
                }
                any_word_end |= is_word_end;
                any_exit |= is_word_end || e >= self.sil_first;
            }
            if any_word_end {
                mark(self.entries[self.sil_first].emission, &mut *needed);
            }
            if any_exit {
                for w in 0..self.num_words {
                    mark(self.entries[self.word_first[w]].emission, &mut *needed);
                }
            }
            scores.prepare(needed);
        }
        let mut any_exit = false;
        exit_best.fill(neg);
        for e in 0..n {
            let s = cur[e];
            if s < threshold {
                continue;
            }
            *tokens_expanded += 1;
            let hist = cur_hist[e];
            let st = self.entries[e];
            // Self loop.
            let cand = s + log_self + scores.get(st.emission as usize);
            if cand > nxt[e] {
                nxt[e] = cand;
                nxt_hist[e] = hist;
            }
            let is_word_end = st.word != u32::MAX && e == self.word_last[st.word as usize];
            let in_sil = e >= self.sil_first;
            if !is_word_end && e != self.sil_last {
                // Advance within the chain.
                let target = e + 1;
                let cand = s + log_adv + scores.get(self.entries[target].emission as usize);
                if cand > nxt[target] {
                    nxt[target] = cand;
                    nxt_hist[target] = hist;
                }
            }
            if !is_word_end && !in_sil {
                continue;
            }
            // Exits: into silence (word ends only) and into new words.
            // Silence is modelled with a flexible duration: any silence
            // state may exit into a word, so short pauses do not require
            // traversing the full 3-state chain.
            let exit_score = s + log_adv;
            if is_word_end {
                let cand = exit_score + scores.get(self.entries[self.sil_first].emission as usize);
                if cand > nxt[self.sil_first] {
                    nxt[self.sil_first] = cand;
                    nxt_hist[self.sil_first] = hist;
                }
            }
            any_exit = true;
            let prev_word = if hist == ROOT {
                None
            } else {
                Some(arena[hist as usize].0 as usize)
            };
            let row_idx = prev_word.map_or(0, |p| p + 1);
            if lm_rows[row_idx].is_none() {
                lm_rows[row_idx] = Some(
                    (0..self.num_words)
                        .map(|w| {
                            lmw * match prev_word {
                                Some(p) => lm.log_bigram(p, w),
                                None => lm.log_start(w),
                            }
                        })
                        .collect(),
                );
            }
            let row = lm_rows[row_idx].as_deref().expect("row just built");
            for (w, &lm_scaled) in row.iter().enumerate() {
                // Same association as the direct form: ((exit + lmw*lm)
                // + wip) + emission, so the winning score is bit-equal.
                let part = exit_score + lm_scaled;
                if part > exit_best[w] {
                    exit_best[w] = part;
                    exit_hist[w] = hist;
                }
            }
        }
        if any_exit {
            for w in 0..self.num_words {
                if exit_best[w] == neg {
                    continue;
                }
                let target = self.word_first[w];
                let cand = exit_best[w] + wip + scores.get(self.entries[target].emission as usize);
                if cand > nxt[target] {
                    arena.push((w as u32, exit_hist[w]));
                    nxt[target] = cand;
                    nxt_hist[target] = (arena.len() - 1) as u32;
                }
            }
        }
        std::mem::swap(cur, nxt);
        std::mem::swap(cur_hist, nxt_hist);
        true
    }

    /// Acceptance scan + backtrace over the final beam front.
    fn beam_finish(&self, st: &BeamState, lexicon: &Lexicon) -> Option<DecodeResult> {
        let neg = f32::NEG_INFINITY;
        let n = self.entries.len();
        let cur = &st.cur;
        let cur_hist = &st.cur_hist;
        // Accept at word ends or anywhere in the (flexible-length) silence.
        let mut best: Option<(f32, u32)> = None;
        let mut accept: Vec<(f32, u32)> = Vec::new();
        for w in 0..self.num_words {
            let e = self.word_last[w];
            if cur[e] > neg {
                accept.push((cur[e], cur_hist[e]));
                if best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        for e in self.sil_first..=self.sil_last {
            if cur[e] > neg {
                accept.push((cur[e], cur_hist[e]));
                if best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        // Fallback: if no acceptance state survived the beam (very narrow
        // beams on hard utterances), accept the best surviving token so the
        // caller still gets the words recognized so far.
        let complete = best.is_some();
        if best.is_none() {
            for e in 0..n {
                if cur[e] > neg && best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        let (score, best_hist) = best?;
        // Runner-up: the best acceptance with a different word history.
        let runner_up_score = accept
            .iter()
            .filter(|(_, h)| *h != best_hist)
            .map(|(s, _)| *s)
            .fold(None, |acc: Option<f32>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        let mut hist = best_hist;
        let mut words_rev = Vec::new();
        while hist != ROOT {
            let (w, prev) = st.arena[hist as usize];
            words_rev.push(lexicon.word(w as usize).to_owned());
            hist = prev;
        }
        words_rev.reverse();
        Some(DecodeResult {
            words: words_rev,
            score,
            runner_up_score,
            complete,
            tokens_expanded: st.tokens_expanded,
        })
    }

    /// The stable committed word prefix of the live beam: the longest
    /// word-history prefix shared by every surviving token. Any future
    /// hypothesis descends from some live token, every live token's
    /// history starts with this prefix, and histories only ever append —
    /// so the prefix is monotone (never retracted) and is always a prefix
    /// of the final backtrace.
    fn committed_words(&self, st: &BeamState) -> Vec<u32> {
        let neg = f32::NEG_INFINITY;
        let mut hists: Vec<u32> = (0..self.entries.len())
            .filter(|&e| st.cur[e] > neg)
            .map(|e| st.cur_hist[e])
            .collect();
        hists.sort_unstable();
        hists.dedup();
        let mut chains: Vec<Vec<u32>> = Vec::with_capacity(hists.len());
        for &h in &hists {
            let mut chain = Vec::new();
            let mut hist = h;
            while hist != ROOT {
                let (w, prev) = st.arena[hist as usize];
                chain.push(w);
                hist = prev;
            }
            chain.reverse();
            chains.push(chain);
        }
        let Some((first, rest)) = chains.split_first() else {
            return Vec::new();
        };
        let mut prefix_len = first.len();
        for chain in rest {
            let common = first
                .iter()
                .zip(chain.iter())
                .take(prefix_len)
                .take_while(|(a, b)| a == b)
                .count();
            prefix_len = prefix_len.min(common);
        }
        first[..prefix_len].to_vec()
    }
}

/// Per-utterance Viterbi beam state: the token front, history arena and
/// scratch buffers that [`Decoder::decode_lazy`] threads through its frame
/// loop, lifted into a struct so [`StreamingDecoder`] can suspend and
/// resume the identical computation between frame chunks.
#[derive(Debug)]
struct BeamState {
    cur: Vec<f32>,
    cur_hist: Vec<u32>,
    nxt: Vec<f32>,
    nxt_hist: Vec<u32>,
    /// History arena: (word, previous entry index).
    arena: Vec<(u32, u32)>,
    /// Memoized scaled LM rows: lm_rows[p + 1][w] = lm_weight *
    /// log_bigram(p, w), row 0 for the start distribution. log_bigram
    /// does an f64 divide + ln per call, which the word-exit loop would
    /// otherwise repeat for every (source, target) pair every frame.
    lm_rows: Vec<Option<Box<[f32]>>>,
    /// Per-frame best word exit: highest (exit_score + scaled LM) per
    /// target word, so each improved target pushes one arena entry per
    /// frame instead of one per improving source.
    exit_best: Vec<f32>,
    exit_hist: Vec<u32>,
    /// Deduplicated emission states reachable this frame, for
    /// `FrameScores::prepare` (only collected when the provider asks).
    needed: Vec<u16>,
    needed_stamp: [u32; NUM_STATES],
    needed_epoch: u32,
    tokens_expanded: usize,
    /// Set when no token survived some frame (batch decode returns `None`).
    dead: bool,
}

impl BeamState {
    fn new(decoder: &Decoder) -> Self {
        let n = decoder.entries.len();
        let neg = f32::NEG_INFINITY;
        BeamState {
            cur: vec![neg; n],
            cur_hist: vec![ROOT; n],
            nxt: vec![neg; n],
            nxt_hist: vec![ROOT; n],
            arena: Vec::with_capacity(1024),
            lm_rows: vec![None; decoder.num_words + 1],
            exit_best: vec![neg; decoder.num_words],
            exit_hist: vec![ROOT; decoder.num_words],
            needed: Vec::with_capacity(NUM_STATES),
            needed_stamp: [0u32; NUM_STATES],
            needed_epoch: 0,
            tokens_expanded: 0,
            dead: false,
        }
    }
}

/// Resumable beam decoder over incrementally arriving feature frames.
///
/// [`StreamingDecoder::advance`] consumes frames up to a caller-chosen
/// horizon from a [`FrameScores`] provider and advances the beam exactly
/// as [`Decoder::decode_lazy`] would; [`StreamingDecoder::committed`]
/// reports the stable word prefix — the unique-ancestor portion of the
/// live beam, which only ever grows and is always a prefix of the final
/// hypothesis; [`StreamingDecoder::finish`] runs the identical acceptance
/// scan and backtrace, so the final result is bit-identical to a batch
/// decode of the same frames.
///
/// The provider handed to `advance` must index frames exactly as a batch
/// decode over the full utterance would: utterance frame `t` is provider
/// frame `t`. A fresh provider over a growing frame prefix satisfies
/// this.
#[derive(Debug)]
pub struct StreamingDecoder<'a> {
    decoder: &'a Decoder,
    lm: &'a BigramLm,
    state: BeamState,
    next_t: usize,
    committed: Vec<u32>,
}

impl<'a> StreamingDecoder<'a> {
    /// Starts a streaming decode over `decoder`'s word-loop graph.
    pub fn new(decoder: &'a Decoder, lm: &'a BigramLm) -> Self {
        StreamingDecoder {
            state: BeamState::new(decoder),
            decoder,
            lm,
            next_t: 0,
            committed: Vec::new(),
        }
    }

    /// Number of feature frames consumed so far.
    pub fn frames_consumed(&self) -> usize {
        self.next_t
    }

    /// Whether the beam died (no token survived some frame).
    ///
    /// A dead beam corresponds to `decode_lazy` returning `None`; it can
    /// only happen with non-finite emission scores.
    pub fn is_dead(&self) -> bool {
        self.state.dead
    }

    /// Tokens expanded so far (matches `DecodeResult::tokens_expanded`
    /// after the final frame).
    pub fn tokens_expanded(&self) -> usize {
        self.state.tokens_expanded
    }

    /// Advances the beam through frames `[frames_consumed(), horizon)`.
    ///
    /// `horizon` is clamped to `scores.num_frames()`. Returns `false` if
    /// the beam died (a batch decode would return `None`).
    pub fn advance<S: FrameScores>(&mut self, scores: &mut S, horizon: usize) -> bool {
        let horizon = horizon.min(scores.num_frames());
        while self.next_t < horizon && !self.state.dead {
            if self.next_t == 0 {
                self.decoder.beam_init(&mut self.state, scores, self.lm);
            } else {
                self.decoder
                    .beam_step(&mut self.state, scores, self.lm, self.next_t);
            }
            self.next_t += 1;
        }
        !self.state.dead
    }

    /// The stable committed word prefix (lexicon word ids).
    ///
    /// Recomputed from the live beam; the result only ever extends the
    /// previously returned prefix and the final hypothesis starts with it.
    pub fn committed(&mut self) -> &[u32] {
        if self.next_t > 0 && !self.state.dead {
            let fresh = self.decoder.committed_words(&self.state);
            debug_assert!(
                fresh.len() >= self.committed.len()
                    && fresh[..self.committed.len()] == self.committed[..],
                "committed prefix retracted"
            );
            self.committed = fresh;
        }
        &self.committed
    }

    /// Finalizes the decode: acceptance scan + backtrace, exactly the
    /// tail of [`Decoder::decode_lazy`].
    ///
    /// Returns `None` if no frames were consumed or the beam died.
    pub fn finish(&self, lexicon: &Lexicon) -> Option<DecodeResult> {
        if self.next_t == 0 || self.state.dead {
            return None;
        }
        self.decoder.beam_finish(&self.state, lexicon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::NUM_PHONES;

    fn tiny_lexicon() -> Lexicon {
        Lexicon::from_texts(["go on", "no go"])
    }

    /// Builds synthetic emissions that strongly prefer the tied states of the
    /// given phone sequence, `frames_per_state` frames each.
    fn emissions_for(phones: &[(usize, usize)], frames_per_state: usize) -> Vec<Vec<f32>> {
        let mut emis = Vec::new();
        for &(phone, state) in phones {
            for _ in 0..frames_per_state {
                let mut frame = vec![-10.0f32; NUM_STATES];
                frame[phone * STATES_PER_PHONE + state] = 0.0;
                emis.push(frame);
            }
        }
        emis
    }

    fn phone_id(c: char) -> usize {
        (c as u8 - b'a') as usize
    }

    #[test]
    fn decodes_a_clean_word() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        // "go": g(0,1,2) o(0,1,2)
        let phones: Vec<(usize, usize)> = "go"
            .chars()
            .flat_map(|c| (0..3).map(move |s| (phone_id(c), s)))
            .collect();
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words, vec!["go"]);
        assert!(out.tokens_expanded > 0);
    }

    #[test]
    fn decodes_a_two_word_phrase_with_silence() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        let sil = NUM_PHONES - 1;
        let mut phones: Vec<(usize, usize)> = Vec::new();
        for c in "go".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        for s in 0..3 {
            phones.push((sil, s));
        }
        for c in "on".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words, vec!["go", "on"]);
    }

    #[test]
    fn lm_disambiguates_similar_acoustics() {
        // Lexicon where "on" follows "go" in the LM; acoustics are equally
        // ambiguous between "on" and "no" (same letters, different order is
        // acoustically distinct though, so instead we just verify the LM
        // shifts scores): decoding "go ??" with weak emissions should prefer
        // the LM-favoured continuation.
        let lex = Lexicon::from_texts(["go on", "go on", "go on", "no go"]);
        let lm = BigramLm::train(["go on", "go on", "go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        let sil = NUM_PHONES - 1;
        let mut phones: Vec<(usize, usize)> = Vec::new();
        for c in "go".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        for s in 0..3 {
            phones.push((sil, s));
        }
        // Ambiguous segment: slight preference for 'o'+'n'.
        for c in "on".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words[0], "go");
        assert_eq!(out.words.last().map(String::as_str), Some("on"));
    }

    #[test]
    fn empty_emissions_return_none() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        assert!(dec.decode_scores(&[], &lm, &lex).is_none());
    }

    #[test]
    fn graph_size_matches_lexicon() {
        let lex = tiny_lexicon();
        let dec = Decoder::new(&lex, DecoderConfig::default());
        // go(2)+on(2)+no(2) letters = 6 phones * 3 states + 3 silence.
        assert_eq!(dec.num_graph_states(), 6 * 3 + 3);
    }

    #[test]
    fn narrow_beam_expands_fewer_tokens() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let phones: Vec<(usize, usize)> = "go"
            .chars()
            .flat_map(|c| (0..3).map(move |s| (phone_id(c), s)))
            .collect();
        let emis = emissions_for(&phones, 4);
        let wide = Decoder::new(&lex, DecoderConfig::default())
            .decode_scores(&emis, &lm, &lex)
            .expect("wide decode");
        let narrow = Decoder::new(
            &lex,
            DecoderConfig {
                beam: 4.0,
                ..DecoderConfig::default()
            },
        )
        .decode_scores(&emis, &lm, &lex)
        .expect("narrow decode");
        assert!(narrow.tokens_expanded <= wide.tokens_expanded);
    }

    /// Chunked streaming decodes must match the batch decode bit-for-bit
    /// and never retract a committed word, for any chunk size.
    #[test]
    fn streaming_decoder_matches_batch_and_never_retracts() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        let sil = NUM_PHONES - 1;
        let mut phones: Vec<(usize, usize)> = Vec::new();
        for c in "go".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        for s in 0..3 {
            phones.push((sil, s));
        }
        for c in "on".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        let emis = emissions_for(&phones, 3);
        let batch = dec.decode_scores(&emis, &lm, &lex).expect("batch decode");

        for chunk in [1usize, 3, 7, emis.len()] {
            let mut sdec = StreamingDecoder::new(&dec, &lm);
            let mut committed: Vec<u32> = Vec::new();
            let mut horizon = 0usize;
            while horizon < emis.len() {
                horizon = (horizon + chunk).min(emis.len());
                // A fresh provider over the frame prefix models chunked
                // arrival; frame indices match the batch pass exactly.
                let mut scores = EagerScores::new(&emis[..horizon]);
                assert!(sdec.advance(&mut scores, horizon), "beam died");
                let now = sdec.committed();
                assert!(
                    now.len() >= committed.len() && now[..committed.len()] == committed[..],
                    "chunk {chunk}: committed prefix retracted"
                );
                committed = now.to_vec();
            }
            let out = sdec.finish(&lex).expect("streaming decode");
            assert_eq!(out.words, batch.words, "chunk {chunk}");
            assert_eq!(out.score.to_bits(), batch.score.to_bits(), "chunk {chunk}");
            assert_eq!(out.tokens_expanded, batch.tokens_expanded, "chunk {chunk}");
            assert_eq!(out.complete, batch.complete, "chunk {chunk}");
            let final_words: Vec<u32> = committed.clone();
            let spelled: Vec<String> = final_words
                .iter()
                .map(|&w| lex.word(w as usize).to_owned())
                .collect();
            assert!(
                out.words.starts_with(&spelled[..]),
                "chunk {chunk}: committed not a prefix of final"
            );
        }
    }
}

#[cfg(test)]
mod scorer_tests {
    use super::*;
    use crate::dnn::Dnn;
    use crate::features::FEATURE_DIM;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn context_window_clamps_at_edges() {
        let frames = vec![vec![1.0f32; 4], vec![2.0; 4], vec![3.0; 4]];
        let w = DnnScorer::context_window(&frames, 0, 1);
        assert_eq!(w.len(), 12);
        // Left context clamps to frame 0.
        assert_eq!(&w[0..4], &[1.0; 4]);
        assert_eq!(&w[4..8], &[1.0; 4]);
        assert_eq!(&w[8..12], &[2.0; 4]);
        let w = DnnScorer::context_window(&frames, 2, 1);
        assert_eq!(&w[8..12], &[3.0; 4], "right context clamps to last frame");
    }

    #[test]
    fn dnn_scorer_produces_full_state_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Dnn::new(&[FEATURE_DIM * 3, 16, NUM_STATES], &mut rng);
        let scorer = DnnScorer::new(net, &vec![1.0; NUM_STATES], 1);
        let frames = vec![vec![0.1f32; FEATURE_DIM]; 5];
        let scores = scorer.score_utterance(&frames);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|r| r.len() == NUM_STATES));
        assert!(scores.iter().flatten().all(|s| s.is_finite()));
        assert_eq!(scorer.name(), "DNN");
    }

    #[test]
    fn uniform_priors_leave_relative_scores_unchanged() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Dnn::new(&[FEATURE_DIM * 3, 16, NUM_STATES], &mut rng);
        let uniform = DnnScorer::new(net.clone(), &vec![1.0; NUM_STATES], 1);
        // Non-uniform priors must change scores for frequent states.
        let mut priors = vec![1.0f32; NUM_STATES];
        priors[0] = 100.0;
        let skewed = DnnScorer::new(net, &priors, 1);
        let frames = vec![vec![0.2f32; FEATURE_DIM]; 2];
        let u = uniform.score_utterance(&frames);
        let s = skewed.score_utterance(&frames);
        // Hybrid scoring divides by the prior: a larger prior for state 0
        // lowers its pseudo-likelihood.
        assert!(s[0][0] < u[0][0]);
    }

    #[test]
    #[should_panic(expected = "one GMM per tied state")]
    fn wrong_gmm_count_panics() {
        let _ = GmmScorer::new(Vec::new());
    }
}

#[cfg(test)]
mod exec_policy_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sirius_par::Strategy;

    fn frames(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|t| vec![t as f32 * 0.2 - 1.0, (t % 5) as f32 * 0.3])
            .collect()
    }

    fn gmm_scorer() -> GmmScorer {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let gmms: Vec<Gmm> = (0..NUM_STATES)
            .map(|s| {
                let data: Vec<Vec<f32>> = (0..8)
                    .map(|i| vec![s as f32 * 0.1 + i as f32 * 0.01, -(i as f32) * 0.2])
                    .collect();
                Gmm::fit(&data, 1, 1, &mut rng)
            })
            .collect();
        GmmScorer::new(gmms)
    }

    fn dnn_scorer() -> DnnScorer {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let dnn = Dnn::new(&[6, 4, NUM_STATES], &mut rng);
        DnnScorer::new(dnn, &vec![1.0; NUM_STATES], 1)
    }

    /// Parallel scoring must be bit-identical to serial scoring for every
    /// thread count and strategy (the threaded path only re-orders which
    /// worker computes each frame, never the arithmetic inside one).
    #[test]
    fn gmm_scoring_is_policy_invariant() {
        let mut scorer = gmm_scorer();
        let frames = frames(37);
        let base = scorer.score_utterance(&frames);
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                scorer.set_policy(ExecPolicy::new(threads, strategy));
                assert_eq!(
                    scorer.score_utterance(&frames),
                    base,
                    "threads {threads} strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn dnn_scoring_is_policy_invariant() {
        let mut scorer = dnn_scorer();
        let frames = frames(29);
        let base = scorer.score_utterance(&frames);
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                scorer.set_policy(ExecPolicy::new(threads, strategy));
                assert_eq!(
                    scorer.score_utterance(&frames),
                    base,
                    "threads {threads} strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn policy_survives_accessors_but_not_serialization() {
        let mut scorer = gmm_scorer();
        scorer.set_policy(ExecPolicy::new(4, Strategy::Dynamic));
        assert_eq!(scorer.policy(), ExecPolicy::new(4, Strategy::Dynamic));
        let mut e = sirius_codec::Encoder::new();
        scorer.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = sirius_codec::Decoder::new(&bytes);
        let restored = GmmScorer::decode(&mut d).expect("decode");
        // The policy is a runtime knob, not part of the model.
        assert_eq!(restored.policy(), ExecPolicy::serial());
    }
}

#[cfg(test)]
mod beam_property_tests {
    use super::*;
    use crate::lexicon::Lexicon;

    /// A wider beam never produces a worse Viterbi score.
    #[test]
    fn wider_beams_never_score_worse() {
        use rand::{Rng, SeedableRng};
        for seed in 0u64..16 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let lex = Lexicon::from_texts(["go on", "no go"]);
            let lm = crate::lm::BigramLm::train(["go on", "no go"], &lex);
            // Random emissions over 20 frames.
            let emis: Vec<Vec<f32>> = (0..20)
                .map(|_| {
                    (0..NUM_STATES)
                        .map(|_| rng.gen_range(-30.0f32..0.0))
                        .collect()
                })
                .collect();
            let decode = |beam: f32| {
                Decoder::new(
                    &lex,
                    DecoderConfig {
                        beam,
                        ..DecoderConfig::default()
                    },
                )
                .decode_scores(&emis, &lm, &lex)
            };
            let narrow = decode(5.0);
            let wide = decode(500.0);
            if let (Some(n), Some(w)) = (narrow, wide) {
                // Fallback (incomplete) scores are not comparable: they end
                // mid-word and skip the acceptance constraint.
                if n.complete && w.complete {
                    assert!(
                        w.score >= n.score - 1e-3,
                        "seed {seed}: wide {} < narrow {}",
                        w.score,
                        n.score
                    );
                }
                assert!(w.complete, "seed {seed}: a 500-wide beam must complete");
            }
        }
    }
}
