//! HMM decoding graph and beam Viterbi search.
//!
//! Mirrors the paper's ASR pipeline (Figure 4): "the HMM builds a tree of
//! states for the current speech frame using input feature vectors. The GMM
//! or DNN scores the probability of the state transitions in the tree, and
//! the Viterbi algorithm then searches for the most likely path."
//!
//! Words are linear chains of 3-state left-to-right phone HMMs with tied
//! emissions (81 tied states, [`crate::lexicon::NUM_STATES`]); word-to-word
//! transitions carry bigram language-model scores, with optional inter-word
//! silence.

use crate::dnn::Dnn;
use crate::gmm::Gmm;
use crate::lexicon::{Lexicon, NUM_STATES, SIL, STATES_PER_PHONE};
use crate::lm::BigramLm;
use sirius_par::ExecPolicy;

/// Scores acoustic frames against all tied HMM states.
pub trait AcousticScorer {
    /// Returns `scores[t][s]` = log-likelihood of frame `t` under tied state
    /// `s`, for the whole utterance at once (DNN scorers need frame context).
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>>;

    /// Human-readable model name ("GMM" or "DNN").
    fn name(&self) -> &'static str;
}

/// GMM emission scorer: one diagonal GMM per tied state (the Sphinx path).
#[derive(Debug, Clone)]
pub struct GmmScorer {
    gmms: Vec<Gmm>,
    /// Runtime-only execution policy; frames are independent, so scoring
    /// parallelizes over them with bit-identical output at any width.
    policy: ExecPolicy,
}

impl GmmScorer {
    /// Creates a scorer from per-state GMMs.
    ///
    /// # Panics
    ///
    /// Panics unless exactly [`NUM_STATES`] models are provided.
    pub fn new(gmms: Vec<Gmm>) -> Self {
        assert_eq!(gmms.len(), NUM_STATES, "need one GMM per tied state");
        Self {
            gmms,
            policy: ExecPolicy::serial(),
        }
    }

    /// The per-state models.
    pub fn models(&self) -> &[Gmm] {
        &self.gmms
    }

    /// Sets the execution policy used by [`AcousticScorer::score_utterance`].
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The current execution policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }
}

impl GmmScorer {
    /// Serializes all per-state models.
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("gmm_scorer");
        e.u32(self.gmms.len() as u32);
        for g in &self.gmms {
            g.encode(e);
        }
    }

    /// Deserializes a scorer written by [`GmmScorer::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes or a wrong state count.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("gmm_scorer")?;
        let n = d.u32()? as usize;
        if n != NUM_STATES {
            return Err(sirius_codec::DecodeError {
                message: format!("expected {NUM_STATES} state models, found {n}"),
                offset: 0,
            });
        }
        let gmms = (0..n)
            .map(|_| Gmm::decode(d))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            gmms,
            policy: ExecPolicy::serial(),
        })
    }
}

impl AcousticScorer for GmmScorer {
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.policy.map_collect(frames.len(), |t| {
            self.gmms
                .iter()
                .map(|g| g.log_likelihood(&frames[t]))
                .collect()
        })
    }

    fn name(&self) -> &'static str {
        "GMM"
    }
}

/// Hybrid DNN/HMM emission scorer: scaled log-posteriors minus log-priors
/// (the Kaldi/RASR path).
#[derive(Debug, Clone)]
pub struct DnnScorer {
    dnn: Dnn,
    log_priors: Vec<f32>,
    /// Number of context frames on each side fed to the network.
    context: usize,
    /// Acoustic scale applied to the pseudo log-likelihoods.
    scale: f32,
    /// Runtime-only execution policy; the forward pass is independent per
    /// frame, so scoring parallelizes over frames bit-identically.
    policy: ExecPolicy,
}

impl DnnScorer {
    /// Creates a scorer from a trained network and state priors.
    ///
    /// # Panics
    ///
    /// Panics if the network output or prior vector is not [`NUM_STATES`]
    /// wide.
    pub fn new(dnn: Dnn, priors: &[f32], context: usize) -> Self {
        assert_eq!(dnn.output_dim(), NUM_STATES, "DNN output width");
        assert_eq!(priors.len(), NUM_STATES, "prior vector width");
        let total: f32 = priors.iter().sum();
        let log_priors = priors.iter().map(|p| (p / total).max(1e-8).ln()).collect();
        Self {
            dnn,
            log_priors,
            context,
            scale: 1.2,
            policy: ExecPolicy::serial(),
        }
    }

    /// The underlying network.
    pub fn dnn(&self) -> &Dnn {
        &self.dnn
    }

    /// Sets the execution policy used by [`AcousticScorer::score_utterance`].
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The current execution policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Builds the stacked context window for frame `t`.
    pub fn context_window(frames: &[Vec<f32>], t: usize, context: usize) -> Vec<f32> {
        let dim = frames[0].len();
        let mut x = Vec::with_capacity(dim * (2 * context + 1));
        let n = frames.len() as isize;
        for off in -(context as isize)..=(context as isize) {
            let idx = (t as isize + off).clamp(0, n - 1) as usize;
            x.extend_from_slice(&frames[idx]);
        }
        x
    }
}

impl DnnScorer {
    /// Serializes the scorer.
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("dnn_scorer");
        self.dnn.encode(e);
        e.f32_slice(&self.log_priors);
        e.u32(self.context as u32);
        e.f32(self.scale);
    }

    /// Deserializes a scorer written by [`DnnScorer::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("dnn_scorer")?;
        let dnn = Dnn::decode(d)?;
        let log_priors = d.f32_vec()?;
        let context = d.u32()? as usize;
        let scale = d.f32()?;
        if dnn.output_dim() != NUM_STATES || log_priors.len() != NUM_STATES {
            return Err(sirius_codec::DecodeError {
                message: "scorer width mismatch".into(),
                offset: 0,
            });
        }
        Ok(Self {
            dnn,
            log_priors,
            context,
            scale,
            policy: ExecPolicy::serial(),
        })
    }
}

impl AcousticScorer for DnnScorer {
    fn score_utterance(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.policy.map_collect(frames.len(), |t| {
            let x = Self::context_window(frames, t, self.context);
            let lp = self.dnn.log_posteriors(&x);
            lp.iter()
                .zip(&self.log_priors)
                .map(|(p, pr)| self.scale * (p - pr))
                .collect()
        })
    }

    fn name(&self) -> &'static str {
        "DNN"
    }
}

/// Decoder tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecoderConfig {
    /// Log-domain pruning beam; larger is slower but more exact.
    pub beam: f32,
    /// Additive penalty applied when entering a new word.
    pub word_insertion_penalty: f32,
    /// Weight on language-model log-probabilities.
    pub lm_weight: f32,
    /// HMM self-loop probability.
    pub self_loop: f32,
}

impl Default for DecoderConfig {
    fn default() -> Self {
        Self {
            beam: 2500.0,
            word_insertion_penalty: -4.0,
            lm_weight: 3.0,
            self_loop: 0.6,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ChainState {
    /// Tied emission state id.
    emission: u16,
    /// Word index, `u32::MAX` for the silence chain.
    word: u32,
}

/// The decoding result plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Recognized words, in order.
    pub words: Vec<String>,
    /// Viterbi path log-score.
    pub score: f32,
    /// Log-score of the best competing acceptance state with a different
    /// word history, if any. The gap to `score` is a confidence margin.
    pub runner_up_score: Option<f32>,
    /// Whether the path ended at a true acceptance state (a word end or
    /// the inter-word silence). `false` means the beam pruned every
    /// complete path and the best surviving mid-word token was accepted
    /// as a fallback.
    pub complete: bool,
    /// Total tokens expanded (search effort).
    pub tokens_expanded: usize,
}

impl DecodeResult {
    /// A [0, 1] confidence estimate from the per-frame score margin between
    /// the best hypothesis and its closest competitor.
    pub fn confidence(&self, num_frames: usize) -> f32 {
        match self.runner_up_score {
            None => 1.0,
            Some(second) => {
                let margin = (self.score - second) / num_frames.max(1) as f32;
                (margin / 2.0).clamp(0.0, 1.0)
            }
        }
    }
}

/// Beam Viterbi decoder over a word-loop graph.
#[derive(Debug, Clone)]
pub struct Decoder {
    entries: Vec<ChainState>,
    word_first: Vec<usize>,
    word_last: Vec<usize>,
    sil_first: usize,
    sil_last: usize,
    config: DecoderConfig,
    num_words: usize,
}

const ROOT: u32 = u32::MAX;

impl Decoder {
    /// Builds the decoding graph for `lexicon` with configuration `config`.
    ///
    /// # Panics
    ///
    /// Panics if the lexicon is empty.
    pub fn new(lexicon: &Lexicon, config: DecoderConfig) -> Self {
        assert!(!lexicon.is_empty(), "decoder needs a non-empty lexicon");
        let mut entries = Vec::new();
        let mut word_first = Vec::with_capacity(lexicon.len());
        let mut word_last = Vec::with_capacity(lexicon.len());
        for (w, _, pron) in lexicon.iter() {
            word_first.push(entries.len());
            for phone in pron {
                for s in 0..STATES_PER_PHONE {
                    entries.push(ChainState {
                        emission: (phone.first_state() + s) as u16,
                        word: w as u32,
                    });
                }
            }
            word_last.push(entries.len() - 1);
        }
        let sil_first = entries.len();
        for s in 0..STATES_PER_PHONE {
            entries.push(ChainState {
                emission: (SIL.first_state() + s) as u16,
                word: u32::MAX,
            });
        }
        let sil_last = entries.len() - 1;
        Self {
            entries,
            word_first,
            word_last,
            sil_first,
            sil_last,
            config,
            num_words: lexicon.len(),
        }
    }

    /// Number of graph states (search-space size).
    pub fn num_graph_states(&self) -> usize {
        self.entries.len()
    }

    /// The decoder's configuration.
    pub fn config(&self) -> &DecoderConfig {
        &self.config
    }

    /// First graph state of word `w`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn word_first_state(&self, w: usize) -> usize {
        self.word_first[w]
    }

    /// Last graph state of word `w`'s chain.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn word_last_state(&self, w: usize) -> usize {
        self.word_last[w]
    }

    /// First state of the inter-word silence chain.
    pub fn sil_first_state(&self) -> usize {
        self.sil_first
    }

    /// Last state of the inter-word silence chain.
    pub fn sil_last_state(&self) -> usize {
        self.sil_last
    }

    /// Tied emission-state id of graph state `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn emission_of(&self, e: usize) -> usize {
        self.entries[e].emission as usize
    }

    /// Whether graph state `e` ends a word chain.
    pub fn is_word_end_state(&self, e: usize) -> bool {
        let st = &self.entries[e];
        st.word != u32::MAX && e == self.word_last[st.word as usize]
    }

    /// Decodes pre-scored emissions `emis[t][tied_state]` into words.
    ///
    /// Returns `None` if no complete path survives the beam.
    pub fn decode_scores(
        &self,
        emis: &[Vec<f32>],
        lm: &BigramLm,
        lexicon: &Lexicon,
    ) -> Option<DecodeResult> {
        let t_max = emis.len();
        if t_max == 0 {
            return None;
        }
        let n = self.entries.len();
        let log_self = self.config.self_loop.ln();
        let log_adv = (1.0 - self.config.self_loop).ln();
        let wip = self.config.word_insertion_penalty;
        let lmw = self.config.lm_weight;

        let neg = f32::NEG_INFINITY;
        let mut cur = vec![neg; n];
        let mut cur_hist = vec![ROOT; n];
        let mut nxt = vec![neg; n];
        let mut nxt_hist = vec![ROOT; n];
        // History arena: (word, previous entry index).
        let mut arena: Vec<(u32, u32)> = Vec::with_capacity(1024);
        let mut tokens_expanded = 0usize;

        // Initialization at t = 0: silence or any word start.
        cur[self.sil_first] = emis[0][self.entries[self.sil_first].emission as usize];
        for w in 0..self.num_words {
            let e = self.word_first[w];
            arena.push((w as u32, ROOT));
            cur[e] = lmw * lm.log_start(w) + wip + emis[0][self.entries[e].emission as usize];
            cur_hist[e] = (arena.len() - 1) as u32;
        }

        for t in 1..t_max {
            nxt.fill(neg);
            let best = cur.iter().copied().fold(neg, f32::max);
            if best == neg {
                eprintln!("DBG died t={t}");
                return None;
            }
            let threshold = best - self.config.beam;
            let frame = &emis[t];
            let relax = |target: usize,
                         score: f32,
                         hist: u32,
                         nxt: &mut Vec<f32>,
                         nxt_hist: &mut Vec<u32>| {
                if score > nxt[target] {
                    nxt[target] = score;
                    nxt_hist[target] = hist;
                }
            };
            for e in 0..n {
                let s = cur[e];
                if s < threshold {
                    continue;
                }
                tokens_expanded += 1;
                let hist = cur_hist[e];
                let st = self.entries[e];
                // Self loop.
                relax(
                    e,
                    s + log_self + frame[st.emission as usize],
                    hist,
                    &mut nxt,
                    &mut nxt_hist,
                );
                let is_word_end = st.word != u32::MAX && e == self.word_last[st.word as usize];
                let in_sil = e >= self.sil_first;
                if !is_word_end && e != self.sil_last {
                    // Advance within the chain.
                    let target = e + 1;
                    relax(
                        target,
                        s + log_adv + frame[self.entries[target].emission as usize],
                        hist,
                        &mut nxt,
                        &mut nxt_hist,
                    );
                }
                if !is_word_end && !in_sil {
                    continue;
                }
                // Exits: into silence (word ends only) and into new words.
                // Silence is modelled with a flexible duration: any silence
                // state may exit into a word, so short pauses do not require
                // traversing the full 3-state chain.
                let exit_score = s + log_adv;
                if is_word_end {
                    relax(
                        self.sil_first,
                        exit_score + frame[self.entries[self.sil_first].emission as usize],
                        hist,
                        &mut nxt,
                        &mut nxt_hist,
                    );
                }
                let prev_word = if hist == ROOT {
                    None
                } else {
                    Some(arena[hist as usize].0 as usize)
                };
                for w in 0..self.num_words {
                    let lm_score = match prev_word {
                        Some(p) => lm.log_bigram(p, w),
                        None => lm.log_start(w),
                    };
                    let target = self.word_first[w];
                    let cand = exit_score
                        + lmw * lm_score
                        + wip
                        + frame[self.entries[target].emission as usize];
                    if cand > nxt[target] {
                        arena.push((w as u32, hist));
                        nxt[target] = cand;
                        nxt_hist[target] = (arena.len() - 1) as u32;
                    }
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
            std::mem::swap(&mut cur_hist, &mut nxt_hist);
        }

        // Accept at word ends or anywhere in the (flexible-length) silence.
        let mut best: Option<(f32, u32)> = None;
        let mut accept: Vec<(f32, u32)> = Vec::new();
        for w in 0..self.num_words {
            let e = self.word_last[w];
            if cur[e] > neg {
                accept.push((cur[e], cur_hist[e]));
                if best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        for e in self.sil_first..=self.sil_last {
            if cur[e] > neg {
                accept.push((cur[e], cur_hist[e]));
                if best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        // Fallback: if no acceptance state survived the beam (very narrow
        // beams on hard utterances), accept the best surviving token so the
        // caller still gets the words recognized so far.
        let complete = best.is_some();
        if best.is_none() {
            for e in 0..n {
                if cur[e] > neg && best.is_none_or(|(b, _)| cur[e] > b) {
                    best = Some((cur[e], cur_hist[e]));
                }
            }
        }
        let (score, best_hist) = best?;
        // Runner-up: the best acceptance with a different word history.
        let runner_up_score = accept
            .iter()
            .filter(|(_, h)| *h != best_hist)
            .map(|(s, _)| *s)
            .fold(None, |acc: Option<f32>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        let mut hist = best_hist;
        let mut words_rev = Vec::new();
        while hist != ROOT {
            let (w, prev) = arena[hist as usize];
            words_rev.push(lexicon.word(w as usize).to_owned());
            hist = prev;
        }
        words_rev.reverse();
        Some(DecodeResult {
            words: words_rev,
            score,
            runner_up_score,
            complete,
            tokens_expanded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::NUM_PHONES;

    fn tiny_lexicon() -> Lexicon {
        Lexicon::from_texts(["go on", "no go"])
    }

    /// Builds synthetic emissions that strongly prefer the tied states of the
    /// given phone sequence, `frames_per_state` frames each.
    fn emissions_for(phones: &[(usize, usize)], frames_per_state: usize) -> Vec<Vec<f32>> {
        let mut emis = Vec::new();
        for &(phone, state) in phones {
            for _ in 0..frames_per_state {
                let mut frame = vec![-10.0f32; NUM_STATES];
                frame[phone * STATES_PER_PHONE + state] = 0.0;
                emis.push(frame);
            }
        }
        emis
    }

    fn phone_id(c: char) -> usize {
        (c as u8 - b'a') as usize
    }

    #[test]
    fn decodes_a_clean_word() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        // "go": g(0,1,2) o(0,1,2)
        let phones: Vec<(usize, usize)> = "go"
            .chars()
            .flat_map(|c| (0..3).map(move |s| (phone_id(c), s)))
            .collect();
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words, vec!["go"]);
        assert!(out.tokens_expanded > 0);
    }

    #[test]
    fn decodes_a_two_word_phrase_with_silence() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        let sil = NUM_PHONES - 1;
        let mut phones: Vec<(usize, usize)> = Vec::new();
        for c in "go".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        for s in 0..3 {
            phones.push((sil, s));
        }
        for c in "on".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words, vec!["go", "on"]);
    }

    #[test]
    fn lm_disambiguates_similar_acoustics() {
        // Lexicon where "on" follows "go" in the LM; acoustics are equally
        // ambiguous between "on" and "no" (same letters, different order is
        // acoustically distinct though, so instead we just verify the LM
        // shifts scores): decoding "go ??" with weak emissions should prefer
        // the LM-favoured continuation.
        let lex = Lexicon::from_texts(["go on", "go on", "go on", "no go"]);
        let lm = BigramLm::train(["go on", "go on", "go on", "no go"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        let sil = NUM_PHONES - 1;
        let mut phones: Vec<(usize, usize)> = Vec::new();
        for c in "go".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        for s in 0..3 {
            phones.push((sil, s));
        }
        // Ambiguous segment: slight preference for 'o'+'n'.
        for c in "on".chars() {
            for s in 0..3 {
                phones.push((phone_id(c), s));
            }
        }
        let emis = emissions_for(&phones, 3);
        let out = dec.decode_scores(&emis, &lm, &lex).expect("decode");
        assert_eq!(out.words[0], "go");
        assert_eq!(out.words.last().map(String::as_str), Some("on"));
    }

    #[test]
    fn empty_emissions_return_none() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on"], &lex);
        let dec = Decoder::new(&lex, DecoderConfig::default());
        assert!(dec.decode_scores(&[], &lm, &lex).is_none());
    }

    #[test]
    fn graph_size_matches_lexicon() {
        let lex = tiny_lexicon();
        let dec = Decoder::new(&lex, DecoderConfig::default());
        // go(2)+on(2)+no(2) letters = 6 phones * 3 states + 3 silence.
        assert_eq!(dec.num_graph_states(), 6 * 3 + 3);
    }

    #[test]
    fn narrow_beam_expands_fewer_tokens() {
        let lex = tiny_lexicon();
        let lm = BigramLm::train(["go on", "no go"], &lex);
        let phones: Vec<(usize, usize)> = "go"
            .chars()
            .flat_map(|c| (0..3).map(move |s| (phone_id(c), s)))
            .collect();
        let emis = emissions_for(&phones, 4);
        let wide = Decoder::new(&lex, DecoderConfig::default())
            .decode_scores(&emis, &lm, &lex)
            .expect("wide decode");
        let narrow = Decoder::new(
            &lex,
            DecoderConfig {
                beam: 4.0,
                ..DecoderConfig::default()
            },
        )
        .decode_scores(&emis, &lm, &lex)
        .expect("narrow decode");
        assert!(narrow.tokens_expanded <= wide.tokens_expanded);
    }
}

#[cfg(test)]
mod scorer_tests {
    use super::*;
    use crate::dnn::Dnn;
    use crate::features::FEATURE_DIM;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn context_window_clamps_at_edges() {
        let frames = vec![vec![1.0f32; 4], vec![2.0; 4], vec![3.0; 4]];
        let w = DnnScorer::context_window(&frames, 0, 1);
        assert_eq!(w.len(), 12);
        // Left context clamps to frame 0.
        assert_eq!(&w[0..4], &[1.0; 4]);
        assert_eq!(&w[4..8], &[1.0; 4]);
        assert_eq!(&w[8..12], &[2.0; 4]);
        let w = DnnScorer::context_window(&frames, 2, 1);
        assert_eq!(&w[8..12], &[3.0; 4], "right context clamps to last frame");
    }

    #[test]
    fn dnn_scorer_produces_full_state_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Dnn::new(&[FEATURE_DIM * 3, 16, NUM_STATES], &mut rng);
        let scorer = DnnScorer::new(net, &vec![1.0; NUM_STATES], 1);
        let frames = vec![vec![0.1f32; FEATURE_DIM]; 5];
        let scores = scorer.score_utterance(&frames);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|r| r.len() == NUM_STATES));
        assert!(scores.iter().flatten().all(|s| s.is_finite()));
        assert_eq!(scorer.name(), "DNN");
    }

    #[test]
    fn uniform_priors_leave_relative_scores_unchanged() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Dnn::new(&[FEATURE_DIM * 3, 16, NUM_STATES], &mut rng);
        let uniform = DnnScorer::new(net.clone(), &vec![1.0; NUM_STATES], 1);
        // Non-uniform priors must change scores for frequent states.
        let mut priors = vec![1.0f32; NUM_STATES];
        priors[0] = 100.0;
        let skewed = DnnScorer::new(net, &priors, 1);
        let frames = vec![vec![0.2f32; FEATURE_DIM]; 2];
        let u = uniform.score_utterance(&frames);
        let s = skewed.score_utterance(&frames);
        // Hybrid scoring divides by the prior: a larger prior for state 0
        // lowers its pseudo-likelihood.
        assert!(s[0][0] < u[0][0]);
    }

    #[test]
    #[should_panic(expected = "one GMM per tied state")]
    fn wrong_gmm_count_panics() {
        let _ = GmmScorer::new(Vec::new());
    }
}

#[cfg(test)]
mod exec_policy_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sirius_par::Strategy;

    fn frames(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|t| vec![t as f32 * 0.2 - 1.0, (t % 5) as f32 * 0.3])
            .collect()
    }

    fn gmm_scorer() -> GmmScorer {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let gmms: Vec<Gmm> = (0..NUM_STATES)
            .map(|s| {
                let data: Vec<Vec<f32>> = (0..8)
                    .map(|i| vec![s as f32 * 0.1 + i as f32 * 0.01, -(i as f32) * 0.2])
                    .collect();
                Gmm::fit(&data, 1, 1, &mut rng)
            })
            .collect();
        GmmScorer::new(gmms)
    }

    fn dnn_scorer() -> DnnScorer {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let dnn = Dnn::new(&[6, 4, NUM_STATES], &mut rng);
        DnnScorer::new(dnn, &vec![1.0; NUM_STATES], 1)
    }

    /// Parallel scoring must be bit-identical to serial scoring for every
    /// thread count and strategy (the threaded path only re-orders which
    /// worker computes each frame, never the arithmetic inside one).
    #[test]
    fn gmm_scoring_is_policy_invariant() {
        let mut scorer = gmm_scorer();
        let frames = frames(37);
        let base = scorer.score_utterance(&frames);
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                scorer.set_policy(ExecPolicy::new(threads, strategy));
                assert_eq!(
                    scorer.score_utterance(&frames),
                    base,
                    "threads {threads} strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn dnn_scoring_is_policy_invariant() {
        let mut scorer = dnn_scorer();
        let frames = frames(29);
        let base = scorer.score_utterance(&frames);
        for threads in [1, 2, 3, 8] {
            for strategy in Strategy::ALL {
                scorer.set_policy(ExecPolicy::new(threads, strategy));
                assert_eq!(
                    scorer.score_utterance(&frames),
                    base,
                    "threads {threads} strategy {strategy}"
                );
            }
        }
    }

    #[test]
    fn policy_survives_accessors_but_not_serialization() {
        let mut scorer = gmm_scorer();
        scorer.set_policy(ExecPolicy::new(4, Strategy::Dynamic));
        assert_eq!(scorer.policy(), ExecPolicy::new(4, Strategy::Dynamic));
        let mut e = sirius_codec::Encoder::new();
        scorer.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = sirius_codec::Decoder::new(&bytes);
        let restored = GmmScorer::decode(&mut d).expect("decode");
        // The policy is a runtime knob, not part of the model.
        assert_eq!(restored.policy(), ExecPolicy::serial());
    }
}

#[cfg(test)]
mod beam_property_tests {
    use super::*;
    use crate::lexicon::Lexicon;

    /// A wider beam never produces a worse Viterbi score.
    #[test]
    fn wider_beams_never_score_worse() {
        use rand::{Rng, SeedableRng};
        for seed in 0u64..16 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let lex = Lexicon::from_texts(["go on", "no go"]);
            let lm = crate::lm::BigramLm::train(["go on", "no go"], &lex);
            // Random emissions over 20 frames.
            let emis: Vec<Vec<f32>> = (0..20)
                .map(|_| {
                    (0..NUM_STATES)
                        .map(|_| rng.gen_range(-30.0f32..0.0))
                        .collect()
                })
                .collect();
            let decode = |beam: f32| {
                Decoder::new(
                    &lex,
                    DecoderConfig {
                        beam,
                        ..DecoderConfig::default()
                    },
                )
                .decode_scores(&emis, &lm, &lex)
            };
            let narrow = decode(5.0);
            let wide = decode(500.0);
            if let (Some(n), Some(w)) = (narrow, wide) {
                // Fallback (incomplete) scores are not comparable: they end
                // mid-word and skip the acceptance constraint.
                if n.complete && w.complete {
                    assert!(
                        w.score >= n.score - 1e-3,
                        "seed {seed}: wide {} < narrow {}",
                        w.score,
                        n.score
                    );
                }
                assert!(w.complete, "seed {seed}: a 500-wide beam must complete");
            }
        }
    }
}
