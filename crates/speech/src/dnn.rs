//! Feed-forward deep neural network for acoustic scoring.
//!
//! The paper's DNN-based ASR (Kaldi / RWTH RASR) replaces GMM emission
//! scoring with the posteriors of a feed-forward network: "scoring amounts
//! to one forward pass through the network" (Section 2.3.1). This module
//! implements a small MLP with ReLU hidden layers and a softmax output,
//! trained by mini-batch SGD with cross-entropy loss; the forward pass is
//! the Sirius Suite "DNN" kernel (a sequence of matrix multiplications).

use rand::Rng;
use sirius_codec::{DecodeError, Decoder, Encoder};

/// One fully-connected layer: `y = W x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Input width.
    pub inputs: usize,
    /// Output width.
    pub outputs: usize,
    /// Row-major weights, `w[o * inputs + i]`.
    pub weights: Vec<f32>,
    /// Biases, one per output.
    pub biases: Vec<f32>,
}

impl Layer {
    /// Creates a layer with He-initialized weights.
    pub fn new(inputs: usize, outputs: usize, rng: &mut impl Rng) -> Self {
        let scale = (2.0 / inputs as f32).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
        }
    }

    /// Dense matrix-vector product — the DNN kernel's inner loop.
    pub fn forward(&self, x: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.outputs, 0.0);
        self.forward_into(x, out);
    }

    /// Like [`Layer::forward`] but writes into a caller-provided slice, so
    /// the hot path allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatches.
    pub fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.inputs);
        debug_assert_eq!(out.len(), self.outputs);
        for (o, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = self.biases[o];
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            *slot = acc;
        }
    }
}

/// A feed-forward network: input → hidden (ReLU)* → output (softmax).
#[derive(Debug, Clone, PartialEq)]
pub struct Dnn {
    layers: Vec<Layer>,
}

/// Training hyper-parameters for [`Dnn::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DnnTrainConfig {
    /// Number of epochs over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for DnnTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            learning_rate: 0.05,
            batch_size: 16,
        }
    }
}

impl Dnn {
    /// Creates a network with the given layer sizes, e.g. `[130, 128, 128, 81]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are supplied.
    pub fn new(sizes: &[usize], rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], rng))
            .collect();
        Self { layers }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Output dimensionality (number of classes / HMM states).
    pub fn output_dim(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Number of hidden layers (the paper's "depth of a DNN").
    pub fn num_hidden_layers(&self) -> usize {
        self.layers.len().saturating_sub(1)
    }

    /// Total number of weights, a proxy for the kernel's FLOP count.
    pub fn num_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// One forward pass, returning the softmax class posteriors.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let (acts, _) = self.forward_internal(x);
        acts.last().cloned().expect("at least one layer")
    }

    /// Log-posteriors `ln p(class | x)`, used for hybrid DNN/HMM scoring.
    pub fn log_posteriors(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).iter().map(|p| p.max(1e-12).ln()).collect()
    }

    /// Forward pass retaining all activations (for backprop).
    /// Returns (post-activation outputs per layer, pre-activation of last).
    fn forward_internal(&self, x: &[f32]) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.layers.len());
        let mut cur: Vec<f32> = x.to_vec();
        let mut pre_last = Vec::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = Vec::new();
            layer.forward(&cur, &mut out);
            if i + 1 == self.layers.len() {
                pre_last = out.clone();
                softmax_in_place(&mut out);
            } else {
                for v in &mut out {
                    *v = v.max(0.0); // ReLU
                }
            }
            acts.push(out.clone());
            cur = out;
        }
        (acts, pre_last)
    }

    /// Trains on `(features, label)` pairs with mini-batch SGD.
    pub fn train(
        &mut self,
        data: &[(Vec<f32>, usize)],
        config: DnnTrainConfig,
        rng: &mut impl Rng,
    ) {
        let n = data.len();
        if n == 0 {
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for chunk in order.chunks(config.batch_size) {
                self.sgd_batch(data, chunk, config.learning_rate);
            }
        }
    }

    fn sgd_batch(&mut self, data: &[(Vec<f32>, usize)], idxs: &[usize], lr: f32) {
        // Accumulate gradients over the batch.
        let mut grad_w: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut grad_b: Vec<Vec<f32>> = self
            .layers
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        for &i in idxs {
            let (x, label) = &data[i];
            let (acts, _) = self.forward_internal(x);
            // Delta at output: softmax + cross-entropy → p - y.
            let mut delta: Vec<f32> = acts.last().expect("layers").clone();
            delta[*label] -= 1.0;
            for li in (0..self.layers.len()).rev() {
                let input: &[f32] = if li == 0 { x } else { &acts[li - 1] };
                let layer = &self.layers[li];
                for o in 0..layer.outputs {
                    let d = delta[o];
                    if d != 0.0 {
                        let row = &mut grad_w[li][o * layer.inputs..(o + 1) * layer.inputs];
                        for (g, v) in row.iter_mut().zip(input) {
                            *g += d * v;
                        }
                        grad_b[li][o] += d;
                    }
                }
                if li > 0 {
                    // Propagate delta through W^T and the ReLU derivative.
                    let mut next = vec![0.0f32; layer.inputs];
                    for o in 0..layer.outputs {
                        let d = delta[o];
                        if d != 0.0 {
                            let row = &layer.weights[o * layer.inputs..(o + 1) * layer.inputs];
                            for (nv, w) in next.iter_mut().zip(row) {
                                *nv += d * w;
                            }
                        }
                    }
                    for (nv, a) in next.iter_mut().zip(&acts[li - 1]) {
                        if *a <= 0.0 {
                            *nv = 0.0;
                        }
                    }
                    delta = next;
                }
            }
        }
        let scale = lr / idxs.len() as f32;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (w, g) in layer.weights.iter_mut().zip(&grad_w[li]) {
                *w -= scale * g;
            }
            for (b, g) in layer.biases.iter_mut().zip(&grad_b[li]) {
                *b -= scale * g;
            }
        }
    }

    /// Classification accuracy over labeled data.
    pub fn accuracy(&self, data: &[(Vec<f32>, usize)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(x, label)| {
                let p = self.forward(x);
                argmax(&p) == *label
            })
            .count();
        correct as f64 / data.len() as f64
    }

    /// Cross-entropy loss over labeled data.
    pub fn loss(&self, data: &[(Vec<f32>, usize)]) -> f64 {
        data.iter()
            .map(|(x, label)| -f64::from(self.forward(x)[*label].max(1e-12).ln()))
            .sum::<f64>()
            / data.len().max(1) as f64
    }
}

/// Pre-transposed weight matrices for [`Dnn::forward_batch_into`].
///
/// The GEMM kernel wants weights in `inputs x outputs` layout so the inner
/// axpy update walks contiguous memory; building that layout once per
/// network (instead of per frame) keeps it off the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnPlan {
    /// Per-layer transposed weights, row-major `inputs x outputs`.
    wt: Vec<Vec<f32>>,
}

/// Reusable intermediate-activation buffers for [`Dnn::forward_batch_into`].
///
/// Holding these outside the call lets a scorer run thousands of forward
/// passes without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct DnnScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

impl Dnn {
    /// Builds the transposed-weight plan consumed by
    /// [`Dnn::forward_batch_into`]. Invalidated by further training.
    pub fn plan(&self) -> DnnPlan {
        DnnPlan {
            wt: self
                .layers
                .iter()
                .map(|l| sirius_kernels::transpose(&l.weights, l.outputs, l.inputs))
                .collect(),
        }
    }

    /// Batched forward pass over `rows` stacked input vectors (row-major
    /// `rows x input_dim`), writing `rows x output_dim` softmax posteriors
    /// into `out`. One GEMM per layer instead of `rows` matrix-vector
    /// products; every row is **bit-identical** to [`Dnn::forward`] on the
    /// corresponding input (see [`sirius_kernels::gemm_xwt_bias`]).
    ///
    /// # Panics
    ///
    /// Panics if `x` does not hold `rows` input vectors or if `plan` was
    /// built for a different architecture.
    pub fn forward_batch_into(
        &self,
        x: &[f32],
        rows: usize,
        plan: &DnnPlan,
        scratch: &mut DnnScratch,
        out: &mut Vec<f32>,
    ) {
        let nl = self.layers.len();
        assert_eq!(x.len(), rows * self.input_dim(), "input matrix shape");
        assert_eq!(plan.wt.len(), nl, "plan/network layer count mismatch");
        out.clear();
        out.resize(rows * self.output_dim(), 0.0);
        let DnnScratch { a, b } = scratch;
        for (i, (layer, wt)) in self.layers.iter().zip(&plan.wt).enumerate() {
            let src: &[f32] = if i == 0 { x } else { a };
            if i + 1 == nl {
                sirius_kernels::gemm_xwt_bias(
                    src,
                    rows,
                    layer.inputs,
                    wt,
                    layer.outputs,
                    &layer.biases,
                    out,
                );
            } else {
                b.clear();
                b.resize(rows * layer.outputs, 0.0);
                sirius_kernels::gemm_xwt_bias(
                    src,
                    rows,
                    layer.inputs,
                    wt,
                    layer.outputs,
                    &layer.biases,
                    b,
                );
                for v in b.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
                std::mem::swap(a, b);
            }
        }
        for row in out.chunks_mut(self.output_dim().max(1)) {
            softmax_in_place(row);
        }
    }
}

impl Dnn {
    /// Serializes the network (see [`sirius_codec`]).
    pub fn encode(&self, e: &mut Encoder) {
        e.tag("dnn");
        e.u32(self.layers.len() as u32);
        for l in &self.layers {
            e.u32(l.inputs as u32);
            e.u32(l.outputs as u32);
            e.f32_slice(&l.weights);
            e.f32_slice(&l.biases);
        }
    }

    /// Deserializes a network previously written by [`Dnn::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.tag("dnn")?;
        let n = d.u32()? as usize;
        let mut layers = Vec::with_capacity(n);
        for _ in 0..n {
            let inputs = d.u32()? as usize;
            let outputs = d.u32()? as usize;
            let weights = d.f32_vec()?;
            let biases = d.f32_vec()?;
            if weights.len() != inputs * outputs || biases.len() != outputs {
                return Err(DecodeError {
                    message: "inconsistent layer shape".into(),
                    offset: 0,
                });
            }
            layers.push(Layer {
                inputs,
                outputs,
                weights,
                biases,
            });
        }
        if layers.is_empty() {
            return Err(DecodeError {
                message: "network has no layers".into(),
                offset: 0,
            });
        }
        Ok(Self { layers })
    }
}

/// Index of the maximum element.
pub fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Numerically stable in-place softmax.
pub fn softmax_in_place(xs: &mut [f32]) {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn softmax_sums_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn forward_output_is_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Dnn::new(&[4, 8, 3], &mut rng);
        let p = net.forward(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    fn xor_data() -> Vec<(Vec<f32>, usize)> {
        vec![
            (vec![0.0, 0.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
            (vec![1.0, 1.0], 0),
        ]
    }

    #[test]
    fn learns_xor() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Dnn::new(&[2, 16, 2], &mut rng);
        let data = xor_data();
        net.train(
            &data,
            DnnTrainConfig {
                epochs: 800,
                learning_rate: 0.3,
                batch_size: 4,
            },
            &mut rng,
        );
        assert!(
            net.accuracy(&data) > 0.99,
            "accuracy {}",
            net.accuracy(&data)
        );
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let data: Vec<(Vec<f32>, usize)> = (0..200)
            .map(|i| {
                let c = i % 3;
                let center = c as f32 * 2.0 - 2.0;
                let x: Vec<f32> = (0..6).map(|_| center + rng.gen_range(-0.5..0.5)).collect();
                (x, c)
            })
            .collect();
        let mut net = Dnn::new(&[6, 24, 3], &mut rng);
        let before = net.loss(&data);
        net.train(&data, DnnTrainConfig::default(), &mut rng);
        let after = net.loss(&data);
        assert!(after < before * 0.5, "before={before} after={after}");
        assert!(net.accuracy(&data) > 0.95);
    }

    #[test]
    fn log_posteriors_match_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = Dnn::new(&[3, 5, 4], &mut rng);
        let x = [0.5, -0.5, 0.25];
        let p = net.forward(&x);
        let lp = net.log_posteriors(&x);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parameter_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let net = Dnn::new(&[10, 20, 5], &mut rng);
        assert_eq!(net.num_parameters(), 10 * 20 + 20 + 20 * 5 + 5);
        assert_eq!(net.input_dim(), 10);
        assert_eq!(net.output_dim(), 5);
        assert_eq!(net.num_hidden_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_sizes_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _ = Dnn::new(&[4], &mut rng);
    }

    /// The GEMM-batched forward pass is the lazy scorer's workhorse; it must
    /// reproduce the per-frame scalar path bit for bit.
    #[test]
    fn batched_forward_is_bit_identical_to_scalar() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = Dnn::new(&[9, 17, 12, 5], &mut rng);
        let plan = net.plan();
        let mut scratch = DnnScratch::default();
        for rows in [1usize, 2, 7, 33] {
            let x: Vec<f32> = (0..rows * 9).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut batch = Vec::new();
            net.forward_batch_into(&x, rows, &plan, &mut scratch, &mut batch);
            assert_eq!(batch.len(), rows * 5);
            for r in 0..rows {
                let single = net.forward(&x[r * 9..(r + 1) * 9]);
                for (a, b) in batch[r * 5..(r + 1) * 5].iter().zip(&single) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r} differs");
                }
            }
        }
    }

    #[test]
    fn layer_forward_into_matches_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let layer = Layer::new(6, 4, &mut rng);
        let x: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut a = Vec::new();
        layer.forward(&x, &mut a);
        let mut b = [0.0f32; 4];
        layer.forward_into(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "input matrix shape")]
    fn batched_forward_rejects_bad_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let net = Dnn::new(&[4, 3], &mut rng);
        let plan = net.plan();
        net.forward_batch_into(
            &[0.0; 7],
            2,
            &plan,
            &mut DnnScratch::default(),
            &mut Vec::new(),
        );
    }
}
