//! Phoneme inventory, pronunciation lexicon and text normalization.
//!
//! The reproduction uses a grapheme-derived phoneme inventory: each letter
//! maps to one phone (plus a silence phone), so a pronunciation dictionary
//! can be derived for any vocabulary. This substitutes for CMU Sphinx's
//! CMUdict, which we cannot ship; the acoustic distinctions are synthetic
//! anyway (see [`crate::synth`]), so a 27-phone inventory exercises the same
//! decoder structure with measurable accuracy.

/// Number of distinct phones: 26 letters + silence.
pub const NUM_PHONES: usize = 27;
/// The silence phone id.
pub const SIL: Phone = Phone(26);
/// Emitting HMM states per phone (classic 3-state left-to-right topology).
pub const STATES_PER_PHONE: usize = 3;
/// Total number of tied HMM emission states.
pub const NUM_STATES: usize = NUM_PHONES * STATES_PER_PHONE;

/// A phone identifier in `0..NUM_PHONES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Phone(pub u8);

impl Phone {
    /// The phone for a lowercase ASCII letter.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not in `'a'..='z'`.
    pub fn from_letter(c: char) -> Self {
        assert!(c.is_ascii_lowercase(), "phone letters are a-z, got {c:?}");
        Phone(c as u8 - b'a')
    }

    /// The letter for this phone, or `'-'` for silence.
    pub fn letter(self) -> char {
        if self == SIL {
            '-'
        } else {
            (b'a' + self.0) as char
        }
    }

    /// The first tied HMM state id of this phone.
    pub fn first_state(self) -> usize {
        self.0 as usize * STATES_PER_PHONE
    }
}

impl std::fmt::Display for Phone {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Derives the pronunciation (phone string) of a word.
///
/// Non-letter characters are dropped; the word must contain at least one
/// ASCII letter after lowercasing.
pub fn pronounce(word: &str) -> Vec<Phone> {
    word.chars()
        .flat_map(char::to_lowercase)
        .filter(char::is_ascii_lowercase)
        .map(Phone::from_letter)
        .collect()
}

/// A pronunciation lexicon over a closed vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    words: Vec<String>,
    prons: Vec<Vec<Phone>>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a lexicon from every word of every sentence in `texts`.
    pub fn from_texts<'a, I: IntoIterator<Item = &'a str>>(texts: I) -> Self {
        let mut lex = Self::new();
        for text in texts {
            for word in normalize_text(text).split_whitespace() {
                lex.add_word(word);
            }
        }
        lex
    }

    /// Adds `word` (idempotent). Returns its index.
    pub fn add_word(&mut self, word: &str) -> usize {
        let w = word.to_lowercase();
        if let Some(i) = self.words.iter().position(|x| *x == w) {
            return i;
        }
        let pron = pronounce(&w);
        assert!(
            !pron.is_empty(),
            "word {word:?} has no pronounceable letters"
        );
        self.words.push(w);
        self.prons.push(pron);
        self.words.len() - 1
    }

    /// Number of vocabulary words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn word(&self, index: usize) -> &str {
        &self.words[index]
    }

    /// The pronunciation of word `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn pron(&self, index: usize) -> &[Phone] {
        &self.prons[index]
    }

    /// Looks up a word's index.
    pub fn word_index(&self, word: &str) -> Option<usize> {
        let w = word.to_lowercase();
        self.words.iter().position(|x| *x == w)
    }

    /// Iterates over `(index, word, pronunciation)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str, &[Phone])> {
        self.words
            .iter()
            .zip(&self.prons)
            .enumerate()
            .map(|(i, (w, p))| (i, w.as_str(), p.as_slice()))
    }
}

impl Lexicon {
    /// Serializes the lexicon (pronunciations are re-derived on decode).
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("lexicon");
        e.str_slice(&self.words);
    }

    /// Deserializes a lexicon written by [`Lexicon::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed bytes or unpronounceable words.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("lexicon")?;
        let words = d.str_vec()?;
        let mut lex = Self::new();
        for w in &words {
            if pronounce(w).is_empty() {
                return Err(sirius_codec::DecodeError {
                    message: format!("unpronounceable word {w:?}"),
                    offset: 0,
                });
            }
            lex.add_word(w);
        }
        Ok(lex)
    }
}

/// Normalizes query text to spoken words: lowercases, expands digits and
/// ordinals ("44th" → "forty fourth", "8" → "eight"), drops punctuation.
pub fn normalize_text(text: &str) -> String {
    let mut out: Vec<String> = Vec::new();
    for raw in text.split_whitespace() {
        let token: String = raw
            .chars()
            .flat_map(char::to_lowercase)
            .filter(|c| c.is_ascii_alphanumeric())
            .collect();
        if token.is_empty() {
            continue;
        }
        if token.chars().any(|c| c.is_ascii_digit()) {
            out.extend(expand_numeric(&token));
        } else {
            out.push(token);
        }
    }
    out.join(" ")
}

fn expand_numeric(token: &str) -> Vec<String> {
    // Split the token into alternating alpha/digit runs and expand each
    // digit run ("44th" → "forty fourth", "8am" → "eight am",
    // "a0" → "a zero"), so normalization is idempotent.
    let mut runs: Vec<(bool, String)> = Vec::new();
    for c in token.chars() {
        let is_digit = c.is_ascii_digit();
        match runs.last_mut() {
            Some((d, s)) if *d == is_digit => s.push(c),
            _ => runs.push((is_digit, c.to_string())),
        }
    }
    let mut out = Vec::new();
    let mut i = 0;
    while i < runs.len() {
        let (is_digit, run) = &runs[i];
        if *is_digit {
            let n: u64 = run.parse().unwrap_or(0);
            // An immediately following "th"/"st"/"nd"/"rd" marks an ordinal.
            let ordinal = runs
                .get(i + 1)
                .is_some_and(|(d, s)| !d && matches!(s.as_str(), "th" | "st" | "nd" | "rd"));
            out.extend(number_to_words(n, ordinal));
            i += if ordinal { 2 } else { 1 };
        } else {
            out.push(run.clone());
            i += 1;
        }
    }
    out
}

const ONES: [&str; 20] = [
    "zero",
    "one",
    "two",
    "three",
    "four",
    "five",
    "six",
    "seven",
    "eight",
    "nine",
    "ten",
    "eleven",
    "twelve",
    "thirteen",
    "fourteen",
    "fifteen",
    "sixteen",
    "seventeen",
    "eighteen",
    "nineteen",
];
const TENS: [&str; 10] = [
    "", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty", "ninety",
];
const ONES_ORD: [&str; 20] = [
    "zeroth",
    "first",
    "second",
    "third",
    "fourth",
    "fifth",
    "sixth",
    "seventh",
    "eighth",
    "ninth",
    "tenth",
    "eleventh",
    "twelfth",
    "thirteenth",
    "fourteenth",
    "fifteenth",
    "sixteenth",
    "seventeenth",
    "eighteenth",
    "nineteenth",
];

/// Converts `n` to English words (cardinal or ordinal), supporting 0..=9999.
pub fn number_to_words(n: u64, ordinal: bool) -> Vec<String> {
    if n >= 10_000 {
        // Spell digit-by-digit for large numbers (e.g. years beyond range).
        return n
            .to_string()
            .chars()
            .map(|c| ONES[c.to_digit(10).expect("digit") as usize].to_owned())
            .collect();
    }
    let mut words: Vec<String> = Vec::new();
    let mut rest = n;
    if rest >= 1000 {
        words.push(ONES[(rest / 1000) as usize].to_owned());
        words.push("thousand".to_owned());
        rest %= 1000;
    }
    if rest >= 100 {
        words.push(ONES[(rest / 100) as usize].to_owned());
        words.push("hundred".to_owned());
        rest %= 100;
    }
    if rest > 0 || words.is_empty() {
        if rest < 20 {
            words.push(if ordinal && rest < 20 {
                ONES_ORD[rest as usize].to_owned()
            } else {
                ONES[rest as usize].to_owned()
            });
            return finish(words, ordinal, true);
        }
        let t = (rest / 10) as usize;
        let o = (rest % 10) as usize;
        if o == 0 {
            let tens = TENS[t].to_owned();
            words.push(if ordinal {
                // twenty → twentieth
                format!("{}ieth", tens.trim_end_matches('y'))
            } else {
                tens
            });
            return finish(words, ordinal, true);
        }
        words.push(TENS[t].to_owned());
        words.push(if ordinal {
            ONES_ORD[o].to_owned()
        } else {
            ONES[o].to_owned()
        });
        return finish(words, ordinal, true);
    }
    finish(words, ordinal, false)
}

fn finish(mut words: Vec<String>, ordinal: bool, last_inflected: bool) -> Vec<String> {
    if ordinal && !last_inflected {
        if let Some(last) = words.last_mut() {
            last.push_str("th"); // "hundred" → "hundredth"
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_round_trip() {
        for c in 'a'..='z' {
            assert_eq!(Phone::from_letter(c).letter(), c);
        }
        assert_eq!(SIL.letter(), '-');
    }

    #[test]
    fn pronounce_strips_non_letters() {
        let p = pronounce("Alarm!");
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], Phone::from_letter('a'));
    }

    #[test]
    fn lexicon_dedupes_and_indexes() {
        let mut lex = Lexicon::new();
        let a = lex.add_word("alarm");
        let b = lex.add_word("Alarm");
        assert_eq!(a, b);
        assert_eq!(lex.len(), 1);
        assert_eq!(lex.word_index("ALARM"), Some(a));
        assert_eq!(lex.word(a), "alarm");
        assert_eq!(lex.pron(a).len(), 5);
    }

    #[test]
    fn lexicon_from_texts_covers_all_words() {
        let lex = Lexicon::from_texts(["set my alarm", "who was elected"]);
        for w in ["set", "my", "alarm", "who", "was", "elected"] {
            assert!(lex.word_index(w).is_some(), "{w} missing");
        }
    }

    #[test]
    fn normalize_expands_numbers() {
        assert_eq!(
            normalize_text("Set my alarm for 8am."),
            "set my alarm for eight am"
        );
        assert_eq!(
            normalize_text("Who was elected 44th president?"),
            "who was elected forty fourth president"
        );
        assert_eq!(
            normalize_text("in 1990"),
            "in one thousand nine hundred ninety"
        );
        assert_eq!(normalize_text("the 2nd door"), "the second door");
        assert_eq!(normalize_text("20th century"), "twentieth century");
        assert_eq!(normalize_text("100th day"), "one hundredth day");
    }

    #[test]
    fn number_words_basic() {
        assert_eq!(number_to_words(0, false), vec!["zero"]);
        assert_eq!(number_to_words(13, false), vec!["thirteen"]);
        assert_eq!(number_to_words(44, false), vec!["forty", "four"]);
        assert_eq!(number_to_words(44, true), vec!["forty", "fourth"]);
        assert_eq!(
            number_to_words(2015, false),
            vec!["two", "thousand", "fifteen"]
        );
        assert_eq!(number_to_words(123456, false).len(), 6);
    }

    #[test]
    fn first_state_layout() {
        assert_eq!(Phone::from_letter('a').first_state(), 0);
        assert_eq!(Phone::from_letter('b').first_state(), 3);
        assert_eq!(SIL.first_state(), 78);
        assert_eq!(NUM_STATES, 81);
    }
}
