//! Synthetic speech generation.
//!
//! The paper's input set is 42 recorded voice queries, which we cannot ship.
//! Per the reproduction's substitution rule we synthesize audio instead:
//! each phone is rendered as a short formant-like signal (two sinusoids at
//! phone-specific frequencies plus noise, under an amplitude envelope), and
//! words/sentences are concatenations with short silences. The MFCC
//! front-end, GMM/DNN acoustic models and HMM decoder then run unmodified on
//! this audio — the same code path as real speech, with learnable and
//! measurably separable acoustics.

use std::f32::consts::PI;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::features::SAMPLE_RATE;
use crate::lexicon::{normalize_text, pronounce, Phone, NUM_PHONES, SIL};

/// Synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Mean phone duration in milliseconds.
    pub phone_ms: f32,
    /// Random duration jitter as a fraction of `phone_ms`.
    pub duration_jitter: f32,
    /// Standard deviation of additive white noise.
    pub noise: f32,
    /// Silence inserted between words, in milliseconds.
    pub inter_word_silence_ms: f32,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            phone_ms: 80.0,
            duration_jitter: 0.15,
            noise: 0.02,
            inter_word_silence_ms: 60.0,
        }
    }
}

/// The two formant frequencies (Hz) assigned to a phone.
///
/// Frequencies are spread so that neighbouring phones are acoustically
/// distinct after the mel filterbank; silence returns `None`.
pub fn formants(phone: Phone) -> Option<(f32, f32)> {
    if phone == SIL {
        return None;
    }
    let id = f32::from(phone.0);
    let n = (NUM_PHONES - 1) as f32;
    // Interleave the second formant so adjacent letters are not adjacent in
    // both formants simultaneously.
    let f1 = 280.0 + 900.0 * id / n;
    let reordered = (id * 7.0) % n;
    let f2 = 1400.0 + 2200.0 * reordered / n;
    Some((f1, f2))
}

/// A phone-level alignment entry: which phone occupies which sample range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignedPhone {
    /// The phone.
    pub phone: Phone,
    /// First sample (inclusive).
    pub start: usize,
    /// Last sample (exclusive).
    pub end: usize,
}

/// A synthesized utterance: samples plus the ground-truth phone alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Utterance {
    /// Mono PCM samples at [`SAMPLE_RATE`].
    pub samples: Vec<f32>,
    /// Phone alignment (includes inter-word silence segments).
    pub alignment: Vec<AlignedPhone>,
    /// The normalized word sequence that was spoken.
    pub words: Vec<String>,
}

impl Utterance {
    /// Duration in seconds.
    pub fn duration_secs(&self) -> f32 {
        self.samples.len() as f32 / SAMPLE_RATE as f32
    }
}

/// Speech synthesizer.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    config: SynthConfig,
    rng: ChaCha8Rng,
}

impl Synthesizer {
    /// Creates a synthesizer with a deterministic seed.
    pub fn new(seed: u64, config: SynthConfig) -> Self {
        Self {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Synthesizes `text` (normalized internally) into an utterance.
    ///
    /// # Panics
    ///
    /// Panics if the normalized text contains no pronounceable words.
    pub fn say(&mut self, text: &str) -> Utterance {
        let normalized = normalize_text(text);
        let words: Vec<String> = normalized.split_whitespace().map(str::to_owned).collect();
        assert!(!words.is_empty(), "nothing to say in {text:?}");
        let mut samples = Vec::new();
        let mut alignment = Vec::new();
        self.render_silence(&mut samples, &mut alignment, 0.5);
        for (wi, word) in words.iter().enumerate() {
            for phone in pronounce(word) {
                self.render_phone(phone, &mut samples, &mut alignment);
            }
            if wi + 1 < words.len() {
                self.render_silence(&mut samples, &mut alignment, 1.0);
            }
        }
        self.render_silence(&mut samples, &mut alignment, 0.5);
        Utterance {
            samples,
            alignment,
            words,
        }
    }

    fn render_phone(
        &mut self,
        phone: Phone,
        samples: &mut Vec<f32>,
        alignment: &mut Vec<AlignedPhone>,
    ) {
        let jitter = 1.0
            + self
                .rng
                .gen_range(-self.config.duration_jitter..=self.config.duration_jitter);
        let dur = ((self.config.phone_ms * jitter / 1000.0) * SAMPLE_RATE as f32) as usize;
        let start = samples.len();
        let (f1, f2) = formants(phone).expect("render_phone not called for silence");
        // Small per-instance frequency wobble models speaker variation.
        let w1 = f1 * (1.0 + self.rng.gen_range(-0.02..0.02));
        let w2 = f2 * (1.0 + self.rng.gen_range(-0.02..0.02));
        let phase1 = self.rng.gen_range(0.0..2.0 * PI);
        let phase2 = self.rng.gen_range(0.0..2.0 * PI);
        for i in 0..dur {
            let t = i as f32 / SAMPLE_RATE as f32;
            // Attack/decay envelope avoids clicks at phone boundaries.
            let pos = i as f32 / dur as f32;
            let env = (pos * 8.0).min(1.0) * ((1.0 - pos) * 8.0).min(1.0);
            let v =
                0.6 * (2.0 * PI * w1 * t + phase1).sin() + 0.4 * (2.0 * PI * w2 * t + phase2).sin();
            let noise = self.rng.gen_range(-1.0f32..1.0) * self.config.noise;
            samples.push(env * v * 0.5 + noise);
        }
        alignment.push(AlignedPhone {
            phone,
            start,
            end: samples.len(),
        });
    }

    fn render_silence(
        &mut self,
        samples: &mut Vec<f32>,
        alignment: &mut Vec<AlignedPhone>,
        scale: f32,
    ) {
        let dur =
            ((self.config.inter_word_silence_ms * scale / 1000.0) * SAMPLE_RATE as f32) as usize;
        if dur == 0 {
            return;
        }
        let start = samples.len();
        for _ in 0..dur {
            samples.push(self.rng.gen_range(-1.0f32..1.0) * self.config.noise * 0.5);
        }
        alignment.push(AlignedPhone {
            phone: SIL,
            start,
            end: samples.len(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formants_are_distinct_across_phones() {
        let mut seen = Vec::new();
        for id in 0..26u8 {
            let (f1, f2) = formants(Phone(id)).expect("letter phone");
            assert!(f1 > 100.0 && f1 < 2000.0);
            assert!(f2 > 1000.0 && f2 < 4000.0);
            for &(g1, g2) in &seen {
                let d1: f32 = f1 - g1;
                let d2: f32 = f2 - g2;
                assert!(
                    d1.abs() > 1.0 || d2.abs() > 1.0,
                    "phones share formants: ({f1},{f2})"
                );
            }
            seen.push((f1, f2));
        }
        assert!(formants(SIL).is_none());
    }

    #[test]
    fn say_produces_aligned_audio() {
        let mut synth = Synthesizer::new(1, SynthConfig::default());
        let utt = synth.say("set my alarm");
        assert_eq!(utt.words, vec!["set", "my", "alarm"]);
        assert!(utt.duration_secs() > 0.5);
        // Alignment tiles the sample range exactly.
        let mut pos = 0;
        for seg in &utt.alignment {
            assert_eq!(seg.start, pos);
            assert!(seg.end > seg.start);
            pos = seg.end;
        }
        assert_eq!(pos, utt.samples.len());
        // 10 letter phones + silences.
        let phones: Vec<Phone> = utt
            .alignment
            .iter()
            .filter(|s| s.phone != SIL)
            .map(|s| s.phone)
            .collect();
        assert_eq!(phones.len(), 10);
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let a = Synthesizer::new(5, SynthConfig::default()).say("hello world");
        let b = Synthesizer::new(5, SynthConfig::default()).say("hello world");
        assert_eq!(a.samples, b.samples);
        let c = Synthesizer::new(6, SynthConfig::default()).say("hello world");
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn samples_are_bounded() {
        let mut synth = Synthesizer::new(2, SynthConfig::default());
        let utt = synth.say("quite a long sentence with many words here");
        assert!(utt.samples.iter().all(|s| s.abs() <= 1.2));
    }

    #[test]
    fn numbers_are_spoken() {
        let mut synth = Synthesizer::new(3, SynthConfig::default());
        let utt = synth.say("wake me at 8am");
        assert!(utt.words.contains(&"eight".to_owned()));
        assert!(utt.words.contains(&"am".to_owned()));
    }

    #[test]
    #[should_panic(expected = "nothing to say")]
    fn empty_text_panics() {
        let mut synth = Synthesizer::new(4, SynthConfig::default());
        let _ = synth.say("?!");
    }
}
