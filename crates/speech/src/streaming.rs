//! Streaming recognition: incremental frame ingestion with stable-prefix
//! partial hypotheses.
//!
//! Batch recognition ([`AsrSystem::recognize_with_mode`]) sees the whole
//! utterance before the decoder runs; the server therefore cannot start
//! downstream work until ASR finishes, pinning end-to-end latency at the
//! sum-of-stages floor. [`StreamingRecognizer`] accepts audio chunks as
//! they arrive, extracts MFCC frames incrementally (pre-emphasis is
//! frame-local, so per-frame cepstra are independent; the delta regression
//! looks two frames ahead, so feature row `t` is final once cepstra
//! `t + 2` exists), advances the beam through every frame whose scores
//! can no longer change, and reports the *committed* word prefix — the
//! unique-ancestor portion of the live beam, which is never retracted and
//! always prefixes the final hypothesis.
//!
//! Because each step replays exactly the computation the batch pass would
//! do over the same frame indices, [`StreamingRecognizer::finish`] is
//! bit-identical to `recognize_with_mode` on the concatenated audio — the
//! invariant the streaming server relies on to reconcile speculative
//! downstream work.

use std::time::{Duration, Instant};

use crate::asr::{AcousticModelKind, AsrOutput, AsrSystem, AsrTiming};
use crate::features::{delta_row, FrontendScratch, FRAME_HOP, FRAME_LEN};
use crate::hmm::{StreamingDecoder, WindowScorer};

/// Typed failures of streaming audio ingestion.
///
/// These are API-misuse and malformed-input conditions; none of them can
/// be produced by well-formed audio, and all leave the recognizer in its
/// pre-call state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// `push_chunk` was called with an empty chunk.
    EmptyChunk,
    /// A chunk sample was NaN or infinite; `index` is its absolute
    /// position in the utterance.
    NonFiniteSample {
        /// Absolute sample index within the utterance.
        index: usize,
    },
    /// `finish` was called before any audio arrived (a zero-length tail
    /// flush). Batch recognition of empty audio is well-defined (empty
    /// text); a streaming session with no chunks is a caller bug.
    EmptyUtterance,
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::EmptyChunk => f.write_str("empty audio chunk pushed to stream"),
            StreamingError::NonFiniteSample { index } => {
                write!(f, "non-finite audio sample at index {index}")
            }
            StreamingError::EmptyUtterance => {
                f.write_str("stream finished before any audio chunk arrived")
            }
        }
    }
}

impl std::error::Error for StreamingError {}

/// Progress report returned by [`StreamingRecognizer::push_chunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Words committed so far (stable, never retracted).
    pub committed_words: usize,
    /// Feature frames the beam has consumed so far.
    pub frames_decoded: usize,
}

/// Which scorer backs the streaming decode.
#[derive(Clone, Copy)]
enum StreamScorer<'a> {
    Gmm,
    Dnn,
    /// DNN with the block GEMMs delegated to a remote [`WindowScorer`]
    /// (the server's cross-query batch collector).
    Remote(&'a dyn WindowScorer),
}

/// Incremental recognizer over audio chunks; see the module docs.
///
/// Create with [`AsrSystem::streaming`] or
/// [`AsrSystem::streaming_with_window_scorer`], feed chunks with
/// [`StreamingRecognizer::push_chunk`], then call
/// [`StreamingRecognizer::finish`].
pub struct StreamingRecognizer<'a> {
    asr: &'a AsrSystem,
    scorer: StreamScorer<'a>,
    sdec: StreamingDecoder<'a>,
    samples: Vec<f32>,
    cepstra: Vec<Vec<f32>>,
    feats: Vec<Vec<f32>>,
    scratch: FrontendScratch,
    committed: Vec<String>,
    feature_time: Duration,
    scoring: Duration,
    search: Duration,
    /// Wall time spent inside `push_chunk`/`finish` (excludes the gaps
    /// while audio "arrives"), reported as `AsrTiming::total`.
    active: Duration,
}

impl std::fmt::Debug for StreamingRecognizer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingRecognizer")
            .field("samples", &self.samples.len())
            .field("frames_decoded", &self.sdec.frames_consumed())
            .field("committed", &self.committed)
            .finish()
    }
}

impl<'a> StreamingRecognizer<'a> {
    pub(crate) fn new(asr: &'a AsrSystem, kind: AcousticModelKind) -> Self {
        let scorer = match kind {
            AcousticModelKind::Gmm => StreamScorer::Gmm,
            AcousticModelKind::Dnn => StreamScorer::Dnn,
        };
        Self::with_scorer(asr, scorer)
    }

    pub(crate) fn with_remote(asr: &'a AsrSystem, remote: &'a dyn WindowScorer) -> Self {
        Self::with_scorer(asr, StreamScorer::Remote(remote))
    }

    fn with_scorer(asr: &'a AsrSystem, scorer: StreamScorer<'a>) -> Self {
        StreamingRecognizer {
            asr,
            scorer,
            sdec: StreamingDecoder::new(asr.decoder(), asr.lm()),
            samples: Vec::new(),
            cepstra: Vec::new(),
            feats: Vec::new(),
            scratch: FrontendScratch::default(),
            committed: Vec::new(),
            feature_time: Duration::ZERO,
            scoring: Duration::ZERO,
            search: Duration::ZERO,
            active: Duration::ZERO,
        }
    }

    /// Committed words so far (stable: never retracted, always a prefix
    /// of the final hypothesis).
    pub fn committed(&self) -> &[String] {
        &self.committed
    }

    /// Committed words joined with spaces — a prefix of the final
    /// `AsrOutput::text` (up to the trailing partial word boundary).
    pub fn committed_text(&self) -> String {
        self.committed.join(" ")
    }

    /// Feature frames the beam has consumed so far.
    pub fn frames_decoded(&self) -> usize {
        self.sdec.frames_consumed()
    }

    /// Total audio samples ingested so far.
    pub fn samples_ingested(&self) -> usize {
        self.samples.len()
    }

    /// Ingests one audio chunk: validates it, extracts every newly final
    /// feature row, and advances the beam through every frame whose
    /// scores are batch-final.
    ///
    /// # Errors
    ///
    /// [`StreamingError::EmptyChunk`] for a zero-length chunk and
    /// [`StreamingError::NonFiniteSample`] for NaN/infinite samples; both
    /// leave the stream state untouched.
    pub fn push_chunk(&mut self, chunk: &[f32]) -> Result<StreamProgress, StreamingError> {
        if chunk.is_empty() {
            return Err(StreamingError::EmptyChunk);
        }
        if let Some(i) = chunk.iter().position(|s| !s.is_finite()) {
            return Err(StreamingError::NonFiniteSample {
                index: self.samples.len() + i,
            });
        }
        let start = Instant::now();
        self.samples.extend_from_slice(chunk);
        self.ingest_features();
        // Mid-stream decode horizon: exclude rows whose DNN context window
        // would clamp at the current feature edge (batch clamps at the
        // true utterance edge). GMM scores one row at a time, so every
        // extracted row is already final.
        let horizon = match self.scorer {
            StreamScorer::Gmm => self.feats.len(),
            StreamScorer::Dnn | StreamScorer::Remote(_) => self
                .feats
                .len()
                .saturating_sub(self.asr.dnn_scorer().context()),
        };
        self.advance_to(horizon);
        self.refresh_committed();
        self.active += start.elapsed();
        Ok(StreamProgress {
            committed_words: self.committed.len(),
            frames_decoded: self.sdec.frames_consumed(),
        })
    }

    /// Ends the utterance: extracts the clamped feature tail, decodes the
    /// remaining frames and backtraces. The result is bit-identical to
    /// `recognize_with_mode` (lazy scoring) over the concatenated audio.
    ///
    /// # Errors
    ///
    /// [`StreamingError::EmptyUtterance`] if no chunk was ever pushed.
    /// Audio that is non-empty but shorter than one analysis frame is
    /// fine and yields the batch result (empty text, zero frames).
    pub fn finish(mut self) -> Result<AsrOutput, StreamingError> {
        if self.samples.is_empty() {
            return Err(StreamingError::EmptyUtterance);
        }
        let start = Instant::now();
        // Tail flush: the last rows' delta regressions clamp at the real
        // utterance end now, exactly as the batch pass computes them.
        while self.feats.len() < self.cepstra.len() {
            self.feats.push(delta_row(&self.cepstra, self.feats.len()));
        }
        self.advance_to(self.feats.len());
        self.refresh_committed();
        let decoded = self.sdec.finish(self.asr.lexicon());
        let num_frames = self.feats.len();
        let (text, tokens_expanded, confidence) = match decoded {
            Some(r) => (
                r.words.join(" "),
                r.tokens_expanded,
                r.confidence(num_frames),
            ),
            None => (String::new(), 0, 0.0),
        };
        self.active += start.elapsed();
        Ok(AsrOutput {
            text,
            timing: AsrTiming {
                feature_extraction: self.feature_time,
                scoring: self.scoring,
                search: self.search,
                total: self.active,
            },
            frames: num_frames,
            tokens_expanded,
            confidence,
        })
    }

    /// Extracts every cepstra frame fully contained in the ingested audio
    /// and every delta row that is already batch-final (two more cepstra
    /// frames exist past it).
    fn ingest_features(&mut self) {
        let t = Instant::now();
        while self.cepstra.len() * FRAME_HOP + FRAME_LEN <= self.samples.len() {
            let start = self.cepstra.len() * FRAME_HOP;
            self.cepstra.push(self.asr.frontend().cepstra_frame(
                &self.samples,
                start,
                &mut self.scratch,
            ));
        }
        while self.feats.len() < self.cepstra.len().saturating_sub(2) {
            self.feats.push(delta_row(&self.cepstra, self.feats.len()));
        }
        self.feature_time += t.elapsed();
    }

    /// Advances the beam to `horizon` with a fresh provider over the
    /// current feature prefix. Providers index frames exactly as a batch
    /// pass would, and rows beyond the horizon are never read, so every
    /// score the decoder sees equals the batch score (DNN blocks are
    /// row-independent; see `WindowScorer`).
    fn advance_to(&mut self, horizon: usize) {
        if horizon <= self.sdec.frames_consumed() {
            return;
        }
        let t = Instant::now();
        let scoring_before = match self.scorer {
            StreamScorer::Gmm => {
                let mut scores = self.asr.gmm_scorer().lazy_scores(&self.feats);
                self.sdec.advance(&mut scores, horizon);
                scores.compute_time()
            }
            StreamScorer::Dnn => {
                let mut scores = self.asr.dnn_scorer().lazy_scores(&self.feats);
                self.sdec.advance(&mut scores, horizon);
                scores.compute_time()
            }
            StreamScorer::Remote(remote) => {
                let mut scores = self.asr.dnn_scorer().batched_scores(&self.feats, remote);
                self.sdec.advance(&mut scores, horizon);
                scores.compute_time()
            }
        };
        self.scoring += scoring_before;
        self.search += t.elapsed().saturating_sub(scoring_before);
    }

    /// Maps newly committed word ids to spelled words (append-only).
    fn refresh_committed(&mut self) {
        let ids = self.sdec.committed();
        if ids.len() > self.committed.len() {
            let lex = self.asr.lexicon();
            for &w in &ids[self.committed.len()..] {
                self.committed.push(lex.word(w as usize).to_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asr::AsrTrainConfig;
    use crate::synth::{SynthConfig, Synthesizer};

    fn system() -> AsrSystem {
        AsrSystem::train(
            &["go home now", "stop the music"],
            42,
            AsrTrainConfig::default(),
        )
    }

    #[test]
    fn empty_chunk_is_a_typed_error() {
        let asr = system();
        let mut rec = asr.streaming(AcousticModelKind::Gmm);
        assert_eq!(rec.push_chunk(&[]), Err(StreamingError::EmptyChunk));
        // State unchanged: a valid chunk still works.
        assert!(rec.push_chunk(&[0.0; 100]).is_ok());
        assert_eq!(rec.samples_ingested(), 100);
    }

    #[test]
    fn non_finite_sample_is_a_typed_error_with_absolute_index() {
        let asr = system();
        let mut rec = asr.streaming(AcousticModelKind::Gmm);
        rec.push_chunk(&[0.0; 50]).expect("clean chunk");
        let mut bad = vec![0.0f32; 10];
        bad[3] = f32::NAN;
        assert_eq!(
            rec.push_chunk(&bad),
            Err(StreamingError::NonFiniteSample { index: 53 })
        );
        let mut inf = vec![0.0f32; 4];
        inf[0] = f32::INFINITY;
        assert_eq!(
            rec.push_chunk(&inf),
            Err(StreamingError::NonFiniteSample { index: 50 })
        );
        // Failed pushes ingested nothing.
        assert_eq!(rec.samples_ingested(), 50);
    }

    #[test]
    fn zero_length_flush_is_a_typed_error() {
        let asr = system();
        let rec = asr.streaming(AcousticModelKind::Gmm);
        assert_eq!(rec.finish().unwrap_err(), StreamingError::EmptyUtterance);
    }

    #[test]
    fn error_display_is_informative() {
        let e = StreamingError::NonFiniteSample { index: 7 };
        assert!(e.to_string().contains("index 7"));
        assert!(StreamingError::EmptyChunk.to_string().contains("empty"));
        assert!(StreamingError::EmptyUtterance
            .to_string()
            .contains("before any audio"));
    }

    /// An utterance shorter than one analysis frame (and shorter than any
    /// reasonable chunk) must decode identically to batch: empty text,
    /// zero frames.
    #[test]
    fn sub_frame_utterance_matches_batch() {
        let asr = system();
        let audio = vec![0.01f32; FRAME_LEN - 1];
        let batch = asr.recognize(&audio, AcousticModelKind::Gmm);
        let mut rec = asr.streaming(AcousticModelKind::Gmm);
        rec.push_chunk(&audio).expect("push");
        let out = rec.finish().expect("finish");
        assert_eq!(out.text, batch.text);
        assert_eq!(out.frames, batch.frames);
        assert_eq!(out.frames, 0);
        assert_eq!(out.confidence, batch.confidence);
    }

    #[test]
    fn streaming_matches_batch_for_real_audio() {
        let asr = system();
        let utt = Synthesizer::new(321, SynthConfig::default()).say("go home now");
        let batch = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        let mut rec = asr.streaming(AcousticModelKind::Gmm);
        for chunk in utt.samples.chunks(1600) {
            rec.push_chunk(chunk).expect("push");
        }
        let committed = rec.committed_text();
        let out = rec.finish().expect("finish");
        assert_eq!(out.text, batch.text);
        assert_eq!(out.frames, batch.frames);
        assert_eq!(out.tokens_expanded, batch.tokens_expanded);
        assert_eq!(out.confidence.to_bits(), batch.confidence.to_bits());
        assert!(
            out.text.starts_with(&committed),
            "committed {committed:?} not a prefix of {:?}",
            out.text
        );
    }
}
