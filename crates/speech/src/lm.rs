//! Bigram language model over the recognizer's closed vocabulary.
//!
//! The paper's ASR uses a language model alongside the acoustic model and
//! dictionary (Figure 4, "Trained Data"). A bigram model with add-k
//! smoothing is sufficient for the 42-query input set and keeps decoding
//! exact.

use crate::lexicon::{normalize_text, Lexicon};

/// Bigram language model with add-k smoothing.
#[derive(Debug, Clone)]
pub struct BigramLm {
    vocab: usize,
    k: f64,
    /// `unigram[w]` = count of w as sentence start.
    start_counts: Vec<u32>,
    start_total: u32,
    /// `bigram[prev][next]` counts, dense (vocab is small).
    bigram_counts: Vec<Vec<u32>>,
    /// Row totals for `bigram_counts`.
    prev_totals: Vec<u32>,
}

impl BigramLm {
    /// Trains a bigram LM from raw sentences using `lexicon` for the word
    /// inventory. Words outside the lexicon are skipped.
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(texts: I, lexicon: &Lexicon) -> Self {
        let v = lexicon.len();
        let mut lm = Self {
            vocab: v,
            k: 0.1,
            start_counts: vec![0; v],
            start_total: 0,
            bigram_counts: vec![vec![0; v]; v],
            prev_totals: vec![0; v],
        };
        for text in texts {
            let normalized = normalize_text(text);
            let ids: Vec<usize> = normalized
                .split_whitespace()
                .filter_map(|w| lexicon.word_index(w))
                .collect();
            if let Some(&first) = ids.first() {
                lm.start_counts[first] += 1;
                lm.start_total += 1;
            }
            for pair in ids.windows(2) {
                lm.bigram_counts[pair[0]][pair[1]] += 1;
                lm.prev_totals[pair[0]] += 1;
            }
        }
        lm
    }

    /// Vocabulary size this model was trained over.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Log-probability of `word` starting a sentence.
    pub fn log_start(&self, word: usize) -> f32 {
        let num = f64::from(self.start_counts[word]) + self.k;
        let den = f64::from(self.start_total) + self.k * self.vocab as f64;
        (num / den).ln() as f32
    }

    /// Log-probability of `next` following `prev`.
    pub fn log_bigram(&self, prev: usize, next: usize) -> f32 {
        let num = f64::from(self.bigram_counts[prev][next]) + self.k;
        let den = f64::from(self.prev_totals[prev]) + self.k * self.vocab as f64;
        (num / den).ln() as f32
    }

    /// Log-probability of a full sentence of word ids.
    pub fn log_sentence(&self, words: &[usize]) -> f32 {
        let Some(&first) = words.first() else {
            return 0.0;
        };
        let mut total = self.log_start(first);
        for pair in words.windows(2) {
            total += self.log_bigram(pair[0], pair[1]);
        }
        total
    }

    /// Serializes the model.
    pub fn encode(&self, e: &mut sirius_codec::Encoder) {
        e.tag("bigram_lm");
        e.u32(self.vocab as u32);
        e.f64(self.k);
        e.u32_slice(&self.start_counts);
        e.u32(self.start_total);
        for row in &self.bigram_counts {
            e.u32_slice(row);
        }
        e.u32_slice(&self.prev_totals);
    }

    /// Deserializes a model written by [`BigramLm::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn decode(d: &mut sirius_codec::Decoder<'_>) -> Result<Self, sirius_codec::DecodeError> {
        d.tag("bigram_lm")?;
        let vocab = d.u32()? as usize;
        let k = d.f64()?;
        let start_counts = d.u32_vec()?;
        let start_total = d.u32()?;
        let mut bigram_counts = Vec::with_capacity(vocab);
        for _ in 0..vocab {
            bigram_counts.push(d.u32_vec()?);
        }
        let prev_totals = d.u32_vec()?;
        if start_counts.len() != vocab
            || prev_totals.len() != vocab
            || bigram_counts.iter().any(|r| r.len() != vocab)
        {
            return Err(sirius_codec::DecodeError {
                message: "inconsistent language-model dimensions".into(),
                offset: 0,
            });
        }
        Ok(Self {
            vocab,
            k,
            start_counts,
            start_total,
            bigram_counts,
            prev_totals,
        })
    }

    /// Perplexity of a sentence under the model.
    pub fn perplexity(&self, words: &[usize]) -> f32 {
        if words.is_empty() {
            return 1.0;
        }
        (-self.log_sentence(words) / words.len() as f32).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Lexicon, BigramLm) {
        let texts = [
            "set my alarm for eight am",
            "set my timer for ten minutes",
            "who was elected president",
            "what is the capital of italy",
        ];
        let lex = Lexicon::from_texts(texts.iter().copied());
        let lm = BigramLm::train(texts.iter().copied(), &lex);
        (lex, lm)
    }

    #[test]
    fn seen_bigrams_outscore_unseen() {
        let (lex, lm) = setup();
        let set = lex.word_index("set").expect("set");
        let my = lex.word_index("my").expect("my");
        let italy = lex.word_index("italy").expect("italy");
        assert!(lm.log_bigram(set, my) > lm.log_bigram(set, italy));
    }

    #[test]
    fn start_words_outscore_non_starts() {
        let (lex, lm) = setup();
        let set = lex.word_index("set").expect("set");
        let alarm = lex.word_index("alarm").expect("alarm");
        assert!(lm.log_start(set) > lm.log_start(alarm));
    }

    #[test]
    fn training_sentence_has_low_perplexity() {
        let (lex, lm) = setup();
        let ids: Vec<usize> = "set my alarm for eight am"
            .split_whitespace()
            .map(|w| lex.word_index(w).expect("in vocab"))
            .collect();
        let shuffled: Vec<usize> = ids.iter().rev().copied().collect();
        assert!(lm.perplexity(&ids) < lm.perplexity(&shuffled));
    }

    #[test]
    fn distributions_normalize() {
        let (lex, lm) = setup();
        let v = lex.len();
        let start_sum: f64 = (0..v).map(|w| f64::from(lm.log_start(w)).exp()).sum();
        assert!((start_sum - 1.0).abs() < 1e-6, "start sums to {start_sum}");
        let set = lex.word_index("set").expect("set");
        let big_sum: f64 = (0..v).map(|w| f64::from(lm.log_bigram(set, w)).exp()).sum();
        assert!((big_sum - 1.0).abs() < 1e-6, "bigram row sums to {big_sum}");
    }

    #[test]
    fn empty_sentence_handled() {
        let (_, lm) = setup();
        assert_eq!(lm.log_sentence(&[]), 0.0);
        assert_eq!(lm.perplexity(&[]), 1.0);
    }
}

/// A language model that can score a whole sentence of word ids; both
/// [`BigramLm`] and [`TrigramLm`] implement it, so N-best rescoring can
/// swap in a stronger model for the second pass.
pub trait SentenceModel {
    /// Log-probability of a full sentence of word ids.
    fn sentence_log_prob(&self, words: &[usize]) -> f32;
}

impl SentenceModel for BigramLm {
    fn sentence_log_prob(&self, words: &[usize]) -> f32 {
        self.log_sentence(words)
    }
}

/// Interpolated trigram language model with bigram/unigram backoff.
///
/// The stronger second-pass model for N-best rescoring: trigram context
/// captures dependencies the first-pass bigram decode cannot.
#[derive(Debug, Clone)]
pub struct TrigramLm {
    bigram: BigramLm,
    /// Unigram counts.
    unigram: Vec<u32>,
    unigram_total: u32,
    /// Sparse trigram counts keyed by `(w1, w2) -> counts over w3`.
    trigram: std::collections::HashMap<(u32, u32), Vec<(u32, u32)>>,
    /// Interpolation weights (trigram, bigram, unigram); sum to 1.
    lambdas: (f64, f64, f64),
}

impl TrigramLm {
    /// Trains a trigram model (and its embedded bigram) from raw sentences.
    pub fn train<'a, I: IntoIterator<Item = &'a str> + Clone>(texts: I, lexicon: &Lexicon) -> Self {
        let bigram = BigramLm::train(texts.clone(), lexicon);
        let v = lexicon.len();
        let mut unigram = vec![0u32; v];
        let mut unigram_total = 0u32;
        let mut trigram: std::collections::HashMap<(u32, u32), Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for text in texts {
            let normalized = normalize_text(text);
            let ids: Vec<u32> = normalized
                .split_whitespace()
                .filter_map(|w| lexicon.word_index(w).map(|i| i as u32))
                .collect();
            for &w in &ids {
                unigram[w as usize] += 1;
                unigram_total += 1;
            }
            for tri in ids.windows(3) {
                let key = (tri[0], tri[1]);
                let entry = trigram.entry(key).or_default();
                match entry.iter_mut().find(|(w, _)| *w == tri[2]) {
                    Some((_, c)) => *c += 1,
                    None => entry.push((tri[2], 1)),
                }
            }
        }
        Self {
            bigram,
            unigram,
            unigram_total,
            trigram,
            lambdas: (0.6, 0.3, 0.1),
        }
    }

    /// The embedded first-pass bigram model.
    pub fn bigram(&self) -> &BigramLm {
        &self.bigram
    }

    fn p_unigram(&self, w: usize) -> f64 {
        (f64::from(self.unigram[w]) + 0.1)
            / (f64::from(self.unigram_total) + 0.1 * self.unigram.len() as f64)
    }

    fn p_bigram(&self, prev: usize, w: usize) -> f64 {
        f64::from(self.bigram.log_bigram(prev, w)).exp()
    }

    fn p_trigram(&self, w1: usize, w2: usize, w3: usize) -> Option<f64> {
        let entry = self.trigram.get(&(w1 as u32, w2 as u32))?;
        let total: u32 = entry.iter().map(|(_, c)| c).sum();
        let count = entry
            .iter()
            .find(|(w, _)| *w as usize == w3)
            .map_or(0, |(_, c)| *c);
        Some((f64::from(count) + 0.1) / (f64::from(total) + 0.1 * self.unigram.len() as f64))
    }

    /// Interpolated log-probability of `w3` given the two preceding words.
    pub fn log_cond(&self, w1: usize, w2: usize, w3: usize) -> f32 {
        let (l3, l2, l1) = self.lambdas;
        let p3 = self.p_trigram(w1, w2, w3);
        let p2 = self.p_bigram(w2, w3);
        let p1 = self.p_unigram(w3);
        let p = match p3 {
            Some(p3) => l3 * p3 + l2 * p2 + l1 * p1,
            // No trigram context observed: renormalize onto bigram+unigram.
            None => (l2 * p2 + l1 * p1) / (l2 + l1),
        };
        (p.max(1e-12)).ln() as f32
    }
}

impl SentenceModel for TrigramLm {
    fn sentence_log_prob(&self, words: &[usize]) -> f32 {
        match words.len() {
            0 => 0.0,
            1 => self.bigram.log_start(words[0]),
            _ => {
                let mut total =
                    self.bigram.log_start(words[0]) + self.bigram.log_bigram(words[0], words[1]);
                for tri in words.windows(3) {
                    total += self.log_cond(tri[0], tri[1], tri[2]);
                }
                total
            }
        }
    }
}

#[cfg(test)]
mod trigram_tests {
    use super::*;

    fn setup() -> (Lexicon, TrigramLm) {
        let texts = [
            "set my alarm for eight am",
            "set my timer for ten minutes",
            "set my alarm for ten am",
            "who was elected president",
        ];
        let lex = Lexicon::from_texts(texts.iter().copied());
        let lm = TrigramLm::train(texts.iter().copied(), &lex);
        (lex, lm)
    }

    fn ids(lex: &Lexicon, s: &str) -> Vec<usize> {
        s.split_whitespace()
            .map(|w| lex.word_index(w).expect("in vocab"))
            .collect()
    }

    #[test]
    fn trigram_context_disambiguates_where_bigram_cannot() {
        let (lex, lm) = setup();
        // After "timer for", the corpus only continues with "ten"; the
        // bigram "for -> ..." alone cannot tell "ten" from "eight".
        let timer = ids(&lex, "timer")[0];
        let for_ = ids(&lex, "for")[0];
        let ten = ids(&lex, "ten")[0];
        let eight = ids(&lex, "eight")[0];
        let margin_tri = lm.log_cond(timer, for_, ten) - lm.log_cond(timer, for_, eight);
        let margin_bi = lm.bigram().log_bigram(for_, ten) - lm.bigram().log_bigram(for_, eight);
        assert!(margin_tri > margin_bi, "tri {margin_tri} vs bi {margin_bi}");
        assert!(margin_tri > 0.0);
    }

    #[test]
    fn seen_trigrams_outscore_unseen() {
        let (lex, lm) = setup();
        let set = ids(&lex, "set")[0];
        let my = ids(&lex, "my")[0];
        let alarm = ids(&lex, "alarm")[0];
        let president = ids(&lex, "president")[0];
        assert!(lm.log_cond(set, my, alarm) > lm.log_cond(set, my, president));
    }

    #[test]
    fn degenerate_lengths_are_handled() {
        let (lex, lm) = setup();
        assert_eq!(lm.sentence_log_prob(&[]), 0.0);
        let one = ids(&lex, "set");
        assert!(lm.sentence_log_prob(&one).is_finite());
        let two = ids(&lex, "set my");
        assert!(lm.sentence_log_prob(&two).is_finite());
    }

    #[test]
    fn unseen_context_backs_off_to_bigram() {
        let (lex, lm) = setup();
        // "president set my": the (president, set) context never occurs.
        let president = ids(&lex, "president")[0];
        let set = ids(&lex, "set")[0];
        let my = ids(&lex, "my")[0];
        let p = lm.log_cond(president, set, my);
        assert!(p.is_finite());
        // Backoff must still prefer the likely continuation.
        let timer = ids(&lex, "timer")[0];
        assert!(lm.log_cond(president, set, my) > lm.log_cond(president, set, timer));
    }
}
