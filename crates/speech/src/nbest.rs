//! N-best decoding and language-model rescoring.
//!
//! The paper cites hybrid decoding with "on-the-fly hypothesis rescoring"
//! \[62\] as the production approach for GPU-accelerated ASR: a fast first
//! pass produces several candidate transcripts, and a second pass re-ranks
//! them with a stronger (or re-weighted) language model. This module
//! implements that two-pass structure: [`Decoder::decode_nbest`] runs token
//! passing with per-state K-best token lists, and [`rescore`] re-ranks the
//! hypotheses under a caller-supplied language-model weight.

use std::collections::HashMap;

use crate::hmm::{Decoder, DecoderConfig};
use crate::lexicon::Lexicon;
use crate::lm::{BigramLm, SentenceModel};

/// One N-best hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// The word sequence.
    pub words: Vec<String>,
    /// Combined acoustic + LM Viterbi score from the first pass.
    pub score: f32,
    /// First-pass rank (0 = best).
    pub rank: usize,
}

/// Per-state token used during N-best search.
#[derive(Debug, Clone, Copy)]
struct Token {
    score: f32,
    hist: u32,
}

const ROOT: u32 = u32::MAX;

/// How many tokens each graph state retains during N-best search.
pub const TOKENS_PER_STATE: usize = 4;

impl Decoder {
    /// Decodes the `n` best distinct word sequences.
    ///
    /// Runs token passing like [`Decoder::decode_scores`] but keeps up to
    /// [`TOKENS_PER_STATE`] tokens with distinct word histories per graph
    /// state, then collects distinct acceptance hypotheses.
    ///
    /// Returns an empty vector when no path survives.
    pub fn decode_nbest(
        &self,
        emis: &[Vec<f32>],
        lm: &BigramLm,
        lexicon: &Lexicon,
        n: usize,
    ) -> Vec<Hypothesis> {
        let t_max = emis.len();
        if t_max == 0 || n == 0 {
            return Vec::new();
        }
        let num_states = self.num_graph_states();
        let log_self = self.config().self_loop.ln();
        let log_adv = (1.0 - self.config().self_loop).ln();
        let wip = self.config().word_insertion_penalty;
        let lmw = self.config().lm_weight;

        // History arena: (word, previous) — shared across the beam. The
        // memo canonicalizes transitions so equal word sequences share one
        // arena id, making per-state history dedup exact.
        let mut arena: Vec<(u32, u32)> = Vec::with_capacity(4096);
        let mut memo: HashMap<(u32, u32), u32> = HashMap::with_capacity(4096);
        let mut cur: Vec<Vec<Token>> = vec![Vec::new(); num_states];
        let mut nxt: Vec<Vec<Token>> = vec![Vec::new(); num_states];

        // Initialization: silence start and every word start.
        cur[self.sil_first_state()].push(Token {
            score: emis[0][self.emission_of(self.sil_first_state())],
            hist: ROOT,
        });
        for w in 0..lexicon.len() {
            let e = self.word_first_state(w);
            arena.push((w as u32, ROOT));
            memo.insert((w as u32, ROOT), (arena.len() - 1) as u32);
            cur[e].push(Token {
                score: lmw * lm.log_start(w) + wip + emis[0][self.emission_of(e)],
                hist: (arena.len() - 1) as u32,
            });
        }

        let push_token = |list: &mut Vec<Token>, tok: Token| {
            // Keep at most TOKENS_PER_STATE tokens with distinct histories.
            if let Some(existing) = list.iter_mut().find(|t| t.hist == tok.hist) {
                if tok.score > existing.score {
                    *existing = tok;
                }
                return;
            }
            if list.len() < TOKENS_PER_STATE {
                list.push(tok);
                return;
            }
            let (worst_idx, worst) = list
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.score.total_cmp(&b.1.score))
                .expect("non-empty list");
            if tok.score > worst.score {
                list[worst_idx] = tok;
            }
        };

        for t in 1..t_max {
            for l in &mut nxt {
                l.clear();
            }
            let best = cur
                .iter()
                .flatten()
                .map(|t| t.score)
                .fold(f32::NEG_INFINITY, f32::max);
            if best == f32::NEG_INFINITY {
                return Vec::new();
            }
            let threshold = best - self.config().beam;
            let frame = &emis[t];
            for e in 0..num_states {
                if cur[e].is_empty() {
                    continue;
                }
                let is_word_end = self.is_word_end_state(e);
                let in_sil = e >= self.sil_first_state();
                let tokens = std::mem::take(&mut cur[e]);
                for tok in &tokens {
                    if tok.score < threshold {
                        continue;
                    }
                    // Self loop.
                    push_token(
                        &mut nxt[e],
                        Token {
                            score: tok.score + log_self + frame[self.emission_of(e)],
                            hist: tok.hist,
                        },
                    );
                    if !is_word_end && e != self.sil_last_state() {
                        let target = e + 1;
                        push_token(
                            &mut nxt[target],
                            Token {
                                score: tok.score + log_adv + frame[self.emission_of(target)],
                                hist: tok.hist,
                            },
                        );
                    }
                    if !is_word_end && !in_sil {
                        continue;
                    }
                    let exit = tok.score + log_adv;
                    if is_word_end {
                        push_token(
                            &mut nxt[self.sil_first_state()],
                            Token {
                                score: exit + frame[self.emission_of(self.sil_first_state())],
                                hist: tok.hist,
                            },
                        );
                    }
                    let prev_word = if tok.hist == ROOT {
                        None
                    } else {
                        Some(arena[tok.hist as usize].0 as usize)
                    };
                    for w in 0..lexicon.len() {
                        let lm_score = match prev_word {
                            Some(p) => lm.log_bigram(p, w),
                            None => lm.log_start(w),
                        };
                        let target = self.word_first_state(w);
                        let cand = exit + lmw * lm_score + wip + frame[self.emission_of(target)];
                        // Skip hopeless candidates before touching the arena.
                        let worth_it = nxt[target].len() < TOKENS_PER_STATE
                            || nxt[target].iter().any(|t| cand > t.score);
                        if worth_it {
                            let hist = *memo.entry((w as u32, tok.hist)).or_insert_with(|| {
                                arena.push((w as u32, tok.hist));
                                (arena.len() - 1) as u32
                            });
                            push_token(&mut nxt[target], Token { score: cand, hist });
                        }
                    }
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
        }

        // Collect acceptance tokens and keep the best score per distinct
        // word sequence.
        let mut finals: Vec<Token> = Vec::new();
        for w in 0..lexicon.len() {
            finals.extend(cur[self.word_last_state(w)].iter().copied());
        }
        for e in self.sil_first_state()..=self.sil_last_state() {
            finals.extend(cur[e].iter().copied());
        }
        let words_of = |mut hist: u32| -> Vec<String> {
            let mut rev = Vec::new();
            while hist != ROOT {
                let (w, prev) = arena[hist as usize];
                rev.push(lexicon.word(w as usize).to_owned());
                hist = prev;
            }
            rev.reverse();
            rev
        };
        let mut unique: Vec<(Vec<String>, f32)> = Vec::new();
        for tok in finals {
            let words = words_of(tok.hist);
            match unique.iter_mut().find(|(w, _)| *w == words) {
                Some((_, s)) => *s = s.max(tok.score),
                None => unique.push((words, tok.score)),
            }
        }
        unique.sort_by(|a, b| b.1.total_cmp(&a.1));
        unique
            .into_iter()
            .take(n)
            .enumerate()
            .map(|(rank, (words, score))| Hypothesis { words, score, rank })
            .collect()
    }
}

/// Second-pass rescoring: re-ranks first-pass hypotheses with a stronger
/// language model (e.g. [`crate::lm::TrigramLm`]) and/or a new weight.
///
/// The acoustic evidence is approximated by the first-pass score with the
/// first-pass LM contribution subtracted out, as in standard lattice
/// rescoring: `score = acoustic + lm_weight * second_lm(words)`.
pub fn rescore<M: SentenceModel>(
    hypotheses: &[Hypothesis],
    first_pass_config: &DecoderConfig,
    first_pass_lm: &BigramLm,
    second_pass_lm: &M,
    lexicon: &Lexicon,
    lm_weight: f32,
) -> Vec<Hypothesis> {
    let mut out: Vec<Hypothesis> = hypotheses
        .iter()
        .map(|h| {
            let ids: Vec<usize> = h
                .words
                .iter()
                .filter_map(|w| lexicon.word_index(w))
                .collect();
            let first_lm = first_pass_config.lm_weight * first_pass_lm.log_sentence(&ids);
            let acoustic = h.score - first_lm;
            Hypothesis {
                words: h.words.clone(),
                score: acoustic + lm_weight * second_pass_lm.sentence_log_prob(&ids),
                rank: h.rank,
            }
        })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    for (i, h) in out.iter_mut().enumerate() {
        h.rank = i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig};
    use crate::hmm::AcousticScorer;
    use crate::synth::{SynthConfig, Synthesizer};

    fn system() -> AsrSystem {
        AsrSystem::train(
            &["go on now", "no go on", "on and on"],
            9,
            AsrTrainConfig::default(),
        )
    }

    fn emissions(asr: &AsrSystem, text: &str, seed: u64) -> Vec<Vec<f32>> {
        let utt = Synthesizer::new(seed, SynthConfig::default()).say(text);
        let frames = asr.frontend().extract(&utt.samples);
        asr.gmm_scorer().score_utterance(&frames)
    }

    #[test]
    fn nbest_top_hypothesis_matches_one_best() {
        let asr = system();
        let emis = emissions(&asr, "go on now", 100);
        let one_best = asr
            .decoder()
            .decode_scores(&emis, asr.lm(), asr.lexicon())
            .expect("decode");
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 5);
        assert!(!nbest.is_empty());
        assert_eq!(nbest[0].words, one_best.words);
        assert!((nbest[0].score - one_best.score).abs() < 1e-3);
    }

    #[test]
    fn nbest_returns_distinct_ranked_hypotheses() {
        let asr = system();
        let emis = emissions(&asr, "go on now", 101);
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 4);
        assert!(nbest.len() >= 2, "only {} hypotheses", nbest.len());
        for pair in nbest.windows(2) {
            assert!(pair[0].score >= pair[1].score);
            assert_ne!(pair[0].words, pair[1].words);
        }
        for (i, h) in nbest.iter().enumerate() {
            assert_eq!(h.rank, i);
        }
    }

    #[test]
    fn rescoring_with_zero_weight_ranks_by_acoustics() {
        let asr = system();
        let emis = emissions(&asr, "no go on", 102);
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 4);
        let cfg = crate::hmm::DecoderConfig::default();
        let rescored = rescore(&nbest, &cfg, asr.lm(), asr.lm(), asr.lexicon(), 0.0);
        assert_eq!(rescored.len(), nbest.len());
        // With the original weight restored, the original ranking returns.
        let restored = rescore(
            &nbest,
            &cfg,
            asr.lm(),
            asr.lm(),
            asr.lexicon(),
            cfg.lm_weight,
        );
        assert_eq!(restored[0].words, nbest[0].words);
    }

    #[test]
    fn stronger_lm_weight_prefers_likely_sentences() {
        // Train the LM heavily on "go on now"; the rescoring pass with a
        // large weight must keep or promote it.
        let asr = AsrSystem::train(
            &["go on now", "go on now", "go on now", "no go on"],
            11,
            AsrTrainConfig::default(),
        );
        let emis = emissions(&asr, "go on now", 103);
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 5);
        let cfg = crate::hmm::DecoderConfig::default();
        let heavy = rescore(&nbest, &cfg, asr.lm(), asr.lm(), asr.lexicon(), 12.0);
        assert_eq!(heavy[0].words, vec!["go", "on", "now"]);
    }

    #[test]
    fn trigram_rescoring_promotes_trigram_likely_sentences() {
        use crate::lm::TrigramLm;
        // The trigram corpus makes "go on now" overwhelmingly likely after
        // its context even though bigram evidence is mixed.
        let corpus = ["go on now", "go on now", "no go on", "on and on"];
        let asr = AsrSystem::train(&corpus, 19, AsrTrainConfig::default());
        let trigram = TrigramLm::train(corpus.iter().copied(), asr.lexicon());
        let emis = emissions(&asr, "go on now", 301);
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 5);
        let cfg = crate::hmm::DecoderConfig::default();
        let rescored = rescore(&nbest, &cfg, asr.lm(), &trigram, asr.lexicon(), 6.0);
        assert_eq!(rescored[0].words, vec!["go", "on", "now"]);
    }

    #[test]
    fn empty_input_yields_no_hypotheses() {
        let asr = system();
        assert!(asr
            .decoder()
            .decode_nbest(&[], asr.lm(), asr.lexicon(), 3)
            .is_empty());
        let emis = emissions(&asr, "go on", 104);
        assert!(asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 0)
            .is_empty());
    }

    #[test]
    fn nbest_works_through_the_full_recognizer() {
        let asr = system();
        let utt = Synthesizer::new(105, SynthConfig::default()).say("on and on");
        let out = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        assert_eq!(out.text, "on and on");
        let frames = asr.frontend().extract(&utt.samples);
        let emis = asr.gmm_scorer().score_utterance(&frames);
        let nbest = asr
            .decoder()
            .decode_nbest(&emis, asr.lm(), asr.lexicon(), 3);
        assert_eq!(nbest[0].words.join(" "), "on and on");
    }
}
