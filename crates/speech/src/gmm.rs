//! Diagonal-covariance Gaussian Mixture Models for acoustic scoring.
//!
//! This mirrors CMU Sphinx's acoustic scoring, the paper's Sirius Suite
//! "GMM" kernel: "the major computation of the algorithm lies in three
//! nested loops that iteratively score the feature vector against the
//! training data ... in the forms of a means vector, a pre-calculated
//! (precs) vector, a weight vector, and a factor vector" (Section 4.3.4).
//! [`Gmm::log_likelihood`] is exactly that triple loop; `sirius-suite`
//! re-exposes it as the standalone kernel.

use rand::Rng;
use sirius_codec::{DecodeError, Decoder, Encoder};

/// One diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm {
    dim: usize,
    /// Flattened means, `means[m * dim + d]`.
    means: Vec<f32>,
    /// Pre-calculated precisions `1 / (2 * var)`, same layout as means.
    precs: Vec<f32>,
    /// Log mixture weights, one per component.
    weights: Vec<f32>,
    /// Per-component log normalization factor
    /// `-0.5 * (dim * ln(2π) + Σ ln var_d)`.
    factors: Vec<f32>,
}

impl Gmm {
    /// Creates a GMM from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if the slices are inconsistent with `num_components * dim`, or
    /// if any variance is non-positive.
    pub fn from_params(dim: usize, means: Vec<f32>, vars: Vec<f32>, weights: Vec<f32>) -> Self {
        let m = weights.len();
        assert!(m <= 64, "at most 64 mixture components supported");
        assert_eq!(means.len(), m * dim, "means length");
        assert_eq!(vars.len(), m * dim, "vars length");
        assert!(vars.iter().all(|&v| v > 0.0), "variances must be positive");
        let precs: Vec<f32> = vars.iter().map(|&v| 1.0 / (2.0 * v)).collect();
        let factors: Vec<f32> = (0..m)
            .map(|k| {
                let log_det: f32 = vars[k * dim..(k + 1) * dim].iter().map(|v| v.ln()).sum();
                -0.5 * (dim as f32 * (2.0 * std::f32::consts::PI).ln() + log_det)
            })
            .collect();
        let wsum: f32 = weights.iter().sum();
        let weights = weights.iter().map(|w| (w / wsum).max(1e-10).ln()).collect();
        Self {
            dim,
            means,
            precs,
            weights,
            factors,
        }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.weights.len()
    }

    /// Log-likelihood of one feature vector — the Sirius Suite GMM hot loop.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x.len() != self.dim()`.
    pub fn log_likelihood(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.dim);
        let mut best = f32::NEG_INFINITY;
        let mut acc = 0.0f32;
        // log-sum-exp over components, streaming.
        let mut logs = [0f32; 64];
        let m = self.num_components();
        for k in 0..m {
            let mut dist = 0.0f32;
            let base = k * self.dim;
            for d in 0..self.dim {
                let diff = x[d] - self.means[base + d];
                dist += diff * diff * self.precs[base + d];
            }
            let l = self.weights[k] + self.factors[k] - dist;
            logs[k.min(63)] = l;
            if l > best {
                best = l;
            }
        }
        if best == f32::NEG_INFINITY {
            return f32::NEG_INFINITY;
        }
        for (k, l) in logs.iter().enumerate().take(m) {
            let _ = k;
            acc += (l - best).exp();
        }
        best + acc.ln()
    }

    /// Fits a GMM with `num_components` components to `data` using k-means
    /// initialization followed by `em_iters` EM iterations.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `num_components` is 0 or > 64.
    pub fn fit(
        data: &[Vec<f32>],
        num_components: usize,
        em_iters: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!data.is_empty(), "cannot fit a GMM to no data");
        assert!(
            (1..=64).contains(&num_components),
            "components must be in 1..=64"
        );
        let dim = data[0].len();
        let n = data.len();
        // k-means++-lite initialization: random distinct points.
        let mut means: Vec<f32> = Vec::with_capacity(num_components * dim);
        for _ in 0..num_components {
            let idx = rng.gen_range(0..n);
            means.extend_from_slice(&data[idx]);
        }
        let mut assignments = vec![0usize; n];
        for _ in 0..4 {
            // Assign.
            for (i, x) in data.iter().enumerate() {
                let mut best = (f32::INFINITY, 0usize);
                for k in 0..num_components {
                    let d: f32 = (0..dim)
                        .map(|j| {
                            let diff = x[j] - means[k * dim + j];
                            diff * diff
                        })
                        .sum();
                    if d < best.0 {
                        best = (d, k);
                    }
                }
                assignments[i] = best.1;
            }
            // Update.
            let mut counts = vec![0usize; num_components];
            let mut sums = vec![0.0f32; num_components * dim];
            for (i, x) in data.iter().enumerate() {
                let k = assignments[i];
                counts[k] += 1;
                for j in 0..dim {
                    sums[k * dim + j] += x[j];
                }
            }
            for k in 0..num_components {
                if counts[k] > 0 {
                    for j in 0..dim {
                        means[k * dim + j] = sums[k * dim + j] / counts[k] as f32;
                    }
                } else {
                    let idx = rng.gen_range(0..n);
                    means[k * dim..(k + 1) * dim].copy_from_slice(&data[idx]);
                }
            }
        }
        // Initial variances and weights from the hard assignment.
        let mut vars = vec![0.0f32; num_components * dim];
        let mut counts = vec![0usize; num_components];
        for (i, x) in data.iter().enumerate() {
            let k = assignments[i];
            counts[k] += 1;
            for j in 0..dim {
                let diff = x[j] - means[k * dim + j];
                vars[k * dim + j] += diff * diff;
            }
        }
        for k in 0..num_components {
            for j in 0..dim {
                vars[k * dim + j] = (vars[k * dim + j] / counts[k].max(1) as f32).max(1e-2);
            }
        }
        let weights: Vec<f32> = counts
            .iter()
            .map(|&c| (c.max(1)) as f32 / n as f32)
            .collect();
        let mut gmm = Self::from_params(dim, means, vars, weights);

        // EM refinement.
        for _ in 0..em_iters {
            gmm = gmm.em_step(data);
        }
        gmm
    }

    /// Serializes the model (see [`sirius_codec`]).
    pub fn encode(&self, e: &mut Encoder) {
        e.tag("gmm");
        e.u32(self.dim as u32);
        e.f32_slice(&self.means);
        e.f32_slice(&self.precs);
        e.f32_slice(&self.weights);
        e.f32_slice(&self.factors);
    }

    /// Deserializes a model previously written by [`Gmm::encode`].
    ///
    /// # Errors
    ///
    /// Fails on malformed or inconsistent bytes.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        d.tag("gmm")?;
        let dim = d.u32()? as usize;
        let means = d.f32_vec()?;
        let precs = d.f32_vec()?;
        let weights = d.f32_vec()?;
        let factors = d.f32_vec()?;
        if dim == 0
            || means.len() != precs.len()
            || weights.len() != factors.len()
            || means.len() != weights.len() * dim
        {
            return Err(DecodeError {
                message: "inconsistent GMM dimensions".into(),
                offset: 0,
            });
        }
        Ok(Self {
            dim,
            means,
            precs,
            weights,
            factors,
        })
    }

    /// Builds the dimension-major scoring view of this mixture (see
    /// [`GmmSoa`]).
    pub fn soa(&self) -> GmmSoa {
        let m = self.num_components();
        let dim = self.dim;
        let mut means_t = vec![0.0f32; m * dim];
        let mut precs_t = vec![0.0f32; m * dim];
        for k in 0..m {
            for d in 0..dim {
                means_t[d * m + k] = self.means[k * dim + d];
                precs_t[d * m + k] = self.precs[k * dim + d];
            }
        }
        let offsets = (0..m).map(|k| self.weights[k] + self.factors[k]).collect();
        GmmSoa {
            dim,
            m,
            means_t,
            precs_t,
            offsets,
        }
    }

    /// One EM iteration over `data`, returning the updated model.
    fn em_step(&self, data: &[Vec<f32>]) -> Self {
        let m = self.num_components();
        let dim = self.dim;
        let n = data.len();
        let mut resp_sum = vec![0.0f64; m];
        let mut mean_acc = vec![0.0f64; m * dim];
        let mut var_acc = vec![0.0f64; m * dim];
        let mut logs = vec![0.0f32; m];
        for x in data {
            // Per-component log densities.
            let mut best = f32::NEG_INFINITY;
            for k in 0..m {
                let mut dist = 0.0f32;
                for d in 0..dim {
                    let diff = x[d] - self.means[k * dim + d];
                    dist += diff * diff * self.precs[k * dim + d];
                }
                logs[k] = self.weights[k] + self.factors[k] - dist;
                best = best.max(logs[k]);
            }
            let denom: f32 = logs.iter().map(|l| (l - best).exp()).sum();
            for k in 0..m {
                let r = f64::from((logs[k] - best).exp() / denom);
                resp_sum[k] += r;
                for d in 0..dim {
                    mean_acc[k * dim + d] += r * f64::from(x[d]);
                }
            }
            let _ = n;
        }
        let new_means: Vec<f32> = (0..m * dim)
            .map(|i| (mean_acc[i] / resp_sum[i / dim].max(1e-10)) as f32)
            .collect();
        // Second pass for variances against the new means.
        for x in data {
            let mut best = f32::NEG_INFINITY;
            for k in 0..m {
                let mut dist = 0.0f32;
                for d in 0..dim {
                    let diff = x[d] - self.means[k * dim + d];
                    dist += diff * diff * self.precs[k * dim + d];
                }
                logs[k] = self.weights[k] + self.factors[k] - dist;
                best = best.max(logs[k]);
            }
            let denom: f32 = logs.iter().map(|l| (l - best).exp()).sum();
            for k in 0..m {
                let r = f64::from((logs[k] - best).exp() / denom);
                for d in 0..dim {
                    let diff = f64::from(x[d]) - f64::from(new_means[k * dim + d]);
                    var_acc[k * dim + d] += r * diff * diff;
                }
            }
        }
        let new_vars: Vec<f32> = (0..m * dim)
            .map(|i| ((var_acc[i] / resp_sum[i / dim].max(1e-10)) as f32).max(1e-2))
            .collect();
        let total: f64 = resp_sum.iter().sum();
        let new_weights: Vec<f32> = resp_sum.iter().map(|&r| (r / total) as f32).collect();
        Self::from_params(dim, new_means, new_vars, new_weights)
    }
}

/// Dimension-major (SoA) scoring view of a [`Gmm`].
///
/// The paper's GPU port transposes the GMM parameters so that "coalesced
/// global memory accesses" walk all components together (Section 4.4.1);
/// on a CPU the same transposition turns the inner loop into `m`
/// independent accumulators that vectorize. Each component's squared
/// distance still accumulates over the dimensions in ascending order, and
/// the log-sum-exp runs over components in the same order as
/// [`Gmm::log_likelihood`], so the result is **bit-identical** to the AoS
/// triple loop — the lazy decoder's equivalence gate is exact.
#[derive(Debug, Clone)]
pub struct GmmSoa {
    dim: usize,
    m: usize,
    /// Transposed means, `means_t[d * m + k]`.
    means_t: Vec<f32>,
    /// Transposed precisions, same layout.
    precs_t: Vec<f32>,
    /// Per-component `log weight + log normalizer`.
    offsets: Vec<f32>,
}

impl GmmSoa {
    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Log-likelihood of one feature vector; bit-identical to
    /// [`Gmm::log_likelihood`] on the source mixture.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x.len() != self.dim()`.
    pub fn log_likelihood(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.dim);
        let m = self.m;
        let mut dists = [0.0f32; 64];
        let dists = &mut dists[..m];
        for (d, &xd) in x.iter().enumerate() {
            let means = &self.means_t[d * m..(d + 1) * m];
            let precs = &self.precs_t[d * m..(d + 1) * m];
            for ((acc, &mean), &prec) in dists.iter_mut().zip(means).zip(precs) {
                let diff = xd - mean;
                *acc += diff * diff * prec;
            }
        }
        let mut best = f32::NEG_INFINITY;
        for (k, acc) in dists.iter_mut().enumerate() {
            let l = self.offsets[k] - *acc;
            *acc = l;
            if l > best {
                best = l;
            }
        }
        if best == f32::NEG_INFINITY {
            return f32::NEG_INFINITY;
        }
        let mut acc = 0.0f32;
        for l in dists.iter() {
            acc += (l - best).exp();
        }
        best + acc.ln()
    }

    /// Scores this state against many frames, writing `out[t]` for each
    /// frame `t`. The interchanged loop order (state outer, frames inner)
    /// keeps the mixture parameters hot in cache while streaming frames;
    /// every value is bit-identical to the per-frame [`Gmm`] loop.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != frames.len()`.
    pub fn log_likelihood_batch(&self, frames: &[Vec<f32>], out: &mut [f32]) {
        assert_eq!(out.len(), frames.len(), "output length mismatch");
        for (slot, frame) in out.iter_mut().zip(frames) {
            *slot = self.log_likelihood(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn single_gaussian() -> Gmm {
        Gmm::from_params(2, vec![0.0, 0.0], vec![1.0, 1.0], vec![1.0])
    }

    #[test]
    fn log_likelihood_matches_closed_form() {
        let g = single_gaussian();
        // log N(0; 0, I) in 2D = -log(2π) ≈ -1.8379.
        let l = g.log_likelihood(&[0.0, 0.0]);
        assert!(
            (l - (-(2.0 * std::f32::consts::PI).ln())).abs() < 1e-4,
            "{l}"
        );
        // One unit away: subtract 0.5.
        let l1 = g.log_likelihood(&[1.0, 0.0]);
        assert!((l - l1 - 0.5).abs() < 1e-4);
    }

    #[test]
    fn likelihood_decreases_with_distance() {
        let g = single_gaussian();
        let l0 = g.log_likelihood(&[0.0, 0.0]);
        let l3 = g.log_likelihood(&[3.0, 3.0]);
        assert!(l0 > l3);
    }

    #[test]
    fn mixture_weights_normalize() {
        // Two identical components with asymmetric raw weights must equal a
        // single component (weights are normalized internally).
        let two = Gmm::from_params(1, vec![0.0, 0.0], vec![1.0, 1.0], vec![3.0, 1.0]);
        let one = Gmm::from_params(1, vec![0.0], vec![1.0], vec![1.0]);
        assert!((two.log_likelihood(&[0.5]) - one.log_likelihood(&[0.5])).abs() < 1e-5);
    }

    #[test]
    fn fit_recovers_two_clusters() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut data = Vec::new();
        for i in 0..400 {
            let c = if i % 2 == 0 { -4.0 } else { 4.0 };
            data.push(vec![
                c + rng.gen_range(-0.5..0.5),
                c + rng.gen_range(-0.5..0.5),
            ]);
        }
        let g = Gmm::fit(&data, 2, 5, &mut rng);
        // Points near the cluster centers must score far better than the gap.
        let near = g.log_likelihood(&[4.0, 4.0]);
        let gap = g.log_likelihood(&[0.0, 0.0]);
        assert!(near > gap + 5.0, "near={near} gap={gap}");
    }

    #[test]
    fn fit_separates_classes_for_classification() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sample = |c: f32, rng: &mut ChaCha8Rng| -> Vec<f32> {
            (0..4).map(|_| c + rng.gen_range(-0.4..0.4)).collect()
        };
        let a_data: Vec<Vec<f32>> = (0..200).map(|_| sample(-2.0, &mut rng)).collect();
        let b_data: Vec<Vec<f32>> = (0..200).map(|_| sample(2.0, &mut rng)).collect();
        let ga = Gmm::fit(&a_data, 2, 3, &mut rng);
        let gb = Gmm::fit(&b_data, 2, 3, &mut rng);
        let mut correct = 0;
        for _ in 0..100 {
            let x = sample(-2.0, &mut rng);
            if ga.log_likelihood(&x) > gb.log_likelihood(&x) {
                correct += 1;
            }
            let y = sample(2.0, &mut rng);
            if gb.log_likelihood(&y) > ga.log_likelihood(&y) {
                correct += 1;
            }
        }
        assert!(correct >= 195, "classification accuracy {correct}/200");
    }

    #[test]
    #[should_panic(expected = "variances must be positive")]
    fn zero_variance_rejected() {
        let _ = Gmm::from_params(1, vec![0.0], vec![0.0], vec![1.0]);
    }

    #[test]
    fn accessors() {
        let g = single_gaussian();
        assert_eq!(g.dim(), 2);
        assert_eq!(g.num_components(), 1);
    }
}

#[cfg(test)]
mod soa_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The dimension-major view must reproduce the AoS triple loop exactly
    /// (same bits), across component counts and dimensions.
    #[test]
    fn soa_scoring_is_bit_identical() {
        for seed in 0u64..12 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let m = 1 + (seed as usize % 8);
            let dim = 2 + (seed as usize % 25);
            let data: Vec<Vec<f32>> = (0..m * 16)
                .map(|_| (0..dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
                .collect();
            let g = Gmm::fit(&data, m, 1, &mut rng);
            let soa = g.soa();
            for _ in 0..32 {
                let x: Vec<f32> = (0..dim).map(|_| rng.gen_range(-4.0f32..4.0)).collect();
                assert_eq!(
                    g.log_likelihood(&x).to_bits(),
                    soa.log_likelihood(&x).to_bits(),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn batch_scoring_matches_per_frame() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let data: Vec<Vec<f32>> = (0..64)
            .map(|_| (0..6).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let g = Gmm::fit(&data, 4, 2, &mut rng);
        let soa = g.soa();
        let frames: Vec<Vec<f32>> = (0..23)
            .map(|_| (0..6).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
            .collect();
        let mut out = vec![0.0f32; frames.len()];
        soa.log_likelihood_batch(&frames, &mut out);
        for (t, frame) in frames.iter().enumerate() {
            assert_eq!(out[t].to_bits(), g.log_likelihood(frame).to_bits());
        }
        assert_eq!(soa.dim(), 6);
    }
}

#[cfg(test)]
mod property_tests {
    use super::Gmm;
    use rand::{Rng as _, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The mixture log-likelihood stays finite and decreases for far-away
    /// queries, across many fitted models and query points.
    #[test]
    fn log_likelihood_respects_mixture_bounds() {
        for seed in 0u64..24 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            let data: Vec<Vec<f32>> = (0..40)
                .map(|_| (0..4).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
                .collect();
            let g = Gmm::fit(&data, 3, 1, &mut rng);
            let l = g.log_likelihood(&x);
            assert!(l.is_finite(), "seed {seed}");
            // Shifting the query far away must not increase likelihood.
            let far: Vec<f32> = x.iter().map(|v| v + 100.0).collect();
            assert!(g.log_likelihood(&far) < l, "seed {seed}");
        }
    }

    /// Likelihood is invariant to the order of data during k-means
    /// init only up to RNG; but scoring itself must be deterministic.
    #[test]
    fn scoring_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let data: Vec<Vec<f32>> = (0..30)
            .map(|_| (0..4).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let g = Gmm::fit(&data, 2, 1, &mut rng);
        for _ in 0..32 {
            let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
            assert_eq!(g.log_likelihood(&x), g.log_likelihood(&x));
        }
    }
}
