//! Acoustic feature extraction: MFCC front-end.
//!
//! The paper's ASR pipeline (Figure 4) starts with "fast pre-processing and
//! feature extraction of the speech" producing feature vectors for the
//! decoder. This module implements the standard MFCC chain: pre-emphasis →
//! framing → Hamming window → FFT power spectrum → mel filterbank → log →
//! DCT, plus delta features.

use std::f32::consts::PI;

/// Audio sample rate used throughout the crate (Hz).
pub const SAMPLE_RATE: usize = 16_000;
/// Analysis frame length in samples (25 ms at 16 kHz).
pub const FRAME_LEN: usize = 400;
/// Frame hop in samples (10 ms at 16 kHz).
pub const FRAME_HOP: usize = 160;
/// FFT size (next power of two above the frame length).
pub const FFT_SIZE: usize = 512;
/// Number of mel filterbank channels.
pub const NUM_MEL: usize = 26;
/// Number of cepstral coefficients kept.
pub const NUM_CEPSTRA: usize = 13;
/// Final feature dimension: cepstra plus deltas.
pub const FEATURE_DIM: usize = NUM_CEPSTRA * 2;

/// Configuration of the MFCC front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendConfig {
    /// Pre-emphasis coefficient (0 disables).
    pub pre_emphasis: f32,
    /// Floor applied before the log to avoid `-inf`.
    pub log_floor: f32,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            pre_emphasis: 0.97,
            log_floor: 1e-10,
        }
    }
}

/// In-place iterative radix-2 FFT over interleaved complex values.
///
/// `re` and `im` must have the same power-of-two length.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn fft(re: &mut [f32], im: &mut [f32]) {
    let n = re.len();
    assert_eq!(n, im.len(), "fft buffers must have equal length");
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f32;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_re, mut cur_im) = (1.0f32, 0.0f32);
            for j in 0..len / 2 {
                let a = i + j;
                let b = i + j + len / 2;
                let t_re = re[b] * cur_re - im[b] * cur_im;
                let t_im = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Converts Hz to mel scale.
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel to Hz.
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank over FFT bins.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    /// `filters[m]` = (start_bin, weights).
    filters: Vec<(usize, Vec<f32>)>,
}

impl MelFilterbank {
    /// Builds `NUM_MEL` triangular filters between 100 Hz and Nyquist.
    pub fn new() -> Self {
        let nyquist = SAMPLE_RATE as f32 / 2.0;
        let lo = hz_to_mel(100.0);
        let hi = hz_to_mel(nyquist);
        let centers: Vec<f32> = (0..NUM_MEL + 2)
            .map(|i| mel_to_hz(lo + (hi - lo) * i as f32 / (NUM_MEL + 1) as f32))
            .collect();
        let bin = |hz: f32| -> usize { ((hz / nyquist) * (FFT_SIZE / 2) as f32).round() as usize };
        let mut filters = Vec::with_capacity(NUM_MEL);
        for m in 0..NUM_MEL {
            let (b0, b1, b2) = (bin(centers[m]), bin(centers[m + 1]), bin(centers[m + 2]));
            let b1 = b1.max(b0 + 1);
            let b2 = b2.max(b1 + 1);
            let mut weights = Vec::with_capacity(b2 - b0);
            for b in b0..b2 {
                let w = if b < b1 {
                    (b - b0) as f32 / (b1 - b0) as f32
                } else {
                    (b2 - b) as f32 / (b2 - b1) as f32
                };
                weights.push(w);
            }
            filters.push((b0, weights));
        }
        Self { filters }
    }

    /// Applies the filterbank to a power spectrum of `FFT_SIZE/2 + 1` bins.
    pub fn apply(&self, power: &[f32]) -> Vec<f32> {
        self.filters
            .iter()
            .map(|(start, weights)| {
                weights
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w * power.get(start + i).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect()
    }
}

impl Default for MelFilterbank {
    fn default() -> Self {
        Self::new()
    }
}

/// The MFCC front-end.
#[derive(Debug, Clone)]
pub struct Frontend {
    config: FrontendConfig,
    filterbank: MelFilterbank,
    window: Vec<f32>,
    /// DCT-II basis, `dct[k][m]`.
    dct: Vec<Vec<f32>>,
}

impl Frontend {
    /// Creates a front-end with the given configuration.
    pub fn new(config: FrontendConfig) -> Self {
        let window: Vec<f32> = (0..FRAME_LEN)
            .map(|i| 0.54 - 0.46 * (2.0 * PI * i as f32 / (FRAME_LEN - 1) as f32).cos())
            .collect();
        let dct: Vec<Vec<f32>> = (0..NUM_CEPSTRA)
            .map(|k| {
                (0..NUM_MEL)
                    .map(|m| {
                        (PI * k as f32 * (m as f32 + 0.5) / NUM_MEL as f32).cos()
                            * (2.0 / NUM_MEL as f32).sqrt()
                    })
                    .collect()
            })
            .collect();
        Self {
            config,
            filterbank: MelFilterbank::new(),
            window,
            dct,
        }
    }

    /// Extracts `FEATURE_DIM`-dimensional MFCC+delta features from raw audio.
    ///
    /// Returns one feature vector per frame; audio shorter than one frame
    /// yields an empty vector.
    pub fn extract(&self, samples: &[f32]) -> Vec<Vec<f32>> {
        if samples.len() < FRAME_LEN {
            return Vec::new();
        }
        let num_frames = (samples.len() - FRAME_LEN) / FRAME_HOP + 1;
        let mut cepstra = Vec::with_capacity(num_frames);
        let mut re = vec![0.0f32; FFT_SIZE];
        let mut im = vec![0.0f32; FFT_SIZE];
        for f in 0..num_frames {
            let start = f * FRAME_HOP;
            re[..FRAME_LEN].copy_from_slice(&samples[start..start + FRAME_LEN]);
            re[FRAME_LEN..].fill(0.0);
            im.fill(0.0);
            // Pre-emphasis then window.
            for i in (1..FRAME_LEN).rev() {
                re[i] -= self.config.pre_emphasis * re[i - 1];
            }
            for i in 0..FRAME_LEN {
                re[i] *= self.window[i];
            }
            fft(&mut re, &mut im);
            let power: Vec<f32> = (0..FFT_SIZE / 2 + 1)
                .map(|i| re[i] * re[i] + im[i] * im[i])
                .collect();
            let mel = self.filterbank.apply(&power);
            let log_mel: Vec<f32> = mel
                .iter()
                .map(|&e| e.max(self.config.log_floor).ln())
                .collect();
            let c: Vec<f32> = self
                .dct
                .iter()
                .map(|row| row.iter().zip(&log_mel).map(|(d, l)| d * l).sum())
                .collect();
            cepstra.push(c);
        }
        add_deltas(&cepstra)
    }
}

impl Default for Frontend {
    fn default() -> Self {
        Self::new(FrontendConfig::default())
    }
}

/// Appends first-order delta features (+/- 2 frame regression) to each frame.
pub fn add_deltas(cepstra: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let n = cepstra.len();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let mut v = cepstra[t].clone();
        let prev = &cepstra[t.saturating_sub(2)];
        let next = &cepstra[(t + 2).min(n - 1)];
        for k in 0..cepstra[t].len() {
            v.push((next[k] - prev[k]) / 4.0);
        }
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[f32]) -> Vec<(f32, f32)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0f64;
                let mut im = 0.0f64;
                for (t, &v) in x.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * k as f64 * t as f64 / n as f64;
                    re += f64::from(v) * ang.cos();
                    im += f64::from(v) * ang.sin();
                }
                (re as f32, im as f32)
            })
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        let x: Vec<f32> = (0..64).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect();
        let mut re = x.clone();
        let mut im = vec![0.0; 64];
        fft(&mut re, &mut im);
        let reference = naive_dft(&x);
        for k in 0..64 {
            assert!((re[k] - reference[k].0).abs() < 1e-2, "re[{k}]");
            assert!((im[k] - reference[k].1).abs() < 1e-2, "im[{k}]");
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0f32; 16];
        let mut im = vec![0.0f32; 16];
        re[0] = 1.0;
        fft(&mut re, &mut im);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-5);
            assert!(im[k].abs() < 1e-5);
        }
    }

    #[test]
    fn sine_peak_lands_in_right_bin() {
        // 1 kHz tone at 16 kHz, FFT 512 → bin 32.
        let samples: Vec<f32> = (0..FFT_SIZE)
            .map(|i| (2.0 * PI * 1000.0 * i as f32 / SAMPLE_RATE as f32).sin())
            .collect();
        let mut re = samples;
        let mut im = vec![0.0; FFT_SIZE];
        fft(&mut re, &mut im);
        let power: Vec<f32> = (0..FFT_SIZE / 2)
            .map(|i| re[i] * re[i] + im[i] * im[i])
            .collect();
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(peak, 32);
    }

    #[test]
    fn mel_conversion_round_trips() {
        for hz in [100.0f32, 440.0, 1000.0, 4000.0, 7999.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() / hz < 1e-4, "{hz} -> {back}");
        }
    }

    #[test]
    fn filterbank_is_nonnegative_and_covers_spectrum() {
        let fb = MelFilterbank::new();
        let flat = vec![1.0f32; FFT_SIZE / 2 + 1];
        let out = fb.apply(&flat);
        assert_eq!(out.len(), NUM_MEL);
        assert!(out.iter().all(|&e| e >= 0.0));
        assert!(out.iter().sum::<f32>() > 0.0);
    }

    #[test]
    fn extract_produces_expected_frame_count_and_dim() {
        let fe = Frontend::default();
        let one_sec: Vec<f32> = (0..SAMPLE_RATE)
            .map(|i| (2.0 * PI * 300.0 * i as f32 / SAMPLE_RATE as f32).sin())
            .collect();
        let feats = fe.extract(&one_sec);
        let expected = (SAMPLE_RATE - FRAME_LEN) / FRAME_HOP + 1;
        assert_eq!(feats.len(), expected);
        assert!(feats.iter().all(|f| f.len() == FEATURE_DIM));
    }

    #[test]
    fn short_audio_yields_no_frames() {
        let fe = Frontend::default();
        assert!(fe.extract(&vec![0.0; FRAME_LEN - 1]).is_empty());
    }

    #[test]
    fn different_tones_produce_different_features() {
        let fe = Frontend::default();
        let tone = |hz: f32| -> Vec<f32> {
            (0..SAMPLE_RATE / 2)
                .map(|i| (2.0 * PI * hz * i as f32 / SAMPLE_RATE as f32).sin())
                .collect()
        };
        let a = fe.extract(&tone(300.0));
        let b = fe.extract(&tone(2500.0));
        let dist: f32 = a[5].iter().zip(&b[5]).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(dist > 1.0, "features too similar: {dist}");
    }

    #[test]
    fn deltas_are_zero_for_static_signal() {
        let frames = vec![vec![1.0f32, 2.0, 3.0]; 10];
        let with = add_deltas(&frames);
        for f in with {
            assert_eq!(f.len(), 6);
            assert!(f[3..].iter().all(|&d| d.abs() < 1e-9));
        }
    }
}
