//! End-to-end automatic speech recognition: model training and recognition.
//!
//! [`AsrSystem::train`] builds the full "Trained Data" box of the paper's
//! Figure 4 — pronunciation dictionary, bigram language model, per-state GMM
//! acoustic model and hybrid DNN acoustic model — from a text corpus, using
//! synthesized speech (see [`crate::synth`]) with ground-truth alignments.
//! [`AsrSystem::recognize`] runs the front-end, acoustic scoring and Viterbi
//! search, reporting per-stage timing so the end-to-end pipeline can
//! reproduce the paper's ASR cycle breakdown (Figure 9: scoring dominates).

use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dnn::{Dnn, DnnTrainConfig};
use crate::features::{Frontend, FEATURE_DIM, FRAME_HOP, FRAME_LEN};
use crate::gmm::Gmm;
use crate::hmm::{AcousticScorer, Decoder, DecoderConfig, DnnScorer, GmmScorer, WindowScorer};
use crate::lexicon::{Lexicon, NUM_STATES, STATES_PER_PHONE};
use crate::lm::BigramLm;
use crate::synth::{SynthConfig, Synthesizer, Utterance};

/// Which acoustic model scores emissions (paper: GMM/HMM vs DNN/HMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcousticModelKind {
    /// Gaussian mixture scoring (CMU Sphinx style).
    Gmm,
    /// Hybrid deep-neural-network scoring (Kaldi / RWTH RASR style).
    Dnn,
}

impl std::fmt::Display for AcousticModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcousticModelKind::Gmm => f.write_str("GMM"),
            AcousticModelKind::Dnn => f.write_str("DNN"),
        }
    }
}

/// How acoustic scores are produced for the Viterbi search.
///
/// Both modes return bit-identical hypotheses and log-scores; `Eager` is
/// retained as the exact reference mode and for callers that want the full
/// score matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScoringMode {
    /// Score the whole `frames x states` matrix up front.
    Eager,
    /// Score `(frame, state)` cells on demand as the beam search reaches
    /// them (GMM: per-state memoization; DNN: frame-blocked GEMM batches).
    #[default]
    Lazy,
}

/// Training hyper-parameters for [`AsrSystem::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsrTrainConfig {
    /// How many times each vocabulary word is synthesized for training.
    pub reps: usize,
    /// GMM mixture components per tied state.
    pub gmm_components: usize,
    /// EM iterations after k-means initialization.
    pub em_iters: usize,
    /// Hidden layer width of the DNN.
    pub dnn_hidden: usize,
    /// DNN training epochs.
    pub dnn_epochs: usize,
    /// Cap on labeled frames used for DNN training.
    pub dnn_frame_cap: usize,
    /// Context frames on each side for the DNN input window.
    pub dnn_context: usize,
}

impl Default for AsrTrainConfig {
    fn default() -> Self {
        Self {
            reps: 4,
            gmm_components: 8,
            em_iters: 2,
            dnn_hidden: 96,
            dnn_epochs: 6,
            dnn_frame_cap: 12_000,
            dnn_context: 1,
        }
    }
}

/// Per-stage timing of one recognition call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AsrTiming {
    /// MFCC front-end time.
    pub feature_extraction: Duration,
    /// Acoustic scoring time (GMM or DNN — the paper's dominant component).
    pub scoring: Duration,
    /// Viterbi search time (HMM).
    pub search: Duration,
    /// Total recognition wall-clock.
    pub total: Duration,
}

/// The output of a recognition call.
#[derive(Debug, Clone, PartialEq)]
pub struct AsrOutput {
    /// Recognized text (space-joined normalized words).
    pub text: String,
    /// Per-stage timing.
    pub timing: AsrTiming,
    /// Number of acoustic frames processed.
    pub frames: usize,
    /// Search effort (tokens expanded).
    pub tokens_expanded: usize,
    /// Confidence in `[0, 1]` from the Viterbi margin (1.0 when no
    /// competing hypothesis survived).
    pub confidence: f32,
}

/// A trained speech recognizer with both GMM and DNN acoustic models.
#[derive(Debug, Clone)]
pub struct AsrSystem {
    frontend: Frontend,
    lexicon: Lexicon,
    lm: BigramLm,
    decoder: Decoder,
    gmm: GmmScorer,
    dnn: DnnScorer,
}

impl AsrSystem {
    /// Trains all models from a closed-vocabulary text corpus.
    ///
    /// # Panics
    ///
    /// Panics if `texts` is empty or yields an empty vocabulary.
    pub fn train(texts: &[&str], seed: u64, config: AsrTrainConfig) -> Self {
        assert!(!texts.is_empty(), "training corpus must be non-empty");
        let lexicon = Lexicon::from_texts(texts.iter().copied());
        assert!(!lexicon.is_empty(), "no pronounceable vocabulary");
        let lm = BigramLm::train(texts.iter().copied(), &lexicon);
        let frontend = Frontend::default();

        // Synthesize isolated-word training data with known alignments.
        let mut synth = Synthesizer::new(seed, SynthConfig::default());
        let mut state_frames: Vec<Vec<Vec<f32>>> = vec![Vec::new(); NUM_STATES];
        let mut labeled: Vec<(Vec<f32>, usize)> = Vec::new();
        for (_, word, _) in lexicon.iter() {
            for _ in 0..config.reps {
                let utt = synth.say(word);
                let feats = frontend.extract(&utt.samples);
                for (t, feat) in feats.iter().enumerate() {
                    if let Some(state) = frame_state(&utt, t) {
                        state_frames[state].push(feat.clone());
                    }
                }
                // DNN training examples need context windows; build below
                // from the same utterances to keep labels aligned.
                let windows = build_context_examples(&utt, &feats, config.dnn_context);
                labeled.extend(windows);
            }
        }

        // GMM per tied state, with a global fallback for unseen states.
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x517a_11ce);
        let all_frames: Vec<Vec<f32>> = state_frames.iter().flatten().cloned().collect();
        assert!(!all_frames.is_empty(), "no training frames produced");
        let global = Gmm::fit(&all_frames, 1, 1, &mut rng);
        let gmms: Vec<Gmm> = state_frames
            .iter()
            .map(|frames| {
                if frames.len() >= 16 {
                    // Cap mixture density by available data (8 frames per
                    // component keeps the EM fit stable).
                    let comps = config.gmm_components.min(frames.len() / 8).max(1);
                    Gmm::fit(frames, comps, config.em_iters, &mut rng)
                } else if frames.len() >= 2 {
                    Gmm::fit(frames, 1, 1, &mut rng)
                } else {
                    global.clone()
                }
            })
            .collect();
        let gmm = GmmScorer::new(gmms);

        // DNN on (context window, state) pairs.
        let mut priors = vec![1.0f32; NUM_STATES]; // add-one smoothing
        for (_, s) in &labeled {
            priors[*s] += 1.0;
        }
        if labeled.len() > config.dnn_frame_cap {
            // Deterministic stride subsampling preserves class balance.
            let stride = labeled.len() / config.dnn_frame_cap + 1;
            labeled = labeled
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % stride == 0)
                .map(|(_, x)| x)
                .collect();
        }
        let input_dim = FEATURE_DIM * (2 * config.dnn_context + 1);
        let mut dnn = Dnn::new(&[input_dim, config.dnn_hidden, NUM_STATES], &mut rng);
        dnn.train(
            &labeled,
            DnnTrainConfig {
                epochs: config.dnn_epochs,
                learning_rate: 0.05,
                batch_size: 32,
            },
            &mut rng,
        );
        let dnn = DnnScorer::new(dnn, &priors, config.dnn_context);

        let decoder = Decoder::new(&lexicon, DecoderConfig::default());
        Self {
            frontend,
            lexicon,
            lm,
            decoder,
            gmm,
            dnn,
        }
    }

    /// The pronunciation lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The language model.
    pub fn lm(&self) -> &BigramLm {
        &self.lm
    }

    /// The GMM acoustic scorer.
    pub fn gmm_scorer(&self) -> &GmmScorer {
        &self.gmm
    }

    /// The DNN acoustic scorer.
    pub fn dnn_scorer(&self) -> &DnnScorer {
        &self.dnn
    }

    /// The MFCC front-end.
    pub fn frontend(&self) -> &Frontend {
        &self.frontend
    }

    /// The Viterbi decoder (for N-best decoding and rescoring).
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Applies a multicore execution policy to both acoustic scorers.
    ///
    /// Scoring parallelizes over frames; output is bit-identical to the
    /// serial path at every thread count and strategy.
    pub fn set_exec_policy(&mut self, policy: sirius_par::ExecPolicy) {
        self.gmm.set_policy(policy);
        self.dnn.set_policy(policy);
    }

    /// Serializes every trained model to a self-contained byte buffer
    /// (lexicon, language model, GMM and DNN acoustic models). The decoder
    /// graph and MFCC front-end are reconstructed on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = sirius_codec::Encoder::new();
        e.tag("sirius_asr_v1");
        self.lexicon.encode(&mut e);
        self.lm.encode(&mut e);
        self.gmm.encode(&mut e);
        self.dnn.encode(&mut e);
        e.into_bytes()
    }

    /// Restores a system saved with [`AsrSystem::to_bytes`].
    ///
    /// # Errors
    ///
    /// Fails on malformed, truncated or version-mismatched bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sirius_codec::DecodeError> {
        let mut d = sirius_codec::Decoder::new(bytes);
        d.tag("sirius_asr_v1")?;
        let lexicon = Lexicon::decode(&mut d)?;
        let lm = BigramLm::decode(&mut d)?;
        let gmm = GmmScorer::decode(&mut d)?;
        let dnn = DnnScorer::decode(&mut d)?;
        d.finish()?;
        if lm.vocab_size() != lexicon.len() {
            return Err(sirius_codec::DecodeError {
                message: "language model vocabulary does not match lexicon".into(),
                offset: 0,
            });
        }
        let decoder = Decoder::new(&lexicon, DecoderConfig::default());
        Ok(Self {
            frontend: Frontend::default(),
            lexicon,
            lm,
            decoder,
            gmm,
            dnn,
        })
    }

    /// Recognizes audio with the selected acoustic model, using the default
    /// lazy scoring mode (see [`ScoringMode`]).
    pub fn recognize(&self, samples: &[f32], kind: AcousticModelKind) -> AsrOutput {
        self.recognize_with_mode(samples, kind, ScoringMode::default())
    }

    /// Recognizes audio with an explicit [`ScoringMode`]. Both modes yield
    /// the same text and scores; they differ only in how much acoustic
    /// scoring work the decode performs.
    pub fn recognize_with_mode(
        &self,
        samples: &[f32],
        kind: AcousticModelKind,
        mode: ScoringMode,
    ) -> AsrOutput {
        let t_total = Instant::now();
        let t = Instant::now();
        let frames = self.frontend.extract(samples);
        let feature_extraction = t.elapsed();

        let (decoded, scoring, search) = match mode {
            ScoringMode::Eager => {
                let t = Instant::now();
                let emis = match kind {
                    AcousticModelKind::Gmm => self.gmm.score_utterance(&frames),
                    AcousticModelKind::Dnn => self.dnn.score_utterance(&frames),
                };
                let scoring = t.elapsed();
                let t = Instant::now();
                let decoded = self.decoder.decode_scores(&emis, &self.lm, &self.lexicon);
                (decoded, scoring, t.elapsed())
            }
            ScoringMode::Lazy => {
                // Scoring happens inside the decode; the providers time
                // their own model evaluations so the paper's stage
                // breakdown (Figure 9) stays meaningful.
                let t = Instant::now();
                let (decoded, scoring) = match kind {
                    AcousticModelKind::Gmm => {
                        let mut scores = self.gmm.lazy_scores(&frames);
                        let decoded =
                            self.decoder
                                .decode_lazy(&mut scores, &self.lm, &self.lexicon);
                        (decoded, scores.compute_time())
                    }
                    AcousticModelKind::Dnn => {
                        let mut scores = self.dnn.lazy_scores(&frames);
                        let decoded =
                            self.decoder
                                .decode_lazy(&mut scores, &self.lm, &self.lexicon);
                        (decoded, scores.compute_time())
                    }
                };
                let search = t.elapsed().saturating_sub(scoring);
                (decoded, scoring, search)
            }
        };

        let num_frames = frames.len();
        let (text, tokens_expanded, confidence) = match decoded {
            Some(r) => (
                r.words.join(" "),
                r.tokens_expanded,
                r.confidence(num_frames),
            ),
            None => (String::new(), 0, 0.0),
        };
        AsrOutput {
            text,
            timing: AsrTiming {
                feature_extraction,
                scoring,
                search,
                total: t_total.elapsed(),
            },
            frames: frames.len(),
            tokens_expanded,
            confidence,
        }
    }

    /// Starts a streaming recognition session with the selected acoustic
    /// model (see [`crate::streaming::StreamingRecognizer`]). Feeding the
    /// same audio chunk by chunk and finishing yields output bit-identical
    /// to [`AsrSystem::recognize`] over the concatenated samples.
    pub fn streaming(&self, kind: AcousticModelKind) -> crate::streaming::StreamingRecognizer<'_> {
        crate::streaming::StreamingRecognizer::new(self, kind)
    }

    /// Starts a streaming DNN recognition session whose block GEMMs are
    /// delegated to `remote` (the serving layer's cross-query batch
    /// collector), bit-identical to
    /// [`AsrSystem::recognize_with_window_scorer`].
    pub fn streaming_with_window_scorer<'a>(
        &'a self,
        remote: &'a dyn WindowScorer,
    ) -> crate::streaming::StreamingRecognizer<'a> {
        crate::streaming::StreamingRecognizer::with_remote(self, remote)
    }

    /// Recognizes audio with the DNN acoustic model, delegating the block
    /// GEMMs to `remote` — the hook a serving layer uses to coalesce frame
    /// blocks from several in-flight queries into one forward pass.
    ///
    /// For any correct [`WindowScorer`] this is bit-identical to
    /// `recognize(samples, AcousticModelKind::Dnn)`: the decoder visits the
    /// same frames in the same order, the blocks partition the utterance
    /// identically, and scoring is row-independent (see [`WindowScorer`]).
    /// The reported `scoring` time is the remote scoring *latency* (it
    /// includes any batch-formation wait), so `search` stays the decode
    /// time net of scoring, as in the local path.
    pub fn recognize_with_window_scorer(
        &self,
        samples: &[f32],
        remote: &dyn WindowScorer,
    ) -> AsrOutput {
        let t_total = Instant::now();
        let t = Instant::now();
        let frames = self.frontend.extract(samples);
        let feature_extraction = t.elapsed();

        let t = Instant::now();
        let mut scores = self.dnn.batched_scores(&frames, remote);
        let decoded = self
            .decoder
            .decode_lazy(&mut scores, &self.lm, &self.lexicon);
        let scoring = scores.compute_time();
        let search = t.elapsed().saturating_sub(scoring);

        let num_frames = frames.len();
        let (text, tokens_expanded, confidence) = match decoded {
            Some(r) => (
                r.words.join(" "),
                r.tokens_expanded,
                r.confidence(num_frames),
            ),
            None => (String::new(), 0, 0.0),
        };
        AsrOutput {
            text,
            timing: AsrTiming {
                feature_extraction,
                scoring,
                search,
                total: t_total.elapsed(),
            },
            frames: num_frames,
            tokens_expanded,
            confidence,
        }
    }
}

/// Maps an acoustic frame index to its tied HMM state using the utterance's
/// ground-truth alignment. Returns `None` for frames outside any segment.
fn frame_state(utt: &Utterance, t: usize) -> Option<usize> {
    let center = t * FRAME_HOP + FRAME_LEN / 2;
    let seg = utt
        .alignment
        .iter()
        .find(|s| center >= s.start && center < s.end)?;
    let pos = (center - seg.start) as f32 / (seg.end - seg.start) as f32;
    let sub = ((pos * STATES_PER_PHONE as f32) as usize).min(STATES_PER_PHONE - 1);
    Some(seg.phone.first_state() + sub)
}

fn build_context_examples(
    utt: &Utterance,
    feats: &[Vec<f32>],
    context: usize,
) -> Vec<(Vec<f32>, usize)> {
    (0..feats.len())
        .filter_map(|t| {
            frame_state(utt, t).map(|s| (DnnScorer::context_window(feats, t, context), s))
        })
        .collect()
}

/// Word accuracy between a reference and a hypothesis transcript
/// (1 − word error rate, floored at zero), computed via edit distance.
pub fn word_accuracy(reference: &str, hypothesis: &str) -> f64 {
    let r: Vec<&str> = reference.split_whitespace().collect();
    let h: Vec<&str> = hypothesis.split_whitespace().collect();
    if r.is_empty() {
        return if h.is_empty() { 1.0 } else { 0.0 };
    }
    let mut dp = vec![vec![0usize; h.len() + 1]; r.len() + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=h.len() {
        dp[0][j] = j;
    }
    for i in 1..=r.len() {
        for j in 1..=h.len() {
            let sub = dp[i - 1][j - 1] + usize::from(r[i - 1] != h[j - 1]);
            dp[i][j] = sub.min(dp[i - 1][j] + 1).min(dp[i][j - 1] + 1);
        }
    }
    let wer = dp[r.len()][h.len()] as f64 / r.len() as f64;
    (1.0 - wer).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: [&str; 6] = [
        "set my alarm",
        "call me a cab",
        "play some jazz",
        "go home now",
        "stop the music",
        "what time is it",
    ];

    fn system() -> AsrSystem {
        AsrSystem::train(&super::tests::CORPUS, 42, AsrTrainConfig::default())
    }

    #[test]
    fn gmm_recognizes_heldout_utterances() {
        let asr = system();
        let mut synth = Synthesizer::new(777, SynthConfig::default());
        let mut total_acc = 0.0;
        for text in CORPUS {
            let utt = synth.say(text);
            let out = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
            total_acc += word_accuracy(&utt.words.join(" "), &out.text);
        }
        let avg = total_acc / CORPUS.len() as f64;
        assert!(avg > 0.9, "GMM held-out word accuracy {avg}");
    }

    #[test]
    fn dnn_recognizes_heldout_utterances() {
        let asr = system();
        let mut synth = Synthesizer::new(778, SynthConfig::default());
        let mut total_acc = 0.0;
        for text in CORPUS {
            let utt = synth.say(text);
            let out = asr.recognize(&utt.samples, AcousticModelKind::Dnn);
            total_acc += word_accuracy(&utt.words.join(" "), &out.text);
        }
        let avg = total_acc / CORPUS.len() as f64;
        assert!(avg > 0.85, "DNN held-out word accuracy {avg}");
    }

    #[test]
    fn timing_is_populated_and_scoring_dominated() {
        let asr = system();
        let mut synth = Synthesizer::new(779, SynthConfig::default());
        let utt = synth.say("set my alarm");
        let out = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        assert!(out.timing.total >= out.timing.scoring);
        assert!(out.frames > 0);
        assert!(out.timing.scoring > Duration::ZERO);
        assert!(out.timing.search > Duration::ZERO);
    }

    #[test]
    fn word_accuracy_metric() {
        assert_eq!(word_accuracy("a b c", "a b c"), 1.0);
        assert_eq!(word_accuracy("a b c", "a x c"), 1.0 - 1.0 / 3.0);
        assert_eq!(word_accuracy("", ""), 1.0);
        assert_eq!(word_accuracy("a", ""), 0.0);
        assert!(word_accuracy("a", "a b c d") == 0.0);
    }

    #[test]
    fn empty_audio_produces_empty_text() {
        let asr = system();
        let out = asr.recognize(&[], AcousticModelKind::Gmm);
        assert!(out.text.is_empty());
        assert_eq!(out.frames, 0);
    }
}

#[cfg(test)]
mod confidence_tests {
    use super::*;

    #[test]
    fn confidence_is_in_unit_range_and_deterministic() {
        let asr = AsrSystem::train(
            &["go home now", "stop the music"],
            3,
            AsrTrainConfig::default(),
        );
        let utt = Synthesizer::new(808, SynthConfig::default()).say("go home now");
        let a = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        let b = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        assert!((0.0..=1.0).contains(&a.confidence), "{}", a.confidence);
        assert_eq!(a.confidence, b.confidence);
        assert_eq!(a.text, "go home now");
    }

    #[test]
    fn empty_audio_has_zero_confidence() {
        let asr = AsrSystem::train(&["yes", "no"], 4, AsrTrainConfig::default());
        let out = asr.recognize(&[], AcousticModelKind::Gmm);
        assert_eq!(out.confidence, 0.0);
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;

    #[test]
    fn round_trip_preserves_recognition() {
        let corpus = ["open the door", "close the door"];
        let asr = AsrSystem::train(&corpus, 6, AsrTrainConfig::default());
        let bytes = asr.to_bytes();
        let restored = AsrSystem::from_bytes(&bytes).expect("decode");
        let utt = Synthesizer::new(606, SynthConfig::default()).say("open the door");
        let a = asr.recognize(&utt.samples, AcousticModelKind::Gmm);
        let b = restored.recognize(&utt.samples, AcousticModelKind::Gmm);
        assert_eq!(a.text, b.text);
        let a_dnn = asr.recognize(&utt.samples, AcousticModelKind::Dnn);
        let b_dnn = restored.recognize(&utt.samples, AcousticModelKind::Dnn);
        assert_eq!(a_dnn.text, b_dnn.text);
        assert_eq!(restored.lexicon().len(), asr.lexicon().len());
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        let asr = AsrSystem::train(&["hi there"], 7, AsrTrainConfig::default());
        let mut bytes = asr.to_bytes();
        // Flip a tag byte near the front.
        bytes[6] ^= 0xff;
        assert!(AsrSystem::from_bytes(&bytes).is_err());
        // Truncation is also rejected.
        let half = &bytes[..bytes.len() / 2];
        assert!(AsrSystem::from_bytes(half).is_err());
        assert!(AsrSystem::from_bytes(&[]).is_err());
    }
}
