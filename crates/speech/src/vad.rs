//! Energy-based voice activity detection (VAD).
//!
//! Production IPA front-ends trim silence before shipping audio to the
//! datacenter (the paper notes compressed recordings are sent for
//! recognition) — both to cut upload bytes and to spare the ASR decoder
//! frames that carry no speech. This module implements the classic
//! noise-floor-tracking energy detector: frame energies are compared to an
//! adaptive floor, and speech segments are extracted with hangover
//! smoothing.

use crate::features::{FRAME_HOP, FRAME_LEN};

/// VAD tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VadConfig {
    /// Energy must exceed `floor * threshold_ratio` to count as speech.
    pub threshold_ratio: f32,
    /// Frames of silence tolerated inside a speech segment (hangover).
    pub hangover_frames: usize,
    /// Minimum speech segment length in frames; shorter bursts are dropped.
    pub min_speech_frames: usize,
    /// Frames of margin kept around each detected segment.
    pub margin_frames: usize,
}

impl Default for VadConfig {
    fn default() -> Self {
        Self {
            threshold_ratio: 4.0,
            hangover_frames: 8,
            min_speech_frames: 3,
            margin_frames: 4,
        }
    }
}

/// A detected speech segment, in sample indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeechSegment {
    /// First sample (inclusive).
    pub start: usize,
    /// Last sample (exclusive).
    pub end: usize,
}

/// Per-frame energies of the audio (mean squared amplitude per frame).
pub fn frame_energies(samples: &[f32]) -> Vec<f32> {
    if samples.len() < FRAME_LEN {
        return Vec::new();
    }
    let n = (samples.len() - FRAME_LEN) / FRAME_HOP + 1;
    (0..n)
        .map(|f| {
            let s = &samples[f * FRAME_HOP..f * FRAME_HOP + FRAME_LEN];
            s.iter().map(|x| x * x).sum::<f32>() / FRAME_LEN as f32
        })
        .collect()
}

/// Detects speech segments in the audio.
///
/// The noise floor is estimated as the 20th-percentile frame energy, which
/// is robust as long as some silence exists; pure-speech audio degrades to
/// a single full-length segment.
pub fn detect_segments(samples: &[f32], config: &VadConfig) -> Vec<SpeechSegment> {
    let energies = frame_energies(samples);
    if energies.is_empty() {
        return Vec::new();
    }
    let mut sorted = energies.clone();
    sorted.sort_by(f32::total_cmp);
    // Noise floor: the 20th-percentile energy, capped relative to the loud
    // end of the clip so pure-speech audio (no silence to estimate from)
    // still yields a usable threshold.
    let p20 = sorted[sorted.len() / 5];
    let p90 = sorted[sorted.len() * 9 / 10];
    let floor = p20.min(p90 / 50.0).max(1e-8);
    let threshold = floor * config.threshold_ratio;

    let mut segments = Vec::new();
    let mut start: Option<usize> = None;
    let mut silence_run = 0usize;
    for (f, &e) in energies.iter().enumerate() {
        if e > threshold {
            if start.is_none() {
                start = Some(f);
            }
            silence_run = 0;
        } else if let Some(s) = start {
            silence_run += 1;
            if silence_run > config.hangover_frames {
                let end_frame = f - silence_run + 1;
                if end_frame - s >= config.min_speech_frames {
                    segments.push(frames_to_segment(s, end_frame, samples.len(), config));
                }
                start = None;
                silence_run = 0;
            }
        }
    }
    if let Some(s) = start {
        let end_frame = energies.len();
        if end_frame - s >= config.min_speech_frames {
            segments.push(frames_to_segment(s, end_frame, samples.len(), config));
        }
    }
    segments
}

fn frames_to_segment(
    start_frame: usize,
    end_frame: usize,
    total_samples: usize,
    config: &VadConfig,
) -> SpeechSegment {
    let start = start_frame.saturating_sub(config.margin_frames) * FRAME_HOP;
    let end_frame = end_frame + config.margin_frames;
    SpeechSegment {
        start,
        end: (end_frame * FRAME_HOP + FRAME_LEN).min(total_samples),
    }
}

/// Returns the audio with leading and trailing silence removed (the span
/// from the first detected segment's start to the last one's end). Returns
/// the input unchanged when no speech is detected.
pub fn trim_silence<'a>(samples: &'a [f32], config: &VadConfig) -> &'a [f32] {
    let segments = detect_segments(samples, config);
    match (segments.first(), segments.last()) {
        (Some(first), Some(last)) => &samples[first.start..last.end],
        _ => samples,
    }
}

/// Fraction of the audio detected as speech.
pub fn speech_fraction(samples: &[f32], config: &VadConfig) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let speech: usize = detect_segments(samples, config)
        .iter()
        .map(|s| s.end - s.start)
        .sum();
    speech as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig};
    use crate::features::SAMPLE_RATE;
    use crate::lexicon::SIL;
    use crate::synth::{SynthConfig, Synthesizer};

    fn padded_utterance() -> (Vec<f32>, usize, usize) {
        // An utterance with a second of artificial silence on both sides.
        let utt = Synthesizer::new(51, SynthConfig::default()).say("hello world");
        let pad = vec![0.0f32; SAMPLE_RATE];
        let mut samples = pad.clone();
        let speech_start = samples.len();
        samples.extend_from_slice(&utt.samples);
        let speech_end = samples.len();
        samples.extend_from_slice(&pad);
        (samples, speech_start, speech_end)
    }

    #[test]
    fn trims_leading_and_trailing_silence() {
        let (samples, speech_start, speech_end) = padded_utterance();
        let trimmed = trim_silence(&samples, &VadConfig::default());
        assert!(trimmed.len() < samples.len());
        // Trimmed span must cover the true speech region within one frame.
        let tolerance = FRAME_LEN + FRAME_HOP;
        let offset = samples.len() - trimmed.len();
        let _ = offset;
        assert!(
            trimmed.len() + 2 * tolerance >= speech_end - speech_start,
            "trimmed {} vs speech {}",
            trimmed.len(),
            speech_end - speech_start
        );
    }

    #[test]
    fn detects_word_level_segments() {
        let utt = Synthesizer::new(52, SynthConfig::default()).say("one two three");
        let segments = detect_segments(&utt.samples, &VadConfig::default());
        assert!(!segments.is_empty());
        // Segment boundaries must be ordered and non-overlapping.
        for pair in segments.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
        // The detected speech must overlap every non-silence alignment span.
        let speech_samples: usize = segments.iter().map(|s| s.end - s.start).sum();
        let true_speech: usize = utt
            .alignment
            .iter()
            .filter(|a| a.phone != SIL)
            .map(|a| a.end - a.start)
            .sum();
        assert!(
            speech_samples * 10 >= true_speech * 7,
            "detected {speech_samples} of {true_speech} speech samples"
        );
    }

    #[test]
    fn silence_only_audio_has_no_segments() {
        let silence = vec![0.0f32; SAMPLE_RATE];
        assert!(detect_segments(&silence, &VadConfig::default()).is_empty());
        assert_eq!(speech_fraction(&silence, &VadConfig::default()), 0.0);
        // Trim returns input unchanged.
        assert_eq!(
            trim_silence(&silence, &VadConfig::default()).len(),
            silence.len()
        );
    }

    #[test]
    fn empty_and_short_audio_handled() {
        assert!(frame_energies(&[]).is_empty());
        assert!(detect_segments(&[0.1; 10], &VadConfig::default()).is_empty());
        assert_eq!(speech_fraction(&[], &VadConfig::default()), 0.0);
    }

    #[test]
    fn recognition_survives_vad_trimming() {
        let asr = AsrSystem::train(&["turn lights on"], 8, AsrTrainConfig::default());
        let utt = Synthesizer::new(53, SynthConfig::default()).say("turn lights on");
        // Pad with noise-floor silence (like a real microphone), not pure
        // digital zeros.
        let pad: Vec<f32> = (0..SAMPLE_RATE / 2)
            .map(|i| ((i as f32 * 12.9898).sin() * 43758.547).fract() * 0.01)
            .collect();
        let mut padded = pad.clone();
        padded.extend_from_slice(&utt.samples);
        padded.extend_from_slice(&pad);
        let trimmed = trim_silence(&padded, &VadConfig::default());
        let out = asr.recognize(trimmed, AcousticModelKind::Gmm);
        assert_eq!(out.text, "turn lights on");
        // VAD reduces the decoded frame count substantially.
        let full = asr.recognize(&padded, AcousticModelKind::Gmm);
        assert!(out.frames < full.frames);
    }
}
