//! Equivalence and stability gates for streaming recognition.
//!
//! 1. **Bit-identity**: the streaming path's final hypothesis must equal
//!    batch recognition exactly — same words, same score/confidence bits,
//!    same search effort — across beam widths, both acoustic models,
//!    several chunk sizes and thread counts. The streaming decoder replays
//!    exactly the batch transitions, so any divergence is a bug, not noise.
//! 2. **Stable prefixes**: the committed prefix must never be retracted as
//!    chunks arrive, and must end as a prefix of the final hypothesis —
//!    checked across 100 seeded utterances (the property the server's
//!    speculative pipelining is built on).

use sirius_par::ExecPolicy;
use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig, ScoringMode};
use sirius_speech::hmm::{AcousticScorer, Decoder, DecoderConfig, EagerScores};
use sirius_speech::lexicon::Lexicon;
use sirius_speech::synth::{SynthConfig, Synthesizer};
use sirius_speech::{StreamingDecoder, StreamingError};

const CORPUS: [&str; 4] = [
    "set my alarm",
    "call me a cab",
    "go home now",
    "stop the music",
];

fn system() -> AsrSystem {
    AsrSystem::train(&CORPUS, 42, AsrTrainConfig::default())
}

/// Decoder-level gate: a [`StreamingDecoder`] fed emission prefixes in
/// uneven chunks must finish bit-identical to `decode_lazy` over the full
/// matrix — for both scorers and several beam widths — and its committed
/// prefix must only ever extend.
#[test]
fn streaming_decoder_matches_batch_across_beams_and_models() {
    let asr = system();
    let mut synth = Synthesizer::new(321, SynthConfig::default());
    let utts: Vec<Vec<f32>> = CORPUS.iter().map(|t| synth.say(t).samples).collect();
    for beam in [10.0f32, 60.0, 2500.0] {
        let lexicon = Lexicon::from_texts(CORPUS);
        let decoder = Decoder::new(
            &lexicon,
            DecoderConfig {
                beam,
                ..DecoderConfig::default()
            },
        );
        for samples in &utts {
            let frames = asr.frontend().extract(samples);
            for model in [AcousticModelKind::Gmm, AcousticModelKind::Dnn] {
                let emis = match model {
                    AcousticModelKind::Gmm => asr.gmm_scorer().score_utterance(&frames),
                    AcousticModelKind::Dnn => asr.dnn_scorer().score_utterance(&frames),
                };
                let mut lazy = EagerScores::new(&emis);
                let batch = decoder.decode_lazy(&mut lazy, asr.lm(), asr.lexicon());
                for step in [1usize, 3, 17] {
                    let mut sdec = StreamingDecoder::new(&decoder, asr.lm());
                    let mut prev: Vec<u32> = Vec::new();
                    let mut horizon = 0usize;
                    while horizon < emis.len() {
                        horizon = (horizon + step).min(emis.len());
                        let mut scores = EagerScores::new(&emis[..horizon]);
                        sdec.advance(&mut scores, horizon);
                        let committed = sdec.committed().to_vec();
                        assert!(
                            committed.starts_with(&prev),
                            "retraction at beam={beam} {model} step={step}"
                        );
                        prev = committed;
                    }
                    let streamed = sdec.finish(&lexicon);
                    match (&batch, &streamed) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.words, b.words, "words beam={beam} {model} step={step}");
                            assert_eq!(
                                a.score.to_bits(),
                                b.score.to_bits(),
                                "score beam={beam} {model} step={step}"
                            );
                            assert_eq!(a.tokens_expanded, b.tokens_expanded);
                            assert_eq!(a.complete, b.complete);
                            // The committed prefix survived to the end as a
                            // prefix of the final backtrace.
                            let final_ids: Vec<u32> = b
                                .words
                                .iter()
                                .map(|w| lexicon.word_index(w).unwrap() as u32)
                                .collect();
                            assert!(
                                final_ids.starts_with(&prev),
                                "committed not a prefix, beam={beam} {model}"
                            );
                        }
                        (a, b) => assert_eq!(a.is_none(), b.is_none(), "beam={beam} {model}"),
                    }
                }
            }
        }
    }
}

/// End-to-end gate: [`AsrSystem::streaming`] must finish bit-identical to
/// `recognize_with_mode` (lazy scoring) for every corpus utterance, both
/// acoustic models, several chunk sizes and thread counts {1, 4}.
#[test]
fn streaming_recognizer_matches_batch_recognition() {
    let mut asr = system();
    let mut synth = Synthesizer::new(654, SynthConfig::default());
    let utts: Vec<Vec<f32>> = CORPUS.iter().map(|t| synth.say(t).samples).collect();
    for threads in [1usize, 4] {
        asr.set_exec_policy(ExecPolicy::with_threads(threads));
        for samples in &utts {
            for kind in [AcousticModelKind::Gmm, AcousticModelKind::Dnn] {
                let batch = asr.recognize_with_mode(samples, kind, ScoringMode::Lazy);
                for chunk in [160usize, 1600, 7937] {
                    let mut rec = asr.streaming(kind);
                    for c in samples.chunks(chunk) {
                        rec.push_chunk(c).expect("clean audio");
                    }
                    let committed = rec.committed_text();
                    let out = rec.finish().expect("non-empty utterance");
                    assert_eq!(out.text, batch.text, "{kind} chunk={chunk} x{threads}");
                    assert_eq!(out.frames, batch.frames);
                    assert_eq!(out.tokens_expanded, batch.tokens_expanded);
                    assert_eq!(
                        out.confidence.to_bits(),
                        batch.confidence.to_bits(),
                        "{kind} chunk={chunk} x{threads}"
                    );
                    assert!(
                        out.text.starts_with(&committed),
                        "committed {committed:?} not a prefix of {:?}",
                        out.text
                    );
                }
            }
        }
    }
}

/// The remote-scorer streaming path (the seam the serving layer batches
/// across queries at) must be bit-identical to both the local streaming
/// DNN decode and batch `recognize_with_window_scorer`.
#[test]
fn streaming_with_window_scorer_matches_batch() {
    let asr = system();
    let mut synth = Synthesizer::new(444, SynthConfig::default());
    for text in CORPUS {
        let utt = synth.say(text);
        let local = asr.recognize(&utt.samples, AcousticModelKind::Dnn);
        let batch_remote = asr.recognize_with_window_scorer(&utt.samples, asr.dnn_scorer());
        let mut rec = asr.streaming_with_window_scorer(asr.dnn_scorer());
        for c in utt.samples.chunks(800) {
            rec.push_chunk(c).expect("clean audio");
        }
        let out = rec.finish().expect("non-empty utterance");
        assert_eq!(out.text, local.text, "{text}");
        assert_eq!(out.text, batch_remote.text);
        assert_eq!(out.confidence.to_bits(), local.confidence.to_bits());
        assert_eq!(out.tokens_expanded, local.tokens_expanded);
        assert_eq!(out.frames, local.frames);
    }
}

/// Property: across 100 seeded utterances the committed prefix is never
/// retracted at any chunk boundary and always ends as a prefix of the
/// final hypothesis.
#[test]
fn committed_prefix_is_never_retracted_across_seeded_utterances() {
    let asr = system();
    for seed in 0u64..100 {
        let text = CORPUS[(seed % CORPUS.len() as u64) as usize];
        let utt = Synthesizer::new(1000 + seed, SynthConfig::default()).say(text);
        // Vary the chunk size with the seed so boundaries land everywhere.
        let chunk = 160 + 97 * (seed as usize % 23);
        let mut rec = asr.streaming(AcousticModelKind::Gmm);
        let mut prev: Vec<String> = Vec::new();
        for c in utt.samples.chunks(chunk) {
            rec.push_chunk(c).expect("clean audio");
            let committed = rec.committed().to_vec();
            assert!(
                committed.starts_with(&prev),
                "seed {seed}: retraction {prev:?} -> {committed:?}"
            );
            prev = committed;
        }
        let out = rec.finish().expect("non-empty utterance");
        let final_words: Vec<String> = out.text.split_whitespace().map(str::to_owned).collect();
        assert!(
            final_words.starts_with(&prev),
            "seed {seed}: committed {prev:?} not a prefix of {final_words:?}"
        );
    }
}

/// Malformed streaming input surfaces as typed errors, never panics, and
/// an utterance shorter than one chunk decodes identically to batch.
#[test]
fn streaming_edge_cases_are_typed_and_batch_consistent() {
    let asr = system();

    // Empty chunk and non-finite samples: typed errors, state untouched.
    let mut rec = asr.streaming(AcousticModelKind::Gmm);
    assert_eq!(rec.push_chunk(&[]), Err(StreamingError::EmptyChunk));
    let bad = [0.0f32, f32::NAN, 0.0];
    assert_eq!(
        rec.push_chunk(&bad),
        Err(StreamingError::NonFiniteSample { index: 1 })
    );
    assert_eq!(rec.samples_ingested(), 0);

    // Zero-length tail flush: typed error.
    let rec = asr.streaming(AcousticModelKind::Gmm);
    assert_eq!(rec.finish().unwrap_err(), StreamingError::EmptyUtterance);

    // An utterance shorter than one chunk, pushed whole, matches batch.
    let utt = Synthesizer::new(77, SynthConfig::default()).say("go home now");
    for kind in [AcousticModelKind::Gmm, AcousticModelKind::Dnn] {
        let batch = asr.recognize(&utt.samples, kind);
        let mut rec = asr.streaming(kind);
        rec.push_chunk(&utt.samples).expect("whole utterance");
        let out = rec.finish().expect("non-empty utterance");
        assert_eq!(out.text, batch.text, "{kind}");
        assert_eq!(out.confidence.to_bits(), batch.confidence.to_bits());
        assert_eq!(out.tokens_expanded, batch.tokens_expanded);
    }
}
