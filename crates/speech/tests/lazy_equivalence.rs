//! Equivalence gates for the lazy beam-driven scoring path.
//!
//! The lazy decoder must produce the *same bits* as the eager reference:
//! identical 1-best word sequence and identical total log-score, for both
//! acoustic models, across beam widths and thread counts. A property-style
//! test additionally checks the lazy GMM cache never evaluates a
//! `(frame, state)` cell twice, and that narrow beams actually skip work.

use sirius_par::ExecPolicy;
use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTrainConfig, ScoringMode};
use sirius_speech::hmm::{AcousticScorer, Decoder, DecoderConfig};
use sirius_speech::lexicon::Lexicon;
use sirius_speech::synth::{SynthConfig, Synthesizer};

const CORPUS: [&str; 4] = [
    "set my alarm",
    "call me a cab",
    "go home now",
    "stop the music",
];

fn system() -> AsrSystem {
    AsrSystem::train(&CORPUS, 42, AsrTrainConfig::default())
}

/// Lazy and eager decodes must agree exactly — same words, same score bits,
/// same search effort — for both scorers, several beam widths and thread
/// counts {1, 4}.
#[test]
fn lazy_decode_is_bit_identical_to_eager() {
    let mut asr = system();
    let mut synth = Synthesizer::new(321, SynthConfig::default());
    let utts: Vec<Vec<f32>> = CORPUS.iter().map(|t| synth.say(t).samples).collect();
    for beam in [10.0f32, 60.0, 2500.0] {
        let lexicon = Lexicon::from_texts(CORPUS);
        let decoder = Decoder::new(
            &lexicon,
            DecoderConfig {
                beam,
                ..DecoderConfig::default()
            },
        );
        for threads in [1usize, 4] {
            asr.set_exec_policy(ExecPolicy::with_threads(threads));
            for samples in &utts {
                let frames = asr.frontend().extract(samples);
                // GMM: eager matrix vs lazy provider.
                let emis = asr.gmm_scorer().score_utterance(&frames);
                let eager = decoder.decode_scores(&emis, asr.lm(), asr.lexicon());
                let mut lazy_scores = asr.gmm_scorer().lazy_scores(&frames);
                let lazy = decoder.decode_lazy(&mut lazy_scores, asr.lm(), asr.lexicon());
                match (eager, lazy) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.words, b.words, "GMM words beam={beam} x{threads}");
                        assert_eq!(
                            a.score.to_bits(),
                            b.score.to_bits(),
                            "GMM score beam={beam} x{threads}"
                        );
                        assert_eq!(a.tokens_expanded, b.tokens_expanded);
                        assert_eq!(a.complete, b.complete);
                    }
                    (a, b) => assert_eq!(a.is_none(), b.is_none(), "GMM beam={beam}"),
                }
                // DNN: eager matrix vs block-batched lazy provider.
                let emis = asr.dnn_scorer().score_utterance(&frames);
                let eager = decoder.decode_scores(&emis, asr.lm(), asr.lexicon());
                let mut lazy_scores = asr.dnn_scorer().lazy_scores(&frames);
                let lazy = decoder.decode_lazy(&mut lazy_scores, asr.lm(), asr.lexicon());
                match (eager, lazy) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.words, b.words, "DNN words beam={beam} x{threads}");
                        assert_eq!(
                            a.score.to_bits(),
                            b.score.to_bits(),
                            "DNN score beam={beam} x{threads}"
                        );
                        assert_eq!(a.tokens_expanded, b.tokens_expanded);
                    }
                    (a, b) => assert_eq!(a.is_none(), b.is_none(), "DNN beam={beam}"),
                }
            }
        }
    }
}

/// The end-to-end recognize() entry points must agree between modes.
#[test]
fn recognize_modes_agree() {
    let asr = system();
    let mut synth = Synthesizer::new(654, SynthConfig::default());
    for text in CORPUS {
        let utt = synth.say(text);
        for kind in [AcousticModelKind::Gmm, AcousticModelKind::Dnn] {
            let eager = asr.recognize_with_mode(&utt.samples, kind, ScoringMode::Eager);
            let lazy = asr.recognize_with_mode(&utt.samples, kind, ScoringMode::Lazy);
            assert_eq!(eager.text, lazy.text, "{kind} {text}");
            assert_eq!(eager.tokens_expanded, lazy.tokens_expanded);
            assert_eq!(eager.confidence, lazy.confidence);
            let default = asr.recognize(&utt.samples, kind);
            assert_eq!(default.text, lazy.text);
        }
    }
}

/// The remote-scorer decode path (the seam the serving layer batches
/// across queries at) must be bit-identical to the local DNN decode — same
/// text, same confidence bits, same search effort — when the "remote" is
/// the scorer itself, and must actually route every block through it.
#[test]
fn window_scorer_decode_is_bit_identical_to_local_dnn() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use sirius_speech::WindowScorer;

    /// Delegating scorer that counts blocks and rows, standing in for a
    /// serving-layer batch collector.
    struct Counting<'a> {
        inner: &'a dyn WindowScorer,
        blocks: AtomicUsize,
        rows: AtomicUsize,
    }

    impl WindowScorer for Counting<'_> {
        fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
            self.blocks.fetch_add(1, Ordering::Relaxed);
            self.rows.fetch_add(rows, Ordering::Relaxed);
            self.inner.score_windows(x, rows)
        }
    }

    let asr = system();
    let mut synth = Synthesizer::new(444, SynthConfig::default());
    for text in CORPUS {
        let utt = synth.say(text);
        let local = asr.recognize(&utt.samples, AcousticModelKind::Dnn);

        // The scorer is its own reference WindowScorer implementation.
        let direct = asr.recognize_with_window_scorer(&utt.samples, asr.dnn_scorer());
        assert_eq!(direct.text, local.text, "{text}");
        assert_eq!(direct.confidence.to_bits(), local.confidence.to_bits());
        assert_eq!(direct.tokens_expanded, local.tokens_expanded);
        assert_eq!(direct.frames, local.frames);

        // A wrapping scorer sees every block: rows must cover the decode's
        // visited frames (blocks of <= 16, so blocks * 16 >= rows > 0).
        let counting = Counting {
            inner: asr.dnn_scorer(),
            blocks: AtomicUsize::new(0),
            rows: AtomicUsize::new(0),
        };
        let via = asr.recognize_with_window_scorer(&utt.samples, &counting);
        assert_eq!(via.text, local.text, "{text}");
        assert_eq!(via.confidence.to_bits(), local.confidence.to_bits());
        let blocks = counting.blocks.load(Ordering::Relaxed);
        let rows = counting.rows.load(Ordering::Relaxed);
        assert!(blocks > 0, "no block was delegated");
        assert!(rows > 0 && rows <= local.frames);
        assert!(blocks * 16 >= rows, "blocks {blocks} rows {rows}");
    }
}

/// Property: the memoizing cache never computes a `(frame, state)` pair
/// twice — `computed <= total_cells` and every repeated read hits the memo.
/// Seeded across several utterances and beam widths.
#[test]
fn lazy_cache_never_computes_a_cell_twice() {
    let asr = system();
    let mut synth = Synthesizer::new(987, SynthConfig::default());
    for (i, text) in CORPUS.iter().enumerate() {
        let utt = synth.say(text);
        let frames = asr.frontend().extract(&utt.samples);
        for beam in [15.0f32, 120.0, 2500.0] {
            let decoder = Decoder::new(
                asr.lexicon(),
                DecoderConfig {
                    beam,
                    ..DecoderConfig::default()
                },
            );
            let mut scores = asr.gmm_scorer().lazy_scores(&frames);
            let _ = decoder.decode_lazy(&mut scores, asr.lm(), asr.lexicon());
            let stats = scores.stats();
            // The decoder re-reads shared emissions many times per frame;
            // the cache must have evaluated each at most once. If any cell
            // were computed twice, `computed` would exceed the dense total
            // on wide beams (requested >> total_cells here).
            assert!(
                stats.computed <= stats.total_cells,
                "utt {i} beam {beam}: computed {} > cells {}",
                stats.computed,
                stats.total_cells
            );
            assert!(
                stats.requested > stats.computed,
                "utt {i} beam {beam}: memoization never hit"
            );
        }
    }
}

/// Narrow beams must evaluate strictly fewer cells than the dense matrix —
/// the lazy win the tentpole is about.
#[test]
fn narrow_beam_skips_scoring_work() {
    let asr = system();
    let utt = Synthesizer::new(55, SynthConfig::default()).say("go home now");
    let frames = asr.frontend().extract(&utt.samples);
    let decode_computed = |beam: f32| {
        let decoder = Decoder::new(
            asr.lexicon(),
            DecoderConfig {
                beam,
                ..DecoderConfig::default()
            },
        );
        let mut scores = asr.gmm_scorer().lazy_scores(&frames);
        let _ = decoder.decode_lazy(&mut scores, asr.lm(), asr.lexicon());
        scores.stats()
    };
    let narrow = decode_computed(15.0);
    let wide = decode_computed(2500.0);
    assert!(
        narrow.computed < wide.computed,
        "narrow {} !< wide {}",
        narrow.computed,
        wide.computed
    );
    assert!(
        narrow.computed < narrow.total_cells,
        "narrow beam computed the dense matrix"
    );
}
