//! Scatter-gather determinism gate: sharded cluster replicas must answer
//! **bit-identically** to the unsharded single instance, for every shard
//! count, over the full 42-query input set.
//!
//! This is the property the whole cluster refactor stands on. QA retrieval
//! shards merge under the (score desc, doc asc) total order with global
//! collection statistics injected, so merged hits equal unsharded hits by
//! construction; the IMM scatter uses the deterministic exact descriptor
//! search, whose merged best-2 equals the whole-tree answer at any shard
//! count. The remaining question — does the exact scatter agree with the
//! budgeted single-index search on real pipeline traffic — is what this
//! file measures, on all 42 queries.

use std::sync::OnceLock;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusResponse};
use sirius::{prepare_input_set, ClusterError, PreparedQuery};

fn shared() -> &'static Sirius {
    static SIRIUS: OnceLock<Sirius> = OnceLock::new();
    SIRIUS.get_or_init(|| Sirius::build(SiriusConfig::default()))
}

fn inputs() -> &'static Vec<PreparedQuery> {
    static INPUTS: OnceLock<Vec<PreparedQuery>> = OnceLock::new();
    INPUTS.get_or_init(|| prepare_input_set(shared(), 4242))
}

/// Everything externally observable about a response: transcription,
/// action/answer, and the matched venue. Timings are excluded (they are
/// wall-clock, not data).
fn payload(r: &SiriusResponse) -> (String, String, Option<String>) {
    (
        r.recognized.clone(),
        format!("{:?}", r.outcome),
        r.matched_venue.clone(),
    )
}

#[test]
fn sharded_replicas_answer_bit_identically_to_unsharded_baseline() {
    let sirius = shared();
    let queries = inputs();
    assert_eq!(queries.len(), 42, "the full input set");
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| payload(&sirius.process(&q.input())))
        .collect();

    for n in [1u32, 2, 4, 8] {
        let replicas = sirius.shard_replicas(n).expect("shard");
        assert_eq!(replicas.len(), n as usize);
        for (qi, q) in queries.iter().enumerate() {
            // Route queries round-robin so every replica serves its share.
            let replica = &replicas[qi % n as usize];
            assert_eq!(replica.shard_id(), Some(((qi % n as usize) as u32, n)));
            let got = payload(&replica.process(&q.input()));
            assert_eq!(
                got,
                baseline[qi],
                "query {qi} ({:?}) diverged on {n}-shard replica {}",
                q.spec.text,
                qi % n as usize
            );
        }
    }
}

#[test]
fn every_replica_of_a_cluster_answers_the_same() {
    // Replicas differ only in which shard they *hold*; because they all
    // scatter to the full directory, the answer must not depend on which
    // replica a query lands on. Spot-check across the query classes (VC,
    // VQ, VIQ) at N = 4.
    let sirius = shared();
    let queries = inputs();
    let replicas = sirius.shard_replicas(4).expect("shard");
    for qi in [0usize, 17, 20, 33, 41] {
        let q = &queries[qi];
        let expect = payload(&replicas[0].process(&q.input()));
        for (ri, replica) in replicas.iter().enumerate().skip(1) {
            assert_eq!(
                payload(&replica.process(&q.input())),
                expect,
                "query {qi} differs between replica 0 and replica {ri}"
            );
        }
    }
}

#[test]
fn scattered_qa_retrieval_matches_unsharded_search_bitwise() {
    // Seeded property-style check below the pipeline: for every VQ
    // question's keyword query, per-shard top-k lists merge into the exact
    // unsharded hit list — scores compared on bits, order included. The
    // corpus generator seeds duplicate/near-duplicate documents, so score
    // ties are present and the doc-id tie-break is exercised.
    let sirius = shared();
    let engine = sirius.qa().search_engine();
    let k = sirius.config().qa.top_k;
    for spec in sirius::input_set() {
        for n in [1u32, 2, 4, 8] {
            let shards: Vec<_> = (0..n).map(|i| engine.shard(i, n)).collect();
            let merged =
                sirius_search::merge_hits(shards.iter().map(|s| s.search(spec.text, k)), k);
            let global = engine.search(spec.text, k);
            assert_eq!(merged.len(), global.len(), "{:?} n={n}", spec.text);
            for (m, g) in merged.iter().zip(&global) {
                assert_eq!(m.doc, g.doc, "{:?} n={n}", spec.text);
                assert_eq!(
                    m.score.to_bits(),
                    g.score.to_bits(),
                    "{:?} n={n} doc {:?}",
                    spec.text,
                    m.doc
                );
            }
        }
    }
}

#[test]
fn scattered_imm_match_agrees_with_unsharded_match_on_query_views() {
    // Seeded loop over query views of every enrolled venue: the merged
    // exact scatter and the budgeted whole-index search must crown the
    // same venue (the quantity the pipeline consumes).
    let sirius = shared();
    let imm = sirius.imm();
    for seed in [4242u64, 777] {
        for venue in 0..sirius.venues().len() {
            let scene = sirius.venue_scene(venue);
            let view = sirius_vision::synth::random_view(&scene, seed + venue as u64 * 977);
            let features = imm.extract_query(&view);
            let direct = imm.match_image(&view);
            for n in [1u32, 2, 4, 8] {
                let partials: Vec<_> = (0..n)
                    .map(|i| imm.shard(i, n).match_partial(&features))
                    .collect();
                let merged = imm.merge_partials(&features, &partials);
                assert_eq!(
                    merged.best, direct.best,
                    "venue {venue} seed {seed} shards {n}"
                );
            }
        }
    }
}

#[test]
fn zero_shards_is_a_typed_error() {
    assert_eq!(
        shared().shard_replicas(0).unwrap_err(),
        ClusterError::InvalidShardCount { requested: 0 }
    );
}
