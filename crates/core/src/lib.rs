//! # sirius
//!
//! The end-to-end intelligent personal assistant pipeline of the Sirius
//! reproduction (Hauswald et al., ASPLOS 2015): speech and image queries in,
//! natural-language answers (or device actions) out — paper Figure 2.
//!
//! * [`taxonomy`] — the VC/VQ/VIQ query taxonomy and 42-query input set
//!   (Tables 1/2).
//! * [`classifier`] — the regex-driven query classifier (action vs question).
//! * [`pipeline`] — the [`Sirius`] orchestrator over the ASR
//!   ([`sirius_speech`]), QA ([`sirius_nlp`] + [`sirius_search`]) and IMM
//!   ([`sirius_vision`]) services, with per-stage timing.
//! * [`inputset`] — synthesized audio/images for the whole input set.
//! * [`profile`] — cycle accounting for the paper's Figures 7b/8/9.
//!
//! # Example
//!
//! Building Sirius trains every model from scratch, so the doctest uses a
//! reduced configuration:
//!
//! ```no_run
//! use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome};
//! use sirius_speech::synth::{SynthConfig, Synthesizer};
//!
//! let sirius = Sirius::build(SiriusConfig::default());
//! let utt = Synthesizer::new(7, SynthConfig::default()).say("Set my alarm for 8am");
//! let response = sirius.process(&SiriusInput { audio: utt.samples, image: None });
//! match response.outcome {
//!     SiriusOutcome::Action(a) => assert_eq!(a.action, "alarm"),
//!     SiriusOutcome::Answer(_) => panic!("commands are actions"),
//! }
//! ```

#![warn(missing_docs)]

pub mod classifier;
pub mod error;
pub mod inputset;
pub mod pipeline;
pub mod profile;
pub mod stage;
pub mod taxonomy;

pub use classifier::{DeviceAction, QueryClassifier};
pub use error::{ClusterError, SiriusError};
pub use inputset::{prepare_input_set, PreparedQuery};
pub use pipeline::{
    ShardDirectory, Sirius, SiriusConfig, SiriusInput, SiriusOutcome, SiriusResponse,
};
pub use profile::Profiler;
pub use stage::Stage;
pub use taxonomy::{input_set, QueryKind, QuerySpec};

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Arc, OnceLock};

    use crate::pipeline::{Sirius, SiriusConfig};

    static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

    fn shared() -> &'static Arc<Sirius> {
        SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default())))
    }

    /// A shared Sirius instance for tests (building one trains every model,
    /// which costs seconds; share it across the test binary).
    pub fn shared_sirius() -> &'static Sirius {
        shared()
    }

    /// The same shared instance behind an [`Arc`], for stage wrappers.
    pub fn shared_sirius_arc() -> Arc<Sirius> {
        Arc::clone(shared())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SiriusOutcome;
    use crate::taxonomy::QueryKind;

    #[test]
    fn end_to_end_voice_commands_produce_actions() {
        let sirius = test_support::shared_sirius();
        let prepared = prepare_input_set(sirius, 4242);
        let mut correct = 0;
        let mut total = 0;
        for p in prepared
            .iter()
            .filter(|p| p.spec.kind == QueryKind::VoiceCommand)
        {
            total += 1;
            let response = sirius.process(&p.input());
            if let SiriusOutcome::Action(a) = &response.outcome {
                if a.action == p.spec.expected {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 8,
            "only {correct}/{total} voice commands executed correctly"
        );
    }

    #[test]
    fn end_to_end_voice_queries_produce_answers() {
        let sirius = test_support::shared_sirius();
        let prepared = prepare_input_set(sirius, 777);
        let mut correct = 0;
        let mut total = 0;
        for p in prepared
            .iter()
            .filter(|p| p.spec.kind == QueryKind::VoiceQuery)
        {
            total += 1;
            let response = sirius.process(&p.input());
            if let SiriusOutcome::Answer(Some(answer)) = &response.outcome {
                if answer.eq_ignore_ascii_case(p.spec.expected) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 7,
            "only {correct}/{total} voice queries answered correctly"
        );
    }

    #[test]
    fn end_to_end_voice_image_queries_use_all_services() {
        let sirius = test_support::shared_sirius();
        let prepared = prepare_input_set(sirius, 31415);
        let mut correct = 0;
        let mut total = 0;
        for p in prepared
            .iter()
            .filter(|p| p.spec.kind == QueryKind::VoiceImageQuery)
        {
            total += 1;
            let response = sirius.process(&p.input());
            assert!(response.timing.imm.is_some(), "VIQ must run image matching");
            if let SiriusOutcome::Answer(Some(answer)) = &response.outcome {
                if answer.eq_ignore_ascii_case(p.spec.expected) {
                    correct += 1;
                }
            }
        }
        assert!(
            correct * 10 >= total * 6,
            "only {correct}/{total} voice-image queries answered correctly"
        );
    }

    #[test]
    fn trained_assistant_round_trips_through_bytes() {
        let sirius = test_support::shared_sirius();
        let bytes = sirius.to_bytes();
        assert!(bytes.len() > 10_000, "model file suspiciously small");
        let restored = Sirius::from_bytes(&bytes).expect("decode");
        let prepared = prepare_input_set(&restored, 555);
        // One query per class must behave identically to the original.
        for kind in QueryKind::ALL {
            let p = prepared
                .iter()
                .find(|p| p.spec.kind == kind)
                .expect("class present");
            let a = sirius.process(&p.input());
            let b = restored.process(&p.input());
            assert_eq!(a.recognized, b.recognized, "{kind}");
            assert_eq!(a.outcome, b.outcome, "{kind}");
        }
        // Corruption is rejected.
        let mut bad = bytes.clone();
        bad[4] ^= 0x10;
        assert!(Sirius::from_bytes(&bad).is_err());
    }

    #[test]
    fn profiler_collects_breakdowns() {
        let sirius = test_support::shared_sirius();
        let prepared = prepare_input_set(sirius, 2025);
        let mut profiler = Profiler::new();
        for p in prepared.iter().take(20) {
            let response = sirius.process(&p.input());
            profiler.record(p.spec.kind, &response);
        }
        let stats = profiler.latency_stats();
        assert!(!stats.is_empty());
        let asr = profiler.asr_breakdown();
        let total: f64 = asr.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "ASR shares sum to {total}");
        // Scoring dominates ASR (paper Figure 9).
        let scoring = asr
            .iter()
            .find(|(n, _)| *n == "scoring")
            .map(|(_, s)| *s)
            .expect("scoring present");
        assert!(scoring > 0.3, "scoring share {scoring}");
    }
}
