//! Typed stage decomposition of the pipeline.
//!
//! The monolithic [`Sirius::process`] walk of paper Figure 2 is really four
//! services in a row — ASR, the query classifier, image matching and QA —
//! and the datacenter sections of the paper (Figures 16/17, Tables 8/9)
//! treat each one as an independently provisioned server. This module gives
//! each service a typed request/response message pair and a [`Stage`]
//! implementation, so the same code path can run either synchronously
//! (composed by [`Sirius::try_process_with`]) or behind per-stage worker
//! pools and bounded queues (the `sirius-server` runtime). Both paths invoke
//! the identical stage methods in the identical order per query, so their
//! outputs are bit-identical by construction.
//!
//! [`Sirius::process`]: crate::pipeline::Sirius::process
//! [`Sirius::try_process_with`]: crate::pipeline::Sirius::try_process_with

use std::sync::Arc;
use std::time::Duration;

use sirius_nlp::qa::QaBreakdown;
use sirius_speech::asr::{AcousticModelKind, AsrTiming};
use sirius_vision::db::ImmTiming;
use sirius_vision::image::GrayImage;

use crate::classifier::{DeviceAction, QueryClass};
use crate::error::SiriusError;
use crate::pipeline::Sirius;

/// One pipeline stage: a typed request in, a typed response (or a typed
/// error) out.
///
/// Implementations must be freely shareable across worker threads: a stage
/// holds only immutable trained state, and every per-query value travels in
/// the request/response messages.
pub trait Stage: Send + Sync {
    /// The message this stage consumes.
    type Req: Send + 'static;
    /// The message this stage produces.
    type Resp: Send + 'static;

    /// Short stable stage name, used for queue labels and
    /// [`SiriusError::Overloaded`] attribution.
    fn name(&self) -> &'static str;

    /// Processes one request. Must not panic on malformed input — errors
    /// come back as [`SiriusError`] values.
    fn handle(&self, req: Self::Req) -> Result<Self::Resp, SiriusError>;
}

/// Request to the speech-recognition stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AsrRequest {
    /// Mono PCM audio at 16 kHz.
    pub audio: Vec<f32>,
    /// Acoustic model to score with.
    pub acoustic: AcousticModelKind,
}

/// Response from the speech-recognition stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AsrResponse {
    /// The transcription.
    pub recognized: String,
    /// Stage timing breakdown.
    pub timing: AsrTiming,
}

/// Request to the query-classifier stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyRequest {
    /// The recognized text to classify.
    pub recognized: String,
}

/// Response from the query-classifier stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyResponse {
    /// Action vs question routing decision.
    pub class: QueryClass,
    /// The extracted device action; present exactly when `class` is
    /// [`QueryClass::Action`].
    pub action: Option<DeviceAction>,
    /// Classifier wall-clock time.
    pub elapsed: Duration,
}

/// Request to the image-matching stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmRequest {
    /// The question text (rewritten in the response if a venue matches).
    pub question: String,
    /// The accompanying image, if any; without one the stage is a
    /// pass-through.
    pub image: Option<GrayImage>,
}

/// Response from the image-matching stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ImmResponse {
    /// The question, with deictic phrases rewritten to the matched venue.
    pub question: String,
    /// The matched venue, if the database recognized the image.
    pub matched_venue: Option<String>,
    /// Stage timing (absent when no image was supplied).
    pub timing: Option<ImmTiming>,
}

/// Request to the question-answering stage.
#[derive(Debug, Clone, PartialEq)]
pub struct QaRequest {
    /// The (possibly rewritten) question.
    pub question: String,
}

/// Response from the question-answering stage.
#[derive(Debug, Clone, PartialEq)]
pub struct QaResponse {
    /// The extracted answer, if any.
    pub answer: Option<String>,
    /// Stage timing breakdown.
    pub breakdown: QaBreakdown,
}

macro_rules! sirius_stage {
    ($(#[$doc:meta])* $name:ident, $label:literal, $req:ty, $resp:ty, $method:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name(pub Arc<Sirius>);

        impl Stage for $name {
            type Req = $req;
            type Resp = $resp;

            fn name(&self) -> &'static str {
                $label
            }

            fn handle(&self, req: Self::Req) -> Result<Self::Resp, SiriusError> {
                self.0.$method(req)
            }
        }
    };
}

sirius_stage!(
    /// The ASR service as a [`Stage`] over a shared assistant.
    AsrStage,
    "asr",
    AsrRequest,
    AsrResponse,
    stage_asr
);
sirius_stage!(
    /// The query classifier as a [`Stage`] over a shared assistant.
    ClassifyStage,
    "classify",
    ClassifyRequest,
    ClassifyResponse,
    stage_classify
);
sirius_stage!(
    /// The image-matching service as a [`Stage`] over a shared assistant.
    ImmStage,
    "imm",
    ImmRequest,
    ImmResponse,
    stage_imm
);
sirius_stage!(
    /// The question-answering service as a [`Stage`] over a shared assistant.
    QaStage,
    "qa",
    QaRequest,
    QaResponse,
    stage_qa
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable() {
        let sirius = crate::test_support::shared_sirius_arc();
        assert_eq!(AsrStage(Arc::clone(&sirius)).name(), "asr");
        assert_eq!(ClassifyStage(Arc::clone(&sirius)).name(), "classify");
        assert_eq!(ImmStage(Arc::clone(&sirius)).name(), "imm");
        assert_eq!(QaStage(sirius).name(), "qa");
    }

    #[test]
    fn classify_stage_extracts_actions_only_for_commands() {
        let sirius = crate::test_support::shared_sirius();
        let r = sirius
            .stage_classify(ClassifyRequest {
                recognized: "set my alarm for eight".into(),
            })
            .expect("classify");
        assert_eq!(r.class, QueryClass::Action);
        assert_eq!(r.action.as_ref().map(|a| a.action.as_str()), Some("alarm"));

        let r = sirius
            .stage_classify(ClassifyRequest {
                recognized: "who wrote hamlet".into(),
            })
            .expect("classify");
        assert_eq!(r.class, QueryClass::Question);
        assert!(r.action.is_none());
    }

    #[test]
    fn imm_stage_without_image_is_a_passthrough() {
        let sirius = crate::test_support::shared_sirius();
        let r = sirius
            .stage_imm(ImmRequest {
                question: "when does this place close".into(),
                image: None,
            })
            .expect("imm");
        assert_eq!(r.question, "when does this place close");
        assert!(r.matched_venue.is_none());
        assert!(r.timing.is_none());
    }
}
