//! Cycle accounting across pipeline runs (paper Figures 7b, 8a, 8b, 9).
//!
//! [`Profiler`] accumulates per-component wall-clock time from
//! [`SiriusResponse`] timings and reports per-service breakdowns (Figure 9),
//! per-query-kind latency statistics (Figures 7b/8a), and the QA
//! latency-vs-filter-hits correlation data (Figure 8c).
//!
//! Percentile arithmetic is shared with the serving stack: the nearest-rank
//! math here delegates to [`sirius_obs::stats`], the same code the
//! `sirius-obs` bucketed histograms rank with — exact sample statistics and
//! live serving telemetry can only differ by bucketing, never by rank
//! convention. [`Profiler::to_registry`] re-exports the accumulated
//! accounting over those same registry primitives.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::pipeline::SiriusResponse;
use crate::taxonomy::QueryKind;

/// Accumulated per-component times for one service.
pub type ComponentBreakdown = Vec<(&'static str, f64)>;

/// Latency statistics for one query kind.
///
/// Retains its ascending-sorted sample set privately so two populations
/// [`merge`](Self::merge) exactly — cluster-level p50/p95/p99 from
/// per-replica statistics without callers re-sorting concatenations.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Number of queries observed.
    pub count: usize,
    /// Mean end-to-end latency.
    pub mean: Duration,
    /// Fastest query.
    pub min: Duration,
    /// Slowest query.
    pub max: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency (nearest rank).
    pub p95: Duration,
    /// 99th-percentile latency (nearest rank). Tail latency is the paper's
    /// datacenter design constraint, and the quantity a load harness sweeps.
    pub p99: Duration,
    sorted: Vec<Duration>,
}

impl LatencyStats {
    /// Computes full statistics (mean/min/max and p50/p95/p99) over a set
    /// of samples. Zero durations for an empty set.
    pub fn from_samples(samples: &[Duration]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Self::from_sorted(sorted)
    }

    /// Computes statistics over an already ascending-sorted sample vector.
    fn from_sorted(sorted: Vec<Duration>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        if sorted.is_empty() {
            return Self {
                count: 0,
                mean: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                p50: Duration::ZERO,
                p95: Duration::ZERO,
                p99: Duration::ZERO,
                sorted,
            };
        }
        let sum: Duration = sorted.iter().sum();
        Self {
            count: sorted.len(),
            mean: sum / sorted.len() as u32,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            sorted,
        }
    }

    /// Combines two sample populations into the exact statistics of their
    /// union. The retained sorted runs merge in O(n + m) via
    /// [`sirius_obs::stats::merge_sorted`] — the merge step of merge sort —
    /// so per-replica latency statistics roll up to cluster level without
    /// re-sorting a concatenated raw vector, and
    /// `a.merge(&b) == LatencyStats::from_samples(&[a's samples, b's
    /// samples].concat())` exactly, percentiles included.
    pub fn merge(&self, other: &Self) -> Self {
        Self::from_sorted(sirius_obs::stats::merge_sorted(&self.sorted, &other.sorted))
    }

    /// The retained samples, ascending.
    pub fn samples(&self) -> &[Duration] {
        &self.sorted
    }
}

/// Nearest-rank percentile of an ascending-sorted sample set: the smallest
/// sample at or above the requested fraction of the distribution. Zero for
/// an empty set.
///
/// Delegates to [`sirius_obs::stats::percentile_of_sorted`] so the workspace
/// has exactly one percentile implementation.
pub fn percentile_of_sorted(sorted: &[Duration], pct: f64) -> Duration {
    sirius_obs::stats::percentile_of_sorted(sorted, pct).unwrap_or(Duration::ZERO)
}

/// One (filter hits, QA latency) observation for Figure 8c.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterHitSample {
    /// Document-filter hits for this query.
    pub hits: usize,
    /// QA stage latency.
    pub latency: Duration,
}

/// Accumulates pipeline timings across queries.
#[derive(Debug, Default)]
pub struct Profiler {
    per_kind: BTreeMap<&'static str, Vec<Duration>>,
    asr_components: BTreeMap<&'static str, Duration>,
    qa_components: BTreeMap<&'static str, Duration>,
    imm_components: BTreeMap<&'static str, Duration>,
    filter_samples: Vec<FilterHitSample>,
    qa_latencies: Vec<Duration>,
    asr_latencies: Vec<Duration>,
    imm_latencies: Vec<Duration>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one response.
    pub fn record(&mut self, kind: QueryKind, response: &SiriusResponse) {
        self.per_kind
            .entry(kind.short_name())
            .or_default()
            .push(response.timing.total);

        let asr = &response.timing.asr;
        *self.asr_components.entry("feature extraction").or_default() += asr.feature_extraction;
        *self.asr_components.entry("scoring").or_default() += asr.scoring;
        *self.asr_components.entry("HMM search").or_default() += asr.search;
        self.asr_latencies.push(asr.total);

        if let Some(qa) = &response.timing.qa {
            *self.qa_components.entry("stemmer").or_default() += qa.stemmer;
            *self.qa_components.entry("regex").or_default() += qa.regex;
            *self.qa_components.entry("CRF").or_default() += qa.crf;
            *self.qa_components.entry("search").or_default() += qa.search;
            *self.qa_components.entry("filter/extract").or_default() += qa.filtering;
            self.filter_samples.push(FilterHitSample {
                hits: qa.filter_hits,
                latency: qa.total,
            });
            self.qa_latencies.push(qa.total);
        }
        if let Some(imm) = &response.timing.imm {
            *self.imm_components.entry("FE").or_default() += imm.feature_extraction;
            *self.imm_components.entry("FD").or_default() += imm.feature_description;
            *self.imm_components.entry("ANN").or_default() += imm.ann_search;
            self.imm_latencies.push(imm.total);
        }
    }

    /// Latency statistics per query kind (Figures 7b, 8a), including
    /// p50/p95/p99 tail percentiles.
    pub fn latency_stats(&self) -> Vec<(&'static str, LatencyStats)> {
        self.per_kind
            .iter()
            .map(|(kind, samples)| (*kind, LatencyStats::from_samples(samples)))
            .collect()
    }

    fn shares(map: &BTreeMap<&'static str, Duration>) -> ComponentBreakdown {
        let total: f64 = map.values().map(Duration::as_secs_f64).sum();
        map.iter()
            .map(|(name, d)| (*name, d.as_secs_f64() / total.max(1e-12)))
            .collect()
    }

    /// ASR component shares (Figure 9, left group).
    pub fn asr_breakdown(&self) -> ComponentBreakdown {
        Self::shares(&self.asr_components)
    }

    /// QA component shares (Figure 9, middle group / Figure 8b).
    pub fn qa_breakdown(&self) -> ComponentBreakdown {
        Self::shares(&self.qa_components)
    }

    /// IMM component shares (Figure 9, right group).
    pub fn imm_breakdown(&self) -> ComponentBreakdown {
        Self::shares(&self.imm_components)
    }

    /// Per-service latency statistics (Figure 8a), including p50/p95/p99.
    pub fn service_latency_spread(&self) -> Vec<(&'static str, LatencyStats)> {
        vec![
            ("ASR", LatencyStats::from_samples(&self.asr_latencies)),
            ("QA", LatencyStats::from_samples(&self.qa_latencies)),
            ("IMM", LatencyStats::from_samples(&self.imm_latencies)),
        ]
    }

    /// The (hits, latency) samples behind Figure 8c.
    pub fn filter_hit_samples(&self) -> &[FilterHitSample] {
        &self.filter_samples
    }

    /// Pearson correlation between filter hits and QA latency (Figure 8c
    /// shows these are strongly correlated).
    pub fn filter_hit_correlation(&self) -> f64 {
        let n = self.filter_samples.len();
        if n < 2 {
            return 0.0;
        }
        let xs: Vec<f64> = self.filter_samples.iter().map(|s| s.hits as f64).collect();
        let ys: Vec<f64> = self
            .filter_samples
            .iter()
            .map(|s| s.latency.as_secs_f64())
            .collect();
        pearson(&xs, &ys)
    }

    /// Re-exports the accumulated accounting as a `sirius-obs` registry:
    /// per-kind and per-service latency histograms (`latency.{kind}_ns`,
    /// `{service}.latency_ns`) and per-component time counters
    /// (`{service}.{component}_ns`) — the same primitives the staged
    /// runtime records into, so offline profiling and live serving
    /// telemetry render through one exporter.
    pub fn to_registry(&self) -> sirius_obs::Registry {
        let registry = sirius_obs::Registry::new();
        for (kind, samples) in &self.per_kind {
            let h = registry.histogram(&format!("latency.{}_ns", metric_name(kind)));
            for d in samples {
                h.record_duration(*d);
            }
        }
        for (service, samples) in [
            ("asr", &self.asr_latencies),
            ("qa", &self.qa_latencies),
            ("imm", &self.imm_latencies),
        ] {
            let h = registry.histogram(&format!("{service}.latency_ns"));
            for d in samples {
                h.record_duration(*d);
            }
        }
        for (service, components) in [
            ("asr", &self.asr_components),
            ("qa", &self.qa_components),
            ("imm", &self.imm_components),
        ] {
            for (component, elapsed) in components.iter() {
                registry
                    .counter(&format!("{service}.{}_ns", metric_name(component)))
                    .add_duration(*elapsed);
            }
        }
        registry
    }
}

/// Lowercases a display label into a metric-name segment (`HMM search` →
/// `hmm_search`, `filter/extract` → `filter_extract`).
fn metric_name(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_linear_data_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn empty_profiler_reports_empty_stats() {
        let p = Profiler::new();
        assert!(p.latency_stats().is_empty());
        assert_eq!(p.filter_hit_correlation(), 0.0);
        let stats = LatencyStats::from_samples(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p99, Duration::ZERO);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(
            percentile_of_sorted(&sorted, 50.0),
            Duration::from_millis(50)
        );
        assert_eq!(
            percentile_of_sorted(&sorted, 95.0),
            Duration::from_millis(95)
        );
        assert_eq!(
            percentile_of_sorted(&sorted, 99.0),
            Duration::from_millis(99)
        );
        assert_eq!(
            percentile_of_sorted(&sorted, 100.0),
            Duration::from_millis(100)
        );
        assert_eq!(percentile_of_sorted(&sorted, 0.0), Duration::from_millis(1));
        // Small sample sets: p99 of 4 samples is the max.
        let four: Vec<Duration> = (1..=4).map(Duration::from_secs).collect();
        assert_eq!(percentile_of_sorted(&four, 99.0), Duration::from_secs(4));
        assert_eq!(percentile_of_sorted(&four, 50.0), Duration::from_secs(2));
    }

    #[test]
    fn exact_and_bucketed_percentiles_share_rank_arithmetic() {
        // The same samples through the exact path (LatencyStats) and the
        // serving path (sirius-obs bucketed histogram) must agree to within
        // one bucket width — they share the nearest-rank implementation, so
        // bucketing is the only possible difference.
        let samples: Vec<Duration> = (1..=200).map(|i| Duration::from_micros(i * 37)).collect();
        let exact = LatencyStats::from_samples(&samples);
        let h = sirius_obs::Histogram::default();
        for d in &samples {
            h.record_duration(*d);
        }
        let snap = h.snapshot();
        for (pct, exact_value) in [(50.0, exact.p50), (95.0, exact.p95), (99.0, exact.p99)] {
            let bucketed = snap.percentile(pct);
            let exact_ns = exact_value.as_nanos() as u64;
            let (lo, hi) =
                sirius_obs::metrics::bucket_bounds(sirius_obs::metrics::bucket_index(exact_ns));
            assert!(
                (lo..=hi).contains(&bucketed),
                "p{pct}: bucketed {bucketed} outside [{lo}, {hi}] around exact {exact_ns}"
            );
        }
    }

    #[test]
    fn to_registry_exports_latencies_and_components() {
        let mut p = Profiler::new();
        p.per_kind
            .entry("VC")
            .or_default()
            .extend((1..=10).map(Duration::from_millis));
        p.asr_latencies.push(Duration::from_millis(7));
        *p.asr_components.entry("HMM search").or_default() += Duration::from_millis(3);
        *p.qa_components.entry("filter/extract").or_default() += Duration::from_millis(2);
        let snap = p.to_registry().snapshot();
        assert_eq!(snap.histogram("latency.vc_ns").unwrap().count, 10);
        assert_eq!(snap.histogram("asr.latency_ns").unwrap().count, 1);
        assert_eq!(snap.counter("asr.hmm_search_ns"), Some(3_000_000));
        assert_eq!(snap.counter("qa.filter_extract_ns"), Some(2_000_000));
        assert_eq!(snap.histogram("qa.latency_ns").unwrap().count, 0);
    }

    #[test]
    fn merge_equals_stats_of_concatenated_samples() {
        let a: Vec<Duration> = [5u64, 1, 9, 9, 3].map(Duration::from_millis).to_vec();
        let b: Vec<Duration> = (0..150)
            .map(|i| Duration::from_millis(i * 7 % 43))
            .collect();
        let merged = LatencyStats::from_samples(&a).merge(&LatencyStats::from_samples(&b));
        let concat: Vec<Duration> = a.iter().chain(&b).copied().collect();
        assert_eq!(merged, LatencyStats::from_samples(&concat));
        // Commutative, and empty is the identity.
        assert_eq!(
            merged,
            LatencyStats::from_samples(&b).merge(&LatencyStats::from_samples(&a))
        );
        let empty = LatencyStats::from_samples(&[]);
        assert_eq!(empty.merge(&merged), merged);
        assert_eq!(merged.merge(&empty), merged);
        assert_eq!(empty.merge(&empty).count, 0);
    }

    #[test]
    fn merged_samples_stay_sorted_for_further_merges() {
        let a = LatencyStats::from_samples(&[3u64, 1].map(Duration::from_secs));
        let b = LatencyStats::from_samples(&[2u64, 4].map(Duration::from_secs));
        let c = LatencyStats::from_samples(&[5u64].map(Duration::from_secs));
        let all = a.merge(&b).merge(&c);
        assert_eq!(
            all.samples(),
            (1..=5).map(Duration::from_secs).collect::<Vec<_>>()
        );
        assert_eq!(all.p50, Duration::from_secs(3));
    }

    #[test]
    fn from_samples_orders_unsorted_input() {
        let samples = [5u64, 1, 4, 2, 3].map(Duration::from_secs);
        let stats = LatencyStats::from_samples(&samples);
        assert_eq!(stats.count, 5);
        assert_eq!(stats.min, Duration::from_secs(1));
        assert_eq!(stats.max, Duration::from_secs(5));
        assert_eq!(stats.p50, Duration::from_secs(3));
        assert_eq!(stats.mean, Duration::from_secs(3));
        assert!(stats.p95 <= stats.p99 && stats.p99 <= stats.max);
    }
}
