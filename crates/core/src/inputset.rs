//! Prepared input set: synthesized audio and images for all 42 queries.
//!
//! The paper's input set is recorded speech plus photographs; we synthesize
//! both (see DESIGN.md). Audio uses a held-out synthesis seed so recognition
//! is evaluated on unseen utterances; VIQ images are random affine views of
//! the venue scenes indexed in the image database.

use sirius_speech::synth::{SynthConfig, Synthesizer, Utterance};
use sirius_vision::image::GrayImage;
use sirius_vision::synth as vsynth;

use crate::pipeline::{Sirius, SiriusInput};
use crate::taxonomy::{input_set, QuerySpec};

/// A query spec with its synthesized audio/image inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedQuery {
    /// The taxonomy entry.
    pub spec: QuerySpec,
    /// Synthesized speech for the query text.
    pub utterance: Utterance,
    /// Query-view image for VIQ queries.
    pub image: Option<GrayImage>,
}

impl PreparedQuery {
    /// The pipeline input for this query.
    pub fn input(&self) -> SiriusInput {
        SiriusInput {
            audio: self.utterance.samples.clone(),
            image: self.image.clone(),
        }
    }
}

/// Synthesizes the full 42-query input set against a built [`Sirius`]
/// instance. `seed` controls speech jitter and image viewpoints and should
/// differ from the training seed.
pub fn prepare_input_set(sirius: &Sirius, seed: u64) -> Vec<PreparedQuery> {
    let mut synth = Synthesizer::new(seed, SynthConfig::default());
    input_set()
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let utterance = synth.say(spec.text);
            let image = spec.venue.map(|venue| {
                let venue_index = sirius
                    .venues()
                    .iter()
                    .position(|v| v.eq_ignore_ascii_case(venue))
                    .unwrap_or_else(|| panic!("venue {venue:?} not in image database"));
                let scene = sirius.venue_scene(venue_index);
                vsynth::random_view(&scene, seed.wrapping_add(i as u64 * 977))
            });
            PreparedQuery {
                spec,
                utterance,
                image,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::QueryKind;

    #[test]
    fn prepared_set_has_audio_for_all_and_images_for_viq() {
        // A tiny Sirius build is expensive; use the shared test instance.
        let sirius = crate::test_support::shared_sirius();
        let prepared = prepare_input_set(sirius, 9999);
        assert_eq!(prepared.len(), 42);
        for p in &prepared {
            assert!(!p.utterance.samples.is_empty(), "{}", p.spec.text);
            assert_eq!(
                p.image.is_some(),
                p.spec.kind == QueryKind::VoiceImageQuery,
                "{}",
                p.spec.text
            );
        }
    }
}
