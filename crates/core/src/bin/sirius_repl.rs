//! Interactive Sirius demo: type a query, the demo synthesizes speech for
//! it, runs the full pipeline (ASR -> QC -> QA/IMM) and prints the response
//! with per-stage timing. Venue names in square brackets attach an image,
//! e.g. `When does this restaurant close? [Luigi Trattoria]`.

use std::io::{BufRead, Write};

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome};
use sirius_speech::synth::{SynthConfig, Synthesizer};
use sirius_vision::synth as vsynth;

fn main() {
    eprintln!("training Sirius (a few seconds)...");
    let sirius = Sirius::build(SiriusConfig::default());
    let mut voice = Synthesizer::new(0xcafe, SynthConfig::default());
    eprintln!(
        "ready. vocabulary: {} words; venues: {}.",
        sirius.asr().lexicon().len(),
        sirius.venues().join(", ")
    );
    eprintln!("type a query (empty line to quit):");

    let stdin = std::io::stdin();
    let mut view_seed = 1u64;
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        // Optional venue image: "... [Venue Name]".
        let (text, image) = match (line.find('['), line.rfind(']')) {
            (Some(a), Some(b)) if b > a => {
                let venue = line[a + 1..b].trim();
                match sirius
                    .venues()
                    .iter()
                    .position(|v| v.eq_ignore_ascii_case(venue))
                {
                    Some(idx) => {
                        view_seed += 1;
                        let scene = sirius.venue_scene(idx);
                        (
                            line[..a].trim().to_owned(),
                            Some(vsynth::random_view(&scene, view_seed)),
                        )
                    }
                    None => {
                        eprintln!(
                            "(unknown venue {venue:?}; known: {})",
                            sirius.venues().join(", ")
                        );
                        (line[..a].trim().to_owned(), None)
                    }
                }
            }
            _ => (line.to_owned(), None),
        };
        if text.is_empty() {
            continue;
        }
        // Words outside the trained vocabulary cannot be synthesized
        // meaningfully; warn but continue.
        let utt = voice.say(&text);
        let response = sirius.process(&SiriusInput {
            audio: utt.samples,
            image,
        });
        println!("  heard : {}", response.recognized);
        if let Some(venue) = &response.matched_venue {
            println!("  image : matched {venue}");
        }
        match &response.outcome {
            SiriusOutcome::Action(a) => println!("  action: {}", a.action),
            SiriusOutcome::Answer(Some(ans)) => println!("  answer: {ans}"),
            SiriusOutcome::Answer(None) => println!("  answer: (none found)"),
        }
        println!(
            "  timing: asr {:.1?}, qa {:?}, imm {:?}, total {:.1?}",
            response.timing.asr.total,
            response.timing.qa.as_ref().map(|q| q.total),
            response.timing.imm.as_ref().map(|i| i.total),
            response.timing.total
        );
    }
}
