//! Query taxonomy (paper Table 1) and the 42-query input set.
//!
//! Three classes: Voice Command (16 queries, ASR only), Voice Query
//! (16 queries, ASR + QA) and Voice-Image Query (10 queries, ASR + QA +
//! IMM), mirroring the paper's input set sizes exactly.

/// The class of an IPA query (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// "Set my alarm for 8am." — ASR, then an action on the device.
    VoiceCommand,
    /// "Who was elected 44th president?" — ASR + QA.
    VoiceQuery,
    /// "When does this restaurant close?" + image — ASR + QA + IMM.
    VoiceImageQuery,
}

impl QueryKind {
    /// All classes in taxonomy order.
    pub const ALL: [QueryKind; 3] = [
        QueryKind::VoiceCommand,
        QueryKind::VoiceQuery,
        QueryKind::VoiceImageQuery,
    ];

    /// Short name used in figures ("VC", "VQ", "VIQ").
    pub fn short_name(self) -> &'static str {
        match self {
            QueryKind::VoiceCommand => "VC",
            QueryKind::VoiceQuery => "VQ",
            QueryKind::VoiceImageQuery => "VIQ",
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A query specification from the input set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Query class.
    pub kind: QueryKind,
    /// Spoken text of the query.
    pub text: &'static str,
    /// For VIQ queries, the venue whose image accompanies the speech.
    pub venue: Option<&'static str>,
    /// Ground truth: the expected action (VC) or answer (VQ/VIQ).
    pub expected: &'static str,
}

/// The 16 voice commands.
pub const VOICE_COMMANDS: [(&str, &str); 16] = [
    ("Set my alarm for 8am", "alarm"),
    ("Call mom now", "call"),
    ("Play some jazz music", "play"),
    ("Open the calendar app", "open"),
    ("Send a text to John", "send"),
    ("Turn on the lights", "turn"),
    ("Start a timer for ten minutes", "timer"),
    ("Take a quick note", "note"),
    ("Show my schedule for today", "show"),
    ("Stop the music now", "stop"),
    ("Increase the volume a bit", "volume"),
    ("Open the camera app", "open"),
    ("Check my new messages", "check"),
    ("Start navigation to home", "navigate"),
    ("Mute the phone now", "mute"),
    ("Take a picture of this", "camera"),
];

/// The 16 voice queries (Table 2 style), with ground-truth answers drawn
/// from the `sirius-search` knowledge base.
pub const VOICE_QUERIES: [(&str, &str); 16] = [
    ("Where is Las Vegas", "Nevada"),
    ("What is the capital of Italy", "Rome"),
    ("Who is the author of Harry Potter", "Joanne Rowling"),
    ("What is the capital of Cuba", "Havana"),
    ("What is the capital of France", "Paris"),
    ("What is the capital of Japan", "Tokyo"),
    ("What is the capital of Canada", "Ottawa"),
    ("What is the capital of Australia", "Canberra"),
    ("What is the capital of Egypt", "Cairo"),
    ("What is the capital of Brazil", "Brasilia"),
    ("Who is the author of Hamlet", "William Shakespeare"),
    ("Who is the author of The Odyssey", "Homer"),
    (
        "Who was elected 44th president of the United States",
        "Barack Obama",
    ),
    (
        "Who was the first president of the United States",
        "George Washington",
    ),
    ("Where is Mount Fuji", "Japan"),
    ("Where is the Grand Canyon", "Arizona"),
];

/// The 10 voice-image queries: a "this place" question plus a venue image.
pub const VOICE_IMAGE_QUERIES: [(&str, &str, &str); 10] = [
    (
        "When does this restaurant close",
        "Luigi Trattoria",
        "10 pm",
    ),
    (
        "When does this restaurant close",
        "Sakura Sushi House",
        "11 pm",
    ),
    ("When does this place close", "Blue Bottle Cafe", "6 pm"),
    (
        "When does this place close",
        "Golden Gate Diner",
        "midnight",
    ),
    ("When does this place close", "Crown Books", "9 pm"),
    ("When does this restaurant close", "Harbor Grill", "10 pm"),
    ("When does this place close", "Maple Leaf Bakery", "5 pm"),
    (
        "When does this restaurant close",
        "Casa Verde Cantina",
        "11 pm",
    ),
    ("When does this place close", "Union Square Market", "8 pm"),
    ("When does this place close", "Riverside Tea House", "7 pm"),
];

/// Builds the full 42-query input set (16 VC + 16 VQ + 10 VIQ).
pub fn input_set() -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(42);
    for (text, expected) in VOICE_COMMANDS {
        out.push(QuerySpec {
            kind: QueryKind::VoiceCommand,
            text,
            venue: None,
            expected,
        });
    }
    for (text, expected) in VOICE_QUERIES {
        out.push(QuerySpec {
            kind: QueryKind::VoiceQuery,
            text,
            venue: None,
            expected,
        });
    }
    for (text, venue, expected) in VOICE_IMAGE_QUERIES {
        out.push(QuerySpec {
            kind: QueryKind::VoiceImageQuery,
            text,
            venue: Some(venue),
            expected,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_set_matches_table1_counts() {
        let set = input_set();
        assert_eq!(set.len(), 42);
        let count = |k: QueryKind| set.iter().filter(|q| q.kind == k).count();
        assert_eq!(count(QueryKind::VoiceCommand), 16);
        assert_eq!(count(QueryKind::VoiceQuery), 16);
        assert_eq!(count(QueryKind::VoiceImageQuery), 10);
    }

    #[test]
    fn viq_queries_have_venues() {
        for q in input_set() {
            assert_eq!(q.venue.is_some(), q.kind == QueryKind::VoiceImageQuery);
            assert!(!q.expected.is_empty());
        }
    }

    #[test]
    fn short_names() {
        assert_eq!(QueryKind::VoiceCommand.short_name(), "VC");
        assert_eq!(QueryKind::VoiceImageQuery.to_string(), "VIQ");
    }
}

#[cfg(test)]
mod kb_consistency_tests {
    use super::*;
    use sirius_search::corpus::{knowledge_base, FactKind};

    /// Every VIQ venue and expected closing time must exist in the
    /// knowledge base the QA corpus is generated from — otherwise the
    /// end-to-end VIQ path cannot succeed by construction.
    #[test]
    fn viq_expectations_match_the_knowledge_base() {
        let kb = knowledge_base();
        for (_, venue, expected) in VOICE_IMAGE_QUERIES {
            let fact = kb
                .iter()
                .find(|f| f.kind == FactKind::ClosingTime && f.subject == venue)
                .unwrap_or_else(|| panic!("venue {venue:?} missing from knowledge base"));
            assert_eq!(fact.answer, expected, "{venue}");
        }
    }

    /// Every VQ expected answer must be the knowledge base's answer for some
    /// fact whose subject appears in the query text.
    #[test]
    fn vq_expectations_match_the_knowledge_base() {
        let kb = knowledge_base();
        for (text, expected) in VOICE_QUERIES {
            let lower = text.to_lowercase();
            let found = kb
                .iter()
                .any(|f| f.answer == expected && lower.contains(&f.subject.to_lowercase()));
            assert!(found, "no supporting fact for {text:?} -> {expected:?}");
        }
    }

    /// The 10 VIQ venues are exactly the knowledge base's venues, in order —
    /// the pipeline maps image-database ids to venues positionally.
    #[test]
    fn viq_venues_cover_all_closing_time_facts_in_order() {
        let kb_venues: Vec<String> = knowledge_base()
            .into_iter()
            .filter(|f| f.kind == FactKind::ClosingTime)
            .map(|f| f.subject)
            .collect();
        let taxonomy_venues: Vec<&str> = VOICE_IMAGE_QUERIES.iter().map(|(_, v, _)| *v).collect();
        assert_eq!(kb_venues, taxonomy_venues);
    }
}
