//! The end-to-end Sirius pipeline (paper Figure 2).
//!
//! Voice (and optionally image) input flows through Automatic Speech
//! Recognition, the Query Classifier, and then either back to the device as
//! an action or into Question Answering — combined with Image Matching when
//! an image accompanies the speech. Every stage is timed so the pipeline
//! reproduces the paper's latency figures (7b, 8a) and cycle breakdowns
//! (Figure 9).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sirius_nlp::crf::{Crf, TrainConfig};
use sirius_nlp::pos;
use sirius_nlp::qa::{QaBreakdown, QaConfig, QaEngine};
use sirius_par::ExecPolicy;
use sirius_search::corpus::{CorpusConfig, FactCorpus, FactKind};
use sirius_search::SearchEngine;
use sirius_speech::asr::{AcousticModelKind, AsrSystem, AsrTiming, AsrTrainConfig};
use sirius_vision::ann::SearchBudget;
use sirius_vision::db::{ImageDatabase, ImmTiming, MatchConfig};
use sirius_vision::image::GrayImage;
use sirius_vision::surf::SurfConfig;
use sirius_vision::synth as vsynth;

use crate::classifier::{DeviceAction, QueryClass, QueryClassifier};
use crate::error::{ClusterError, SiriusError};
use crate::stage::{
    AsrRequest, AsrResponse, ClassifyRequest, ClassifyResponse, ImmRequest, ImmResponse, QaRequest,
    QaResponse,
};
use crate::taxonomy;

/// Configuration for building a Sirius instance.
#[derive(Debug, Clone)]
pub struct SiriusConfig {
    /// Master seed for all generated models and data.
    pub seed: u64,
    /// Fact-corpus generation parameters.
    pub corpus: CorpusConfig,
    /// ASR training parameters.
    pub asr: AsrTrainConfig,
    /// QA retrieval parameters.
    pub qa: QaConfig,
    /// Image-matching parameters.
    pub imm: MatchConfig,
    /// Venue image dimensions (width, height).
    pub image_size: (usize, usize),
    /// Tagged sentences used to train the CRF tagger.
    pub crf_train_sentences: usize,
    /// Multicore execution policy applied to the hot service kernels
    /// (acoustic scoring, SURF extraction/matching, QA document filters and
    /// CRF tagging). Output is bit-identical to the serial path at every
    /// thread count and strategy; this is a runtime knob and is not
    /// serialized by [`Sirius::to_bytes`].
    pub exec: ExecPolicy,
}

impl Default for SiriusConfig {
    fn default() -> Self {
        Self {
            seed: 0x5151_7105,
            corpus: CorpusConfig::default(),
            asr: AsrTrainConfig::default(),
            qa: QaConfig::default(),
            imm: MatchConfig::default(),
            image_size: (160, 160),
            crf_train_sentences: 200,
            exec: ExecPolicy::serial(),
        }
    }
}

/// Stage-level timing of one end-to-end query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTiming {
    /// Speech-recognition stage.
    pub asr: AsrTiming,
    /// Query-classifier time.
    pub classify: Duration,
    /// Question-answering stage (absent for actions).
    pub qa: Option<QaBreakdown>,
    /// Image-matching stage (VIQ only).
    pub imm: Option<ImmTiming>,
    /// End-to-end wall-clock.
    pub total: Duration,
}

/// What Sirius did with the query.
#[derive(Debug, Clone, PartialEq)]
pub enum SiriusOutcome {
    /// A device action (voice command path).
    Action(DeviceAction),
    /// A natural-language answer (voice query / voice-image query path).
    Answer(Option<String>),
}

/// The full response to one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SiriusResponse {
    /// The ASR transcription.
    pub recognized: String,
    /// Action or answer.
    pub outcome: SiriusOutcome,
    /// The venue identified by image matching, if an image was supplied.
    pub matched_venue: Option<String>,
    /// Per-stage timing.
    pub timing: StageTiming,
}

/// One input to the pipeline: audio samples plus an optional image.
#[derive(Debug, Clone, PartialEq)]
pub struct SiriusInput {
    /// Mono PCM audio at 16 kHz.
    pub audio: Vec<f32>,
    /// Accompanying image (VIQ queries).
    pub image: Option<GrayImage>,
}

/// The shared data plane of a sharded cluster: every shard of the retrieval
/// index and of the image database, in shard order.
///
/// Replicas hold this behind an [`Arc`]; a replica's QA retrieval and IMM
/// candidate search *scatter* across all entries and merge deterministically
/// (`sirius_search::merge_hits`, [`ImageDatabase::merge_partials`]), while
/// everything else in the pipeline runs on the replica's own engines. In a
/// real deployment each entry would live on a different machine; in this
/// single-box cluster the fan-out is an in-memory call, which keeps the
/// merge semantics — the part the paper's provisioning math cares about —
/// real and measurable.
#[derive(Debug)]
pub struct ShardDirectory {
    search: Vec<SearchEngine>,
    imm: Vec<ImageDatabase>,
}

impl ShardDirectory {
    /// Number of shards the data planes are partitioned into.
    pub fn num_shards(&self) -> usize {
        self.search.len()
    }
}

/// The end-to-end intelligent personal assistant.
pub struct Sirius {
    asr: AsrSystem,
    classifier: QueryClassifier,
    qa: QaEngine,
    imm: ImageDatabase,
    venues: Vec<String>,
    config: SiriusConfig,
    /// `Some` on a cluster replica: this instance's QA/IMM engines hold one
    /// shard, and queries scatter-gather across the shared directory.
    shards: Option<(u32, Arc<ShardDirectory>)>,
}

impl std::fmt::Debug for Sirius {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sirius")
            .field("vocabulary", &self.asr.lexicon().len())
            .field("venues", &self.venues.len())
            .finish_non_exhaustive()
    }
}

impl Sirius {
    /// Builds and trains a complete Sirius instance: ASR models over the
    /// input-set vocabulary, the QA engine over a generated fact corpus, and
    /// the image database over procedurally generated venue scenes.
    pub fn build(config: SiriusConfig) -> Self {
        // ASR: train on the full taxonomy vocabulary.
        let texts: Vec<&str> = taxonomy::input_set().iter().map(|q| q.text).collect();
        let mut asr = AsrSystem::train(&texts, config.seed, config.asr);
        asr.set_exec_policy(config.exec);

        // QA: fact corpus + search engine + CRF tagger.
        let corpus = FactCorpus::generate(config.seed ^ 0xfac7, config.corpus);
        let search = SearchEngine::build(corpus.documents().iter().map(|d| d.text.as_str()));
        let crf = Crf::train(
            pos::tag_set(),
            &pos::generate(config.seed ^ 0x905, config.crf_train_sentences),
            TrainConfig::default(),
        );
        let mut qa = QaEngine::new(search, crf, config.qa);
        qa.set_exec_policy(config.exec);

        // IMM: one scene per venue in the knowledge base.
        let venues: Vec<String> = corpus
            .facts()
            .iter()
            .filter(|f| f.kind == FactKind::ClosingTime)
            .map(|f| f.subject.clone())
            .collect();
        let (w, h) = config.image_size;
        let scenes: Vec<GrayImage> = (0..venues.len())
            .map(|i| vsynth::generate_scene(Self::venue_scene_seed(config.seed, i), w, h))
            .collect();
        // Enrollment-side SURF extraction honours the same policy as queries.
        let mut imm_config = config.imm;
        imm_config.surf.exec = config.exec;
        let imm = ImageDatabase::build(scenes.iter(), imm_config);

        Self {
            asr,
            classifier: QueryClassifier::new(),
            qa,
            imm,
            venues,
            config,
            shards: None,
        }
    }

    /// Builds `num_shards` cluster replicas from this instance.
    ///
    /// Each replica carries the full ASR models and classifier (queries
    /// arrive whole; speech is not shardable data) but only *one shard* of
    /// the QA retrieval index ([`QaEngine::shard`]) and of the IMM
    /// descriptor index ([`ImageDatabase::shard`]). All replicas share one
    /// [`ShardDirectory`] holding every shard, so any replica can serve any
    /// query: retrieval and descriptor search scatter across the directory
    /// and merge under the shared deterministic orders, making every
    /// replica's response to a given query identical — and identical to
    /// this unsharded instance's, which the cluster equivalence gate
    /// asserts over the full 42-query input set.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidShardCount`] if `num_shards` is zero.
    pub fn shard_replicas(&self, num_shards: u32) -> Result<Vec<Sirius>, ClusterError> {
        if num_shards == 0 {
            return Err(ClusterError::InvalidShardCount { requested: 0 });
        }
        let directory = Arc::new(ShardDirectory {
            search: (0..num_shards)
                .map(|i| self.qa.search_engine().shard(i, num_shards))
                .collect(),
            imm: (0..num_shards)
                .map(|i| self.imm.shard(i, num_shards))
                .collect(),
        });
        Ok((0..num_shards)
            .map(|i| Sirius {
                asr: self.asr.clone(),
                classifier: QueryClassifier::new(),
                qa: self.qa.shard(i, num_shards),
                imm: self.imm.shard(i, num_shards),
                venues: self.venues.clone(),
                config: self.config.clone(),
                shards: Some((i, Arc::clone(&directory))),
            })
            .collect())
    }

    /// `Some((shard_index, num_shards))` on a cluster replica built by
    /// [`Sirius::shard_replicas`], `None` on an unsharded instance.
    pub fn shard_id(&self) -> Option<(u32, u32)> {
        self.shards
            .as_ref()
            .map(|(i, dir)| (*i, dir.num_shards() as u32))
    }

    fn venue_scene_seed(seed: u64, venue_index: usize) -> u64 {
        seed.wrapping_mul(0x1234_5679)
            .wrapping_add(venue_index as u64 * 101 + 3)
    }

    /// The trained speech recognizer.
    pub fn asr(&self) -> &AsrSystem {
        &self.asr
    }

    /// The question-answering engine.
    pub fn qa(&self) -> &QaEngine {
        &self.qa
    }

    /// The image database.
    pub fn imm(&self) -> &ImageDatabase {
        &self.imm
    }

    /// The venues indexed in the image database, in [`ImageId`] order.
    ///
    /// [`ImageId`]: sirius_vision::ImageId
    pub fn venues(&self) -> &[String] {
        &self.venues
    }

    /// The pristine database scene for a venue (by index into
    /// [`Sirius::venues`]); query views are derived from it.
    ///
    /// # Panics
    ///
    /// Panics if `venue_index` is out of range.
    pub fn venue_scene(&self, venue_index: usize) -> GrayImage {
        assert!(venue_index < self.venues.len(), "venue index out of range");
        let (w, h) = self.config.image_size;
        vsynth::generate_scene(Self::venue_scene_seed(self.config.seed, venue_index), w, h)
    }

    /// Applies a multicore execution policy to every service (acoustic
    /// scoring, SURF + ANN voting, QA filters + CRF). Responses are
    /// bit-identical to the serial path at every thread count and strategy.
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.config.exec = policy;
        self.asr.set_exec_policy(policy);
        self.qa.set_exec_policy(policy);
        self.imm.set_exec_policy(policy);
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &SiriusConfig {
        &self.config
    }

    /// Serializes the fully trained assistant: the complete build
    /// configuration, ASR models, QA corpus + CRF, the image database and
    /// the venue table. Restoring with [`Sirius::from_bytes`] skips all
    /// training. The execution policy is a runtime knob and is not saved.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = sirius_codec::Encoder::new();
        e.tag("sirius_v2");
        e.u64(self.config.seed);
        e.u32(self.config.image_size.0 as u32);
        e.u32(self.config.image_size.1 as u32);
        encode_corpus_config(&mut e, &self.config.corpus);
        encode_asr_config(&mut e, &self.config.asr);
        e.u32(self.config.qa.top_k as u32);
        encode_match_config(&mut e, &self.config.imm);
        e.u32(self.config.crf_train_sentences as u32);
        e.str_slice(&self.venues);
        e.bytes(&self.asr.to_bytes());
        e.bytes(&self.qa.to_bytes());
        e.bytes(&self.imm.to_bytes());
        e.into_bytes()
    }

    /// Restores an assistant saved with [`Sirius::to_bytes`], including the
    /// build configuration (so a rebuild from the restored config regenerates
    /// the same corpus, venues and scenes). The execution policy resets to
    /// serial; re-apply it with [`Sirius::set_exec_policy`].
    ///
    /// # Errors
    ///
    /// Fails on malformed, truncated or inconsistent bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, sirius_codec::DecodeError> {
        let mut d = sirius_codec::Decoder::new(bytes);
        d.tag("sirius_v2")?;
        let seed = d.u64()?;
        let w = d.u32()? as usize;
        let h = d.u32()? as usize;
        let corpus = decode_corpus_config(&mut d)?;
        let asr_config = decode_asr_config(&mut d)?;
        let qa_config = QaConfig {
            top_k: d.u32()? as usize,
        };
        let imm_config = decode_match_config(&mut d)?;
        let crf_train_sentences = d.u32()? as usize;
        let venues = d.str_vec()?;
        let asr = AsrSystem::from_bytes(&d.bytes_vec()?)?;
        let qa = QaEngine::from_bytes(&d.bytes_vec()?)?;
        let imm = ImageDatabase::from_bytes(&d.bytes_vec()?)?;
        d.finish()?;
        if imm.num_images() != venues.len() {
            return Err(sirius_codec::DecodeError {
                message: "image database does not match venue table".into(),
                offset: 0,
            });
        }
        let config = SiriusConfig {
            seed,
            corpus,
            asr: asr_config,
            qa: qa_config,
            imm: imm_config,
            image_size: (w.max(1), h.max(1)),
            crf_train_sentences,
            exec: ExecPolicy::serial(),
        };
        Ok(Self {
            asr,
            classifier: QueryClassifier::new(),
            qa,
            imm,
            venues,
            config,
            shards: None,
        })
    }

    /// Processes a query end-to-end with the default (GMM) acoustic model.
    ///
    /// A thin synchronous wrapper over the staged path
    /// ([`Sirius::try_process`]): both invoke the identical stage methods in
    /// the identical order, so outputs are bit-identical to the
    /// per-stage-queued `sirius-server` runtime by construction.
    pub fn process(&self, input: &SiriusInput) -> SiriusResponse {
        self.process_with(input, AcousticModelKind::Gmm)
    }

    /// Processes a query end-to-end, choosing the acoustic model.
    ///
    /// Infallible for compatibility: the staged path can only fail on an
    /// internal invariant violation ([`SiriusError::VenueOutOfRange`], which
    /// a correctly built instance never produces), and that case degrades to
    /// an unanswered response instead of panicking.
    pub fn process_with(&self, input: &SiriusInput, acoustic: AcousticModelKind) -> SiriusResponse {
        self.try_process_with(input, acoustic)
            .unwrap_or_else(|_| SiriusResponse {
                recognized: String::new(),
                outcome: SiriusOutcome::Answer(None),
                matched_venue: None,
                timing: StageTiming::default(),
            })
    }

    /// Fallible end-to-end processing with the default (GMM) acoustic model.
    pub fn try_process(&self, input: &SiriusInput) -> Result<SiriusResponse, SiriusError> {
        self.try_process_with(input, AcousticModelKind::Gmm)
    }

    /// Fallible end-to-end processing: the synchronous composition of the
    /// four typed stages (ASR → classify → IMM → QA). This is the reference
    /// path the staged `sirius-server` runtime must match bit-for-bit.
    pub fn try_process_with(
        &self,
        input: &SiriusInput,
        acoustic: AcousticModelKind,
    ) -> Result<SiriusResponse, SiriusError> {
        let t_total = Instant::now();

        let asr = self.stage_asr(AsrRequest {
            audio: input.audio.clone(),
            acoustic,
        })?;
        let classify = self.stage_classify(ClassifyRequest {
            recognized: asr.recognized.clone(),
        })?;

        if let Some(action) = classify.action {
            return Ok(SiriusResponse {
                recognized: asr.recognized,
                outcome: SiriusOutcome::Action(action),
                matched_venue: None,
                timing: StageTiming {
                    asr: asr.timing,
                    classify: classify.elapsed,
                    qa: None,
                    imm: None,
                    total: t_total.elapsed(),
                },
            });
        }

        let imm = self.stage_imm(ImmRequest {
            question: asr.recognized.clone(),
            image: input.image.clone(),
        })?;
        let qa = self.stage_qa(QaRequest {
            question: imm.question,
        })?;

        Ok(SiriusResponse {
            recognized: asr.recognized,
            outcome: SiriusOutcome::Answer(qa.answer),
            matched_venue: imm.matched_venue,
            timing: StageTiming {
                asr: asr.timing,
                classify: classify.elapsed,
                qa: Some(qa.breakdown),
                imm: imm.timing,
                total: t_total.elapsed(),
            },
        })
    }

    /// Stage 1: speech recognition.
    pub fn stage_asr(&self, req: AsrRequest) -> Result<AsrResponse, SiriusError> {
        let out = self.asr.recognize(&req.audio, req.acoustic);
        Ok(AsrResponse {
            recognized: out.text,
            timing: out.timing,
        })
    }

    /// Stage 2: query classification (action extraction included, so the
    /// routing decision is complete when the message leaves the stage).
    pub fn stage_classify(&self, req: ClassifyRequest) -> Result<ClassifyResponse, SiriusError> {
        let t = Instant::now();
        let class = self.classifier.classify(&req.recognized);
        let action = (class == QueryClass::Action).then(|| {
            self.classifier
                .action(&req.recognized)
                .unwrap_or(DeviceAction {
                    action: "unknown".to_owned(),
                    command: req.recognized.clone(),
                })
        });
        Ok(ClassifyResponse {
            class,
            action,
            elapsed: t.elapsed(),
        })
    }

    /// Stage 3 (VIQ only): image matching, then deictic query rewriting.
    /// Without an image the stage passes the question through untouched.
    pub fn stage_imm(&self, req: ImmRequest) -> Result<ImmResponse, SiriusError> {
        let ImmRequest {
            mut question,
            image,
        } = req;
        let mut timing = None;
        let mut matched_venue = None;
        if let Some(image) = &image {
            let result = match &self.shards {
                // Unsharded: one budgeted ANN search over the whole index.
                None => self.imm.match_image(image),
                // Replica: extract features once, scatter the candidate
                // search across every shard, merge deterministically.
                Some((_, directory)) => {
                    let features = self.imm.extract_query(image);
                    let partials: Vec<_> = directory
                        .imm
                        .iter()
                        .map(|shard| shard.match_partial(&features))
                        .collect();
                    self.imm.merge_partials(&features, &partials)
                }
            };
            timing = Some(result.timing);
            if let Some(id) = result.best {
                let venue = self
                    .venues
                    .get(id.0 as usize)
                    .ok_or(SiriusError::VenueOutOfRange {
                        image_id: id.0,
                        venues: self.venues.len(),
                    })?
                    .clone();
                question = rewrite_deictic(&question, &venue);
                matched_venue = Some(venue);
            }
        }
        Ok(ImmResponse {
            question,
            matched_venue,
            timing,
        })
    }

    /// Stage 4: question answering.
    pub fn stage_qa(&self, req: QaRequest) -> Result<QaResponse, SiriusError> {
        let result = match &self.shards {
            // Unsharded: retrieval runs on the local full index.
            None => self.qa.answer(&req.question),
            // Replica: analysis, filters and extraction run locally, but
            // retrieval scatters to every shard's posting lists and merges
            // under the shared (score, doc) total order — bit-identical to
            // the unsharded search at any shard count.
            Some((_, directory)) => self.qa.answer_with_retrieval(&req.question, |query, k| {
                sirius_search::merge_hits(
                    directory.search.iter().map(|shard| shard.search(query, k)),
                    k,
                )
            }),
        };
        Ok(QaResponse {
            answer: result.answer,
            breakdown: result.breakdown,
        })
    }
}

fn encode_corpus_config(e: &mut sirius_codec::Encoder, c: &CorpusConfig) {
    e.u32(c.docs_per_fact as u32);
    e.u32(c.filler_docs as u32);
    e.u32(c.filler_sentences_per_doc as u32);
    e.f64(c.distractor_fact_prob);
}

fn decode_corpus_config(
    d: &mut sirius_codec::Decoder<'_>,
) -> Result<CorpusConfig, sirius_codec::DecodeError> {
    Ok(CorpusConfig {
        docs_per_fact: d.u32()? as usize,
        filler_docs: d.u32()? as usize,
        filler_sentences_per_doc: d.u32()? as usize,
        distractor_fact_prob: d.f64()?,
    })
}

fn encode_asr_config(e: &mut sirius_codec::Encoder, c: &AsrTrainConfig) {
    e.u32(c.reps as u32);
    e.u32(c.gmm_components as u32);
    e.u32(c.em_iters as u32);
    e.u32(c.dnn_hidden as u32);
    e.u32(c.dnn_epochs as u32);
    e.u32(c.dnn_frame_cap as u32);
    e.u32(c.dnn_context as u32);
}

fn decode_asr_config(
    d: &mut sirius_codec::Decoder<'_>,
) -> Result<AsrTrainConfig, sirius_codec::DecodeError> {
    Ok(AsrTrainConfig {
        reps: d.u32()? as usize,
        gmm_components: d.u32()? as usize,
        em_iters: d.u32()? as usize,
        dnn_hidden: d.u32()? as usize,
        dnn_epochs: d.u32()? as usize,
        dnn_frame_cap: d.u32()? as usize,
        dnn_context: d.u32()? as usize,
    })
}

fn encode_match_config(e: &mut sirius_codec::Encoder, c: &MatchConfig) {
    e.u32(c.surf.octaves as u32);
    e.f32(c.surf.threshold);
    e.u32(c.surf.init_step as u32);
    e.bool(c.surf.upright);
    e.f32(c.ratio);
    match c.budget {
        SearchBudget::Exact => e.u32(0),
        SearchBudget::MaxChecks(n) => e.u32(n as u32),
    };
}

fn decode_match_config(
    d: &mut sirius_codec::Decoder<'_>,
) -> Result<MatchConfig, sirius_codec::DecodeError> {
    let surf = SurfConfig {
        octaves: d.u32()? as usize,
        threshold: d.f32()?,
        init_step: d.u32()? as usize,
        upright: d.bool()?,
        ..SurfConfig::default()
    };
    let ratio = d.f32()?;
    let budget = match d.u32()? {
        0 => SearchBudget::Exact,
        n => SearchBudget::MaxChecks(n as usize),
    };
    Ok(MatchConfig {
        surf,
        ratio,
        budget,
    })
}

/// Replaces deictic phrases ("this restaurant", "this place", ...) with the
/// venue name resolved by image matching.
fn rewrite_deictic(question: &str, venue: &str) -> String {
    let words: Vec<&str> = question.split_whitespace().collect();
    for phrase in [
        &["this", "restaurant"][..],
        &["this", "place"],
        &["this", "shop"],
        &["this", "cafe"],
        &["this", "store"],
        &["it"],
    ] {
        if let Some(at) = words
            .windows(phrase.len())
            .position(|w| w.iter().zip(phrase).all(|(a, b)| a.eq_ignore_ascii_case(b)))
        {
            let mut out: Vec<&str> = Vec::with_capacity(words.len());
            out.extend_from_slice(&words[..at]);
            out.push(venue);
            out.extend_from_slice(&words[at + phrase.len()..]);
            return out.join(" ");
        }
    }
    format!("{question} {venue}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrite_replaces_first_deictic_phrase() {
        assert_eq!(
            rewrite_deictic("when does this restaurant close", "Harbor Grill"),
            "when does Harbor Grill close"
        );
        assert_eq!(
            rewrite_deictic("when does it close", "Crown Books"),
            "when does Crown Books close"
        );
        // No deictic phrase: the venue is appended as context.
        assert_eq!(
            rewrite_deictic("when does the kitchen close", "Harbor Grill"),
            "when does the kitchen close Harbor Grill"
        );
    }
}
