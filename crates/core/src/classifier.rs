//! Query classifier (the QC stage of paper Figure 2).
//!
//! After ASR, the translated text "goes through a Query Classifier (QC) that
//! decides if the speech is an action or a question. If it is an action, the
//! command is sent back to the mobile device for execution." The classifier
//! is regex-driven, like OpenEphyra's input filters.

use sirius_nlp::regex::Regex;

/// Classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// An actionable command for the device.
    Action,
    /// A question for the QA back-end.
    Question,
}

/// The device action extracted from a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAction {
    /// Canonical action name (e.g. "alarm", "call", "play").
    pub action: String,
    /// The full command text, for the device to parse arguments from.
    pub command: String,
}

/// Regex-based action/question classifier.
#[derive(Debug)]
pub struct QueryClassifier {
    question_start: Regex,
    imperatives: Vec<(Regex, &'static str)>,
}

/// Imperative verb patterns and the canonical action each maps to.
const IMPERATIVE_ACTIONS: [(&str, &str); 16] = [
    (r"^set (my |the )?alarm", "alarm"),
    (r"^call ", "call"),
    (r"^(play|resume) ", "play"),
    (r"^open ", "open"),
    (r"^send ", "send"),
    (r"^turn (on|off|up|down)?", "turn"),
    (r"^start (a |the )?timer", "timer"),
    (r"^start navigation", "navigate"),
    (r"^take (a |the )?(quick )?note", "note"),
    (r"^take a picture", "camera"),
    (r"^show ", "show"),
    (r"^stop ", "stop"),
    (r"^(increase|decrease|raise|lower) (the )?volume", "volume"),
    (r"^check ", "check"),
    (r"^mute ", "mute"),
    (r"^(remind|wake) ", "remind"),
];

impl QueryClassifier {
    /// Builds the classifier (compiles the built-in patterns).
    pub fn new() -> Self {
        Self {
            question_start: Regex::new(
                r"^(who|what|where|when|which|why|how|is|are|was|were|does|do|did|can) ",
            )
            .expect("built-in pattern"),
            imperatives: IMPERATIVE_ACTIONS
                .iter()
                .map(|(p, a)| (Regex::new(p).expect("built-in pattern"), *a))
                .collect(),
        }
    }

    /// Classifies the recognized text.
    pub fn classify(&self, text: &str) -> QueryClass {
        let lower = normalize(text);
        if self.question_start.is_match(&lower) {
            return QueryClass::Question;
        }
        if self.imperatives.iter().any(|(re, _)| re.is_match(&lower)) {
            return QueryClass::Action;
        }
        // Default: route to QA, like the paper's pipeline (questions are the
        // common case for non-imperative phrasings).
        QueryClass::Question
    }

    /// Extracts the device action from a command, if it is one.
    pub fn action(&self, text: &str) -> Option<DeviceAction> {
        let lower = normalize(text);
        self.imperatives
            .iter()
            .find(|(re, _)| re.is_match(&lower))
            .map(|(_, action)| DeviceAction {
                action: (*action).to_owned(),
                command: lower.clone(),
            })
    }
}

impl Default for QueryClassifier {
    fn default() -> Self {
        Self::new()
    }
}

fn normalize(text: &str) -> String {
    let mut s = text.to_lowercase();
    s.retain(|c| c.is_alphanumeric() || c == ' ');
    // Collapse whitespace and guarantee a trailing space so `^word $`-style
    // anchored patterns can match single-word commands too.
    let collapsed: String = s.split_whitespace().collect::<Vec<_>>().join(" ");
    format!("{collapsed} ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{VOICE_COMMANDS, VOICE_IMAGE_QUERIES, VOICE_QUERIES};

    #[test]
    fn all_voice_commands_classify_as_actions() {
        let qc = QueryClassifier::new();
        for (text, expected_action) in VOICE_COMMANDS {
            assert_eq!(qc.classify(text), QueryClass::Action, "{text}");
            let action = qc
                .action(text)
                .unwrap_or_else(|| panic!("no action: {text}"));
            assert_eq!(action.action, expected_action, "{text}");
        }
    }

    #[test]
    fn all_voice_queries_classify_as_questions() {
        let qc = QueryClassifier::new();
        for (text, _) in VOICE_QUERIES {
            assert_eq!(qc.classify(text), QueryClass::Question, "{text}");
            assert!(qc.action(text).is_none(), "{text}");
        }
        for (text, _, _) in VOICE_IMAGE_QUERIES {
            assert_eq!(qc.classify(text), QueryClass::Question, "{text}");
        }
    }

    #[test]
    fn punctuation_and_case_are_ignored() {
        let qc = QueryClassifier::new();
        assert_eq!(qc.classify("SET MY ALARM FOR 8AM!!!"), QueryClass::Action);
        assert_eq!(
            qc.classify("What... is the capital of Italy?"),
            QueryClass::Question
        );
    }

    #[test]
    fn ambiguous_text_defaults_to_question() {
        let qc = QueryClassifier::new();
        assert_eq!(qc.classify("the weather in paris"), QueryClass::Question);
    }
}
