//! Typed pipeline errors.
//!
//! The staged runtime (`sirius-server`) runs every pipeline stage on pooled
//! worker threads; a malformed request or an overload condition must surface
//! as a value the caller can match on, never as a panic that takes a worker
//! down. [`SiriusError`] is that value: admission control rejections,
//! shutdown races and internal invariant violations are all typed here, and
//! the fallible pipeline entry points ([`Sirius::try_process`]) return it.
//!
//! [`Sirius::try_process`]: crate::pipeline::Sirius::try_process

/// Why a query could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiriusError {
    /// Admission control shed the request: the named stage's bounded queue
    /// was full. The client should back off and retry (the serving-system
    /// alternative is unbounded queueing, which turns overload into
    /// unbounded latency for every queued request).
    Overloaded {
        /// The stage whose queue rejected the request.
        stage: &'static str,
    },
    /// The runtime is shutting down and no longer accepts (or can complete)
    /// requests.
    ShuttingDown,
    /// Image matching returned an image id outside the venue table — an
    /// internal invariant violation (the database and venue table are built
    /// together), reported as a value so a serving worker survives it.
    VenueOutOfRange {
        /// The offending image id.
        image_id: u32,
        /// The venue-table size it must be below.
        venues: usize,
    },
    /// A stage worker panicked while processing this request. The worker
    /// itself survives (the panic is caught at the pool boundary); only the
    /// one request is lost.
    StagePanicked {
        /// The stage whose handler panicked.
        stage: &'static str,
    },
    /// A bounded wait for the response elapsed before the query completed.
    /// The query is still in flight: the caller keeps the ticket and may
    /// wait again.
    Timeout {
        /// How long the caller waited before giving up.
        waited: std::time::Duration,
    },
    /// The request's audio was malformed for streaming ingestion (empty
    /// chunk, NaN/infinite sample, or a zero-length utterance flush).
    /// Carries the typed [`sirius_speech::StreamingError`] rendered as
    /// text so this enum stays `Eq` and wire-friendly.
    InvalidAudio {
        /// Human-readable cause (the streaming error's display form).
        reason: String,
    },
    /// Deadline-aware admission control shed the request: the expected
    /// end-to-end sojourn (live queue backlog × recent mean service, summed
    /// over the stages) already exceeds the caller's deadline, so admitting
    /// the query would only spend service time on an answer that arrives
    /// too late. Also completes a query that was admitted but expired in a
    /// queue before any worker picked it up; such jobs are dropped at
    /// dequeue and consume no stage service time.
    DeadlineUnmeetable {
        /// The expected (or, for an expired job, already elapsed) sojourn.
        expected: std::time::Duration,
        /// The deadline the caller asked for (a tenant class's SLO when the
        /// query entered through classed admission).
        deadline: std::time::Duration,
        /// Retry hint: how long until the backlog ahead of the query drains
        /// enough that admission succeeds, assuming the pipeline keeps
        /// draining at its current service rate and no new queries are
        /// admitted in between. For a plain deadline submit this is
        /// `expected − deadline`; for classed admission it is `expected −
        /// budget(class)` — the backlog must drain to the class's
        /// *weighted* admission budget (`slo × weight / max_weight`), so a
        /// low-weight class's hint is strictly longer than the raw-SLO hint
        /// and its retries don't undershoot while premium traffic still
        /// holds the larger share of the backlog.
        retry_after: std::time::Duration,
    },
    /// A classed submit named a tenant class the server was not configured
    /// with. Carries the offending name so multi-tenant clients can log
    /// exactly which tier was mis-addressed.
    UnknownTenantClass {
        /// The class name the submit asked for.
        class: String,
    },
}

impl std::fmt::Display for SiriusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiriusError::Overloaded { stage } => {
                write!(f, "overloaded: the {stage} stage queue is full")
            }
            SiriusError::ShuttingDown => f.write_str("the runtime is shutting down"),
            SiriusError::VenueOutOfRange { image_id, venues } => write!(
                f,
                "image id {image_id} outside the venue table ({venues} venues)"
            ),
            SiriusError::StagePanicked { stage } => {
                write!(f, "the {stage} stage panicked while serving this request")
            }
            SiriusError::Timeout { waited } => {
                write!(f, "no response after waiting {waited:?}")
            }
            SiriusError::InvalidAudio { reason } => {
                write!(f, "invalid audio: {reason}")
            }
            SiriusError::DeadlineUnmeetable {
                expected,
                deadline,
                retry_after,
            } => write!(
                f,
                "deadline unmeetable: expected sojourn {expected:?} exceeds deadline \
                 {deadline:?}; retry after {retry_after:?}"
            ),
            SiriusError::UnknownTenantClass { class } => {
                write!(f, "unknown tenant class {class:?}")
            }
        }
    }
}

impl std::error::Error for SiriusError {}

/// Why a cluster front-end could not serve (or be built for) a query.
///
/// The routing layer (`sirius-server`'s `SiriusCluster`) sits in front of N
/// replica runtimes; its failures are either configuration errors (no
/// replicas, impossible shard counts) or a replica-level [`SiriusError`]
/// annotated with *which* replica produced it, so a load harness can tell a
/// router bug from an overloaded backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The cluster was configured with zero replicas.
    NoReplicas,
    /// The requested shard count cannot partition the data planes.
    InvalidShardCount {
        /// The shard count asked for.
        requested: u32,
    },
    /// A replica failed to serve the routed query.
    Replica {
        /// Index of the replica the query was routed to.
        replica: usize,
        /// The replica's own error.
        source: SiriusError,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoReplicas => f.write_str("cluster has no replicas"),
            ClusterError::InvalidShardCount { requested } => {
                write!(f, "invalid shard count {requested}")
            }
            ClusterError::Replica { replica, source } => {
                write!(f, "replica {replica}: {source}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Replica { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<sirius_speech::StreamingError> for SiriusError {
    fn from(e: sirius_speech::StreamingError) -> Self {
        SiriusError::InvalidAudio {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_stage() {
        let e = SiriusError::Overloaded { stage: "asr" };
        assert!(e.to_string().contains("asr"));
        let e = SiriusError::StagePanicked { stage: "qa" };
        assert!(e.to_string().contains("qa"));
        assert!(SiriusError::ShuttingDown.to_string().contains("shutting"));
        let e = SiriusError::VenueOutOfRange {
            image_id: 9,
            venues: 3,
        };
        assert!(e.to_string().contains('9'));
        let e = SiriusError::Timeout {
            waited: std::time::Duration::from_millis(250),
        };
        assert!(e.to_string().contains("250"));
        let e = SiriusError::DeadlineUnmeetable {
            expected: std::time::Duration::from_millis(90),
            deadline: std::time::Duration::from_millis(40),
            retry_after: std::time::Duration::from_millis(50),
        };
        let text = e.to_string();
        assert!(
            text.contains("90") && text.contains("40") && text.contains("50"),
            "{text}"
        );
    }

    #[test]
    fn cluster_errors_display_and_chain() {
        assert!(ClusterError::NoReplicas.to_string().contains("no replicas"));
        assert!(ClusterError::InvalidShardCount { requested: 0 }
            .to_string()
            .contains('0'));
        let e = ClusterError::Replica {
            replica: 2,
            source: SiriusError::Overloaded { stage: "asr" },
        };
        let text = e.to_string();
        assert!(text.contains("replica 2") && text.contains("asr"), "{text}");
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(ClusterError::NoReplicas.source().is_none());
    }

    #[test]
    fn streaming_errors_convert_to_invalid_audio() {
        let e: SiriusError = sirius_speech::StreamingError::NonFiniteSample { index: 11 }.into();
        match &e {
            SiriusError::InvalidAudio { reason } => assert!(reason.contains("index 11")),
            other => panic!("expected InvalidAudio, got {other:?}"),
        }
        assert!(e.to_string().contains("invalid audio"));
        let e: SiriusError = sirius_speech::StreamingError::EmptyChunk.into();
        assert!(matches!(e, SiriusError::InvalidAudio { .. }));
    }
}
