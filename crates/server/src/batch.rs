//! Cross-query dynamic batching for the ASR stage.
//!
//! The ~3x GEMM win from `Dnn::forward_batch_into` (BENCH_kernels) stops at
//! query boundaries: each ASR worker scores one query's 16-frame blocks per
//! forward pass, so under load the server runs many small GEMMs instead of
//! few large ones. This module adds the serving trick production inference
//! systems use (IBM's Deep Learning Service, wav2letter++'s throughput
//! regime): a **batch collector** thread in front of the ASR pool that
//! coalesces DNN frame blocks from *multiple in-flight queries* into one
//! GEMM call.
//!
//! ```text
//!  ASR worker 1 ─┐ score_windows(blockₐ)
//!  ASR worker 2 ─┼──▶ [batch queue] ─▶ collector ─▶ one GEMM over
//!  ASR worker 3 ─┘      (gather until      │        [blockₐ; blockᵦ; …]
//!                        max_batch or      └─▶ scatter rows back to the
//!                        max_delay)            per-query reply slots
//! ```
//!
//! **Policy.** [`BatchPolicy`]`{ max_batch, max_delay }`: the collector
//! flushes as soon as `max_batch` blocks are gathered (a *full* flush) or
//! the oldest gathered block has waited `max_delay` (a *timeout* flush),
//! whichever comes first. `max_batch = 1` degrades to today's per-query
//! path: the runtime does not even spawn a collector.
//!
//! **Bit-identity.** Both the forward pass and the emission conversion are
//! strictly row-independent (see `sirius_speech::WindowScorer`), so
//! concatenating several queries' windows into one GEMM and scattering the
//! output rows back yields, per query, exactly the bits the query would
//! have produced alone. The equivalence gate (`tests/batching.rs`) checks
//! this end-to-end against the serial pipeline.
//!
//! **Liveness.** The collector is a dedicated thread that never calls back
//! into the worker pool, and workers block only on their own reply slot.
//! The collector exits when every [`BatchHandle`] (held by the ASR workers
//! via their stage) is dropped — it drains the queue, answering every
//! outstanding request, before exiting, so no worker is left waiting. A
//! send that races collector teardown falls back to scoring locally, which
//! is bit-identical anyway.
//!
//! Expired jobs compose with deadline-aware admission for free: the worker
//! pool drops them at dequeue, *before* the stage handler runs, so an
//! abandoned query never occupies a slot in a batch.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sirius::error::SiriusError;
use sirius::pipeline::Sirius;
use sirius::stage::{AsrRequest, AsrResponse, Stage};
use sirius_par::queue::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use sirius_speech::asr::AcousticModelKind;
use sirius_speech::WindowScorer;

use crate::metrics::BatchObs;

/// Governs the ASR batch collector: flush when `max_batch` blocks are
/// gathered or the oldest has waited `max_delay`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most frame blocks coalesced into one GEMM. At 1 (the default) the
    /// runtime spawns no collector and serves exactly the per-query path.
    pub max_batch: usize,
    /// Longest the oldest gathered block may wait for batch-mates before a
    /// partial flush. Latency the policy is willing to trade for
    /// throughput; irrelevant when `max_batch` is 1.
    pub max_delay: std::time::Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 1,
            max_delay: std::time::Duration::from_millis(2),
        }
    }
}

impl BatchPolicy {
    /// A policy coalescing up to `max_batch` blocks within `max_delay`.
    pub fn new(max_batch: usize, max_delay: std::time::Duration) -> Self {
        Self {
            max_batch,
            max_delay,
        }
    }

    /// Whether this policy calls for a collector at all.
    pub fn is_batching(&self) -> bool {
        self.max_batch > 1
    }
}

/// One worker's scoring request: a block of stacked context windows and the
/// slot its emission rows come back through.
struct ScoreRequest {
    x: Vec<f32>,
    rows: usize,
    reply: Arc<ReplySlot>,
}

struct ReplySlot {
    slot: Mutex<Option<Vec<f32>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, out: Vec<f32>) {
        let mut slot = self.slot.lock().expect("reply lock");
        *slot = Some(out);
        self.ready.notify_all();
    }

    fn wait(&self) -> Vec<f32> {
        let mut slot = self.slot.lock().expect("reply lock");
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.ready.wait(slot).expect("reply lock");
        }
    }
}

/// The worker-side end of the batch collector: a [`WindowScorer`] that
/// ships each block to the collector and blocks until the scattered rows
/// come back. Cheap to clone; every ASR worker scores through one.
#[derive(Clone)]
pub struct BatchHandle {
    tx: Sender<ScoreRequest>,
    /// Local scorer used if a send races collector teardown — bit-identical
    /// to the batched path, so the fallback is invisible in the output.
    fallback: Arc<dyn WindowScorer>,
}

impl WindowScorer for BatchHandle {
    fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
        let reply = ReplySlot::new();
        let req = ScoreRequest {
            x: x.to_vec(),
            rows,
            reply: Arc::clone(&reply),
        };
        if self.tx.send(req).is_err() {
            return self.fallback.score_windows(x, rows);
        }
        reply.wait()
    }
}

impl std::fmt::Debug for BatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle")
            .field("queued", &self.tx.len())
            .finish_non_exhaustive()
    }
}

/// Spawns the collector thread and returns the worker-side [`BatchHandle`].
///
/// The collector gathers blocks per `policy`, scores each batch with one
/// `scorer.score_windows` call, scatters the rows back, and records every
/// flush into `obs` (`asr.batch_size` histogram, full/timeout flush
/// counters). It exits — after draining and answering every queued request
/// — once all handle clones are dropped. `workers` sizes the request queue
/// so a full worker pool can have one block in flight each without
/// blocking the enqueue.
pub fn spawn_batch_collector(
    scorer: Arc<dyn WindowScorer>,
    policy: BatchPolicy,
    obs: Arc<BatchObs>,
    workers: usize,
) -> (BatchHandle, JoinHandle<()>) {
    let depth = policy.max_batch.max(workers).max(1);
    let (tx, rx) = bounded::<ScoreRequest>(depth);
    let handle = BatchHandle {
        tx,
        fallback: Arc::clone(&scorer),
    };
    let collector = std::thread::Builder::new()
        .name("sirius-asr-batch".into())
        .spawn(move || collector_loop(scorer.as_ref(), policy, &obs, &rx))
        .expect("spawn batch collector");
    (handle, collector)
}

fn collector_loop(
    scorer: &dyn WindowScorer,
    policy: BatchPolicy,
    obs: &BatchObs,
    rx: &Receiver<ScoreRequest>,
) {
    let max_batch = policy.max_batch.max(1);
    while let Some(first) = rx.recv() {
        let mut batch = vec![first];
        if max_batch > 1 {
            // The delay clock starts at the *oldest* gathered block. An
            // unrepresentable deadline (near-MAX delay) means "wait for a
            // full batch or close".
            let deadline = Instant::now().checked_add(policy.max_delay);
            while batch.len() < max_batch {
                // Drain whatever is already queued before sleeping.
                match rx.try_recv() {
                    Ok(req) => {
                        batch.push(req);
                        continue;
                    }
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => {}
                }
                match deadline {
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(req) => batch.push(req),
                            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                                break
                            }
                        }
                    }
                    None => match rx.recv() {
                        Some(req) => batch.push(req),
                        None => break,
                    },
                }
            }
        }
        flush(scorer, obs, max_batch, batch);
    }
}

/// Scores one gathered batch with a single `score_windows` call and
/// scatters the emission rows back to each request's reply slot, in gather
/// order — row independence makes every scattered slice bit-identical to
/// scoring that request alone.
fn flush(scorer: &dyn WindowScorer, obs: &BatchObs, max_batch: usize, batch: Vec<ScoreRequest>) {
    obs.size.record(batch.len() as u64);
    if batch.len() >= max_batch {
        obs.flush_full.inc();
    } else {
        obs.flush_timeout.inc();
    }
    if batch.len() == 1 {
        // Nothing to coalesce; skip the concatenation copy.
        let req = batch.into_iter().next().expect("one request");
        req.reply.fulfill(scorer.score_windows(&req.x, req.rows));
        return;
    }
    let total_rows: usize = batch.iter().map(|r| r.rows).sum();
    let mut x = Vec::with_capacity(batch.iter().map(|r| r.x.len()).sum());
    for req in &batch {
        x.extend_from_slice(&req.x);
    }
    let out = scorer.score_windows(&x, total_rows);
    let out_width = out.len().checked_div(total_rows).unwrap_or(0);
    let mut offset = 0;
    for req in batch {
        let take = req.rows * out_width;
        req.reply.fulfill(out[offset..offset + take].to_vec());
        offset += take;
    }
}

/// [`WindowScorer`] view over a shared assistant's DNN scorer, the
/// collector's backing model (and the handle's teardown fallback).
pub struct SiriusWindowScorer(Arc<Sirius>);

impl SiriusWindowScorer {
    /// Wraps the assistant's trained DNN acoustic scorer.
    pub fn new(sirius: Arc<Sirius>) -> Self {
        Self(sirius)
    }
}

impl WindowScorer for SiriusWindowScorer {
    fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
        self.0.asr().dnn_scorer().score_windows(x, rows)
    }
}

/// ASR stage whose DNN block GEMMs are routed through the batch collector.
/// GMM queries (no GEMM to batch) take the ordinary stage path unchanged.
pub struct BatchedAsrStage {
    sirius: Arc<Sirius>,
    handle: BatchHandle,
}

impl BatchedAsrStage {
    /// An ASR stage scoring DNN queries through `handle`.
    pub fn new(sirius: Arc<Sirius>, handle: BatchHandle) -> Self {
        Self { sirius, handle }
    }
}

impl Stage for BatchedAsrStage {
    type Req = AsrRequest;
    type Resp = AsrResponse;

    fn name(&self) -> &'static str {
        "asr"
    }

    fn handle(&self, req: AsrRequest) -> Result<AsrResponse, SiriusError> {
        match req.acoustic {
            AcousticModelKind::Dnn => {
                let out = self
                    .sirius
                    .asr()
                    .recognize_with_window_scorer(&req.audio, &self.handle);
                Ok(AsrResponse {
                    recognized: out.text,
                    timing: out.timing,
                })
            }
            AcousticModelKind::Gmm => self.sirius.stage_asr(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    use sirius_obs::Registry;

    /// Deterministic scorer: each 2-wide input row `[a, b]` maps to the
    /// 3-wide output row `[a, b, a + b]` — a pure per-row function, so any
    /// batching of rows must reproduce it exactly.
    struct RowFn {
        calls: AtomicUsize,
        rows_seen: AtomicUsize,
    }

    impl RowFn {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                calls: AtomicUsize::new(0),
                rows_seen: AtomicUsize::new(0),
            })
        }
    }

    impl WindowScorer for RowFn {
        fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.rows_seen.fetch_add(rows, Ordering::Relaxed);
            assert_eq!(x.len(), rows * 2, "row width");
            let mut out = Vec::with_capacity(rows * 3);
            for r in 0..rows {
                let (a, b) = (x[r * 2], x[r * 2 + 1]);
                out.extend_from_slice(&[a, b, a + b]);
            }
            out
        }
    }

    fn expected(block: &[f32]) -> Vec<f32> {
        RowFn::new().score_windows(block, block.len() / 2)
    }

    fn obs() -> (Registry, Arc<BatchObs>) {
        let registry = Registry::new();
        let obs = BatchObs::register(&registry, "asr");
        (registry, obs)
    }

    #[test]
    fn default_policy_does_not_batch() {
        let policy = BatchPolicy::default();
        assert_eq!(policy.max_batch, 1);
        assert!(!policy.is_batching());
        assert!(BatchPolicy::new(8, Duration::from_millis(1)).is_batching());
    }

    #[test]
    fn single_requests_round_trip_through_the_collector() {
        let scorer = RowFn::new();
        let (registry, obs) = obs();
        let policy = BatchPolicy::new(1, Duration::from_millis(1));
        let (handle, collector) =
            spawn_batch_collector(Arc::<RowFn>::clone(&scorer) as _, policy, obs, 2);
        let block = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let out = handle.score_windows(&block, 3);
        assert_eq!(out, expected(&block));
        drop(handle);
        collector.join().expect("collector exits");
        let snap = registry.snapshot();
        let sizes = snap.histogram("asr.batch_size").unwrap();
        assert_eq!(sizes.count, 1);
        assert_eq!(sizes.max, 1);
        assert_eq!(snap.counter("asr.batch_flush_full"), Some(1));
        assert_eq!(snap.counter("asr.batch_flush_timeout"), Some(0));
    }

    #[test]
    fn concurrent_blocks_are_coalesced_and_scattered_exactly() {
        let scorer = RowFn::new();
        let (registry, obs) = obs();
        // Generous delay: with 4 senders gated on a barrier the collector
        // should usually see a full batch, and *must* see correct rows.
        let policy = BatchPolicy::new(4, Duration::from_millis(200));
        let (handle, collector) =
            spawn_batch_collector(Arc::<RowFn>::clone(&scorer) as _, policy, obs, 4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let senders: Vec<_> = (0..4u32)
            .map(|p| {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let base = p as f32 * 100.0;
                    let block = [base, base + 1.0, base + 2.0, base + 3.0];
                    barrier.wait();
                    let out = handle.score_windows(&block, 2);
                    assert_eq!(out, expected(&block), "producer {p}");
                })
            })
            .collect();
        for s in senders {
            s.join().expect("sender");
        }
        drop(handle);
        collector.join().expect("collector exits");
        assert_eq!(scorer.rows_seen.load(Ordering::Relaxed), 8, "no row lost");
        let snap = registry.snapshot();
        let sizes = snap.histogram("asr.batch_size").unwrap();
        assert_eq!(sizes.sum, 4, "each block flushed exactly once");
        let flushes = snap.counter("asr.batch_flush_full").unwrap()
            + snap.counter("asr.batch_flush_timeout").unwrap();
        assert_eq!(flushes, sizes.count);
    }

    #[test]
    fn timeout_flushes_a_partial_batch() {
        let scorer = RowFn::new();
        let (registry, obs) = obs();
        // max_batch 8 but only one request in flight: only the delay can
        // flush it.
        let policy = BatchPolicy::new(8, Duration::from_millis(5));
        let (handle, collector) =
            spawn_batch_collector(Arc::<RowFn>::clone(&scorer) as _, policy, obs, 1);
        let block = [9.0f32, 11.0];
        let begun = Instant::now();
        let out = handle.score_windows(&block, 1);
        assert!(begun.elapsed() >= Duration::from_millis(5), "waited out");
        assert_eq!(out, expected(&block));
        drop(handle);
        collector.join().expect("collector exits");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("asr.batch_flush_full"), Some(0));
        assert_eq!(snap.counter("asr.batch_flush_timeout"), Some(1));
    }

    #[test]
    fn send_failure_falls_back_to_local_scoring() {
        // A handle whose collector is gone (receiver dropped) must still
        // answer — locally, through the fallback scorer.
        let scorer = RowFn::new();
        let (tx, rx) = bounded::<ScoreRequest>(1);
        drop(rx);
        let handle = BatchHandle {
            tx,
            fallback: Arc::<RowFn>::clone(&scorer) as _,
        };
        let block = [2.0f32, 3.0];
        let out = handle.score_windows(&block, 1);
        assert_eq!(out, expected(&block));
        assert_eq!(scorer.calls.load(Ordering::Relaxed), 1, "scored locally");
    }
}
