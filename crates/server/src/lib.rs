//! # sirius-server
//!
//! The staged service runtime for the Sirius pipeline: the monolithic
//! [`Sirius::process`] walk decomposed into per-service worker pools
//! connected by bounded MPMC queues, with shed-on-full admission control
//! and graceful shutdown.
//!
//! The paper's datacenter analysis (Figures 16/17, Tables 8/9) models each
//! Sirius service as a queueing server; this crate is that serving system
//! made concrete, so queueing delay, throughput and overload behaviour can
//! be *measured* and checked against the `sirius_dcsim::queue::Mm1`
//! prediction instead of only computed from it.
//!
//! Outputs are bit-identical to the synchronous pipeline: both paths invoke
//! the same typed stage methods ([`sirius::stage`]) in the same order per
//! query; the runtime only changes *where* they run.
//!
//! ```no_run
//! use std::sync::Arc;
//! use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput};
//! use sirius_server::{ServerConfig, SiriusServer};
//!
//! let sirius = Arc::new(Sirius::build(SiriusConfig::default()));
//! let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::with_workers(4));
//! let input = SiriusInput { audio: vec![0.0; 16_000], image: None };
//! match server.process_sync(input) {
//!     Ok(response) => println!("{:?}", response.outcome),
//!     Err(err) => eprintln!("shed: {err}"),
//! }
//! server.shutdown();
//! ```
//!
//! [`Sirius::process`]: sirius::pipeline::Sirius::process

#![warn(missing_docs)]

pub mod batch;
pub mod cluster;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod qos;
pub mod runtime;
pub mod stream;
pub mod wire;

pub use batch::{spawn_batch_collector, BatchHandle, BatchPolicy, BatchedAsrStage};
pub use cluster::{ClusterConfig, ClusterTicket, RoutePolicy, SiriusCluster};
pub use metrics::{BatchObs, ServerMetrics, StageObs, StreamObs, STAGES};
pub use net::{http_get, NetClient, NetClientError, NetConfig, NetMetrics, NetServer};
pub use pool::{spawn_stage_pool, Job};
pub use qos::{
    CacheKey, CachePolicy, CachedAnswer, ImageSignature, ResultCaches, TenantClass, TenantObs,
};
pub use runtime::{ServerConfig, SiriusServer, StageConfig, Ticket};
pub use stream::StreamPolicy;
pub use wire::{
    read_frame, Frame, FrameRead, SubmitFrame, WireFault, MAX_FRAME_BODY, PROTOCOL_VERSION,
};

// The runtime shares one trained `Sirius` across every worker thread; this
// compile-time assertion is the whole safety argument.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<sirius::pipeline::Sirius>();
};
