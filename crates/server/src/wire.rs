//! The network front-end's wire protocol: versioned, length-prefixed
//! frames encoded with `sirius-codec`.
//!
//! Every frame is a fixed 10-byte header followed by a codec-encoded body:
//!
//! ```text
//! +----------+---------+------+-------------+- - - - - - -+
//! | magic    | version | type | body length | body        |
//! | "SIRF"   | u8 = 1  | u8   | u32 LE      | (type-      |
//! | 4 bytes  |         |      | ≤ 64 MiB    |  specific)  |
//! +----------+---------+------+-------------+- - - - - - -+
//! ```
//!
//! Three frame types cross the socket:
//!
//! | type | frame | direction | body |
//! |---|---|---|---|
//! | `0x01` | [`Frame::Submit`] | client → server | tenant class, deadline, audio, optional image |
//! | `0x02` | [`Frame::Answer`] | server → client | the full [`SiriusResponse`], timings included |
//! | `0x03` | [`Frame::Error`] | server → client | a typed [`WireFault`] |
//!
//! **Losslessness.** Every [`SiriusError`] and [`ClusterError`] variant maps
//! onto the wire field-for-field — `retry_after` hints, replica indices and
//! stage names included — through exhaustive `match`es
//! ([`encode_sirius_error`]/[`encode_cluster_error`]), so adding an enum
//! variant without extending the mapping is a **compile error**, not a
//! silently dropped error class. Durations travel as `(seconds: u64,
//! subsecond nanos: u32)` pairs, the exact representation `std` uses, so
//! even `Duration::MAX` round-trips bit-exactly.
//!
//! **Hostility.** The decode side trusts nothing: magic/version/type are
//! checked before the body is read, body lengths are capped at
//! [`MAX_FRAME_BODY`] before allocation, bodies must decode completely
//! (`Decoder::finish`), image dimensions must match their pixel payload,
//! and every failure surfaces as a value ([`FrameRead::Malformed`] /
//! [`DecodeError`]) — never a panic. `sirius-codec`'s own allocation
//! preflights bound what a hostile length claim can cost.

use std::io::{self, Read, Write};
use std::time::Duration;

use sirius::error::{ClusterError, SiriusError};
use sirius::pipeline::{SiriusOutcome, SiriusResponse, StageTiming};
use sirius::DeviceAction;
use sirius_codec::{DecodeError, Decoder, Encoder};
use sirius_speech::asr::AsrTiming;
use sirius_vision::db::ImmTiming;
use sirius_vision::image::GrayImage;

use crate::metrics::STAGES;

/// The four magic bytes opening every frame. A connection whose first bytes
/// are not this (or an HTTP `GET `) is answered with a typed protocol error
/// and closed.
pub const MAGIC: [u8; 4] = *b"SIRF";

/// Protocol version stamped into (and checked on) every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed frame-header length: magic (4) + version (1) + type (1) + body
/// length (4).
pub const HEADER_LEN: usize = 10;

/// Upper bound on a frame body. The largest legitimate frame — a
/// voice-image query's audio plus pixels — is a few hundred KiB; anything
/// claiming more than this is hostile and is rejected *before* any
/// allocation.
pub const MAX_FRAME_BODY: u32 = 64 << 20;

const TYPE_SUBMIT: u8 = 0x01;
const TYPE_ANSWER: u8 = 0x02;
const TYPE_ERROR: u8 = 0x03;

/// A query submission: the remote form of
/// [`SiriusServer::submit`](crate::SiriusServer::submit) /
/// [`submit_with_deadline`](crate::SiriusServer::submit_with_deadline) /
/// [`submit_classed`](crate::SiriusServer::submit_classed).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitFrame {
    /// Tenant class for classed (weighted, SLO-gated) admission; empty for
    /// the class-less submit paths.
    pub tenant_class: String,
    /// Deadline in nanoseconds for deadline-aware admission; `0` means no
    /// deadline. Ignored when `tenant_class` is set — the class's SLO is
    /// the deadline then.
    pub deadline_ns: u64,
    /// Mono PCM audio at 16 kHz.
    pub audio: Vec<f32>,
    /// Accompanying image for voice-image queries.
    pub image: Option<GrayImage>,
}

/// A typed failure travelling server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFault {
    /// The peer violated the framing or encoding rules; the offending
    /// detail is carried verbatim so remote clients can log exactly what
    /// the server rejected.
    Protocol {
        /// What was malformed.
        message: String,
    },
    /// The serving cluster failed the query: every [`ClusterError`] /
    /// [`SiriusError`] variant, lossless.
    Cluster(ClusterError),
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::Protocol { message } => write!(f, "protocol violation: {message}"),
            WireFault::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for WireFault {}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: serve this query.
    Submit(SubmitFrame),
    /// Server → client: the query's full response.
    Answer(Box<SiriusResponse>),
    /// Server → client: the query (or the connection) failed, typed.
    Error(WireFault),
}

impl Frame {
    /// Encodes the frame — header and body — into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        let ty = match self {
            Frame::Submit(submit) => {
                encode_submit(&mut enc, submit);
                TYPE_SUBMIT
            }
            Frame::Answer(response) => {
                encode_response(&mut enc, response);
                TYPE_ANSWER
            }
            Frame::Error(fault) => {
                encode_fault(&mut enc, fault);
                TYPE_ERROR
            }
        };
        let body = enc.into_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(ty);
        out.extend_from_slice(
            &u32::try_from(body.len())
                .expect("frame bodies are bounded far below u32::MAX")
                .to_le_bytes(),
        );
        out.extend_from_slice(&body);
        out
    }

    /// Encodes and writes the frame to `w`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<usize> {
        let bytes = self.encode();
        w.write_all(&bytes)?;
        Ok(bytes.len())
    }
}

/// The outcome of pulling one frame off a byte stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A well-formed frame.
    Frame(Frame),
    /// Clean close: EOF exactly at a frame boundary.
    Closed,
    /// The peer violated the protocol (bad magic, wrong version, unknown
    /// type, oversize or undecodable body). The connection is still
    /// writable, so the violation can be answered with a typed
    /// [`Frame::Error`] before closing.
    Malformed(String),
    /// The connection died mid-frame (truncated header/body or a socket
    /// error): nothing can be answered.
    Io(io::Error),
}

/// Reads exactly one frame from `r`, distinguishing clean close, protocol
/// violations (answerable) and dead connections (not).
pub fn read_frame(r: &mut impl Read) -> FrameRead {
    let mut header = [0u8; HEADER_LEN];
    // A clean close is EOF before any header byte; EOF after at least one
    // is a truncated frame.
    match r.read(&mut header) {
        Ok(0) => return FrameRead::Closed,
        Ok(mut got) => {
            while got < HEADER_LEN {
                match r.read(&mut header[got..]) {
                    Ok(0) => {
                        return FrameRead::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("connection closed {got} bytes into a frame header"),
                        ))
                    }
                    Ok(n) => got += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return FrameRead::Io(e),
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return FrameRead::Io(e),
    }
    if header[..4] != MAGIC {
        return FrameRead::Malformed(format!(
            "bad magic {:02x}{:02x}{:02x}{:02x} (expected \"SIRF\")",
            header[0], header[1], header[2], header[3]
        ));
    }
    if header[4] != PROTOCOL_VERSION {
        return FrameRead::Malformed(format!(
            "unsupported protocol version {} (this server speaks {PROTOCOL_VERSION})",
            header[4]
        ));
    }
    let ty = header[5];
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_FRAME_BODY {
        return FrameRead::Malformed(format!(
            "frame body of {len} bytes exceeds the {MAX_FRAME_BODY}-byte limit"
        ));
    }
    let mut body = vec![0u8; len as usize];
    if let Err(e) = r.read_exact(&mut body) {
        return FrameRead::Io(e);
    }
    let mut dec = Decoder::new(&body);
    let decoded = match ty {
        TYPE_SUBMIT => decode_submit(&mut dec).map(Frame::Submit),
        TYPE_ANSWER => decode_response(&mut dec).map(|r| Frame::Answer(Box::new(r))),
        TYPE_ERROR => decode_fault(&mut dec).map(Frame::Error),
        other => return FrameRead::Malformed(format!("unknown frame type 0x{other:02x}")),
    };
    match decoded.and_then(|frame| dec.finish().map(|()| frame)) {
        Ok(frame) => FrameRead::Frame(frame),
        Err(e) => FrameRead::Malformed(format!("undecodable frame body: {e}")),
    }
}

// ---------------------------------------------------------------------------
// Submit

fn encode_submit(enc: &mut Encoder, s: &SubmitFrame) {
    enc.str(&s.tenant_class)
        .u64(s.deadline_ns)
        .f32_slice(&s.audio);
    match &s.image {
        Some(image) => {
            enc.bool(true)
                .u32(image.width() as u32)
                .u32(image.height() as u32)
                .f32_slice(image.data());
        }
        None => {
            enc.bool(false);
        }
    }
}

fn decode_submit(dec: &mut Decoder) -> Result<SubmitFrame, DecodeError> {
    let tenant_class = dec.str()?;
    let deadline_ns = dec.u64()?;
    let audio = dec.f32_vec()?;
    let image = if dec.bool()? {
        let width = dec.u32()? as usize;
        let height = dec.u32()? as usize;
        let data = dec.f32_vec()?;
        // `GrayImage::from_data` trusts width × height == data.len(); a
        // hostile frame must not get to violate that invariant.
        if width.checked_mul(height) != Some(data.len()) {
            return Err(DecodeError {
                message: format!(
                    "image dimensions {width}x{height} disagree with {} pixels",
                    data.len()
                ),
                offset: 0,
            });
        }
        Some(GrayImage::from_data(width, height, data))
    } else {
        None
    };
    Ok(SubmitFrame {
        tenant_class,
        deadline_ns,
        audio,
        image,
    })
}

// ---------------------------------------------------------------------------
// Durations (lossless: the exact (secs, subsec nanos) pair `std` stores)

fn encode_duration(enc: &mut Encoder, d: Duration) {
    enc.u64(d.as_secs()).u32(d.subsec_nanos());
}

fn decode_duration(dec: &mut Decoder) -> Result<Duration, DecodeError> {
    let secs = dec.u64()?;
    let nanos = dec.u32()?;
    if nanos >= 1_000_000_000 {
        return Err(DecodeError {
            message: format!("duration subsecond field {nanos} is not < 1e9"),
            offset: 0,
        });
    }
    Ok(Duration::new(secs, nanos))
}

fn decode_usize(dec: &mut Decoder) -> Result<usize, DecodeError> {
    let v = dec.u64()?;
    usize::try_from(v).map_err(|_| DecodeError {
        message: format!("count {v} does not fit this platform's usize"),
        offset: 0,
    })
}

// ---------------------------------------------------------------------------
// Answer

fn encode_response(enc: &mut Encoder, r: &SiriusResponse) {
    enc.str(&r.recognized);
    match &r.outcome {
        SiriusOutcome::Action(action) => {
            enc.u8(0).str(&action.action).str(&action.command);
        }
        SiriusOutcome::Answer(answer) => {
            enc.u8(1);
            match answer {
                Some(text) => enc.bool(true).str(text),
                None => enc.bool(false),
            };
        }
    }
    match &r.matched_venue {
        Some(venue) => enc.bool(true).str(venue),
        None => enc.bool(false),
    };
    let t = &r.timing;
    encode_duration(enc, t.asr.feature_extraction);
    encode_duration(enc, t.asr.scoring);
    encode_duration(enc, t.asr.search);
    encode_duration(enc, t.asr.total);
    encode_duration(enc, t.classify);
    match &t.qa {
        Some(qa) => {
            enc.bool(true);
            encode_duration(enc, qa.stemmer);
            encode_duration(enc, qa.regex);
            encode_duration(enc, qa.crf);
            encode_duration(enc, qa.search);
            encode_duration(enc, qa.filtering);
            encode_duration(enc, qa.total);
            enc.u64(qa.filter_hits as u64)
                .u64(qa.docs_considered as u64)
                .u64(qa.regex_ops as u64);
        }
        None => {
            enc.bool(false);
        }
    }
    match &t.imm {
        Some(imm) => {
            enc.bool(true);
            encode_duration(enc, imm.feature_extraction);
            encode_duration(enc, imm.feature_description);
            encode_duration(enc, imm.ann_search);
            encode_duration(enc, imm.total);
        }
        None => {
            enc.bool(false);
        }
    }
    encode_duration(enc, t.total);
}

fn decode_response(dec: &mut Decoder) -> Result<SiriusResponse, DecodeError> {
    let recognized = dec.str()?;
    let outcome = match dec.u8()? {
        0 => SiriusOutcome::Action(DeviceAction {
            action: dec.str()?,
            command: dec.str()?,
        }),
        1 => {
            let answer = if dec.bool()? { Some(dec.str()?) } else { None };
            SiriusOutcome::Answer(answer)
        }
        other => {
            return Err(DecodeError {
                message: format!("unknown outcome discriminant {other}"),
                offset: 0,
            })
        }
    };
    let matched_venue = if dec.bool()? { Some(dec.str()?) } else { None };
    let asr = AsrTiming {
        feature_extraction: decode_duration(dec)?,
        scoring: decode_duration(dec)?,
        search: decode_duration(dec)?,
        total: decode_duration(dec)?,
    };
    let classify = decode_duration(dec)?;
    let qa = if dec.bool()? {
        Some(sirius_nlp_breakdown(dec)?)
    } else {
        None
    };
    let imm = if dec.bool()? {
        Some(ImmTiming {
            feature_extraction: decode_duration(dec)?,
            feature_description: decode_duration(dec)?,
            ann_search: decode_duration(dec)?,
            total: decode_duration(dec)?,
        })
    } else {
        None
    };
    let total = decode_duration(dec)?;
    Ok(SiriusResponse {
        recognized,
        outcome,
        matched_venue,
        timing: StageTiming {
            asr,
            classify,
            qa,
            imm,
            total,
        },
    })
}

fn sirius_nlp_breakdown(dec: &mut Decoder) -> Result<sirius_nlp::qa::QaBreakdown, DecodeError> {
    Ok(sirius_nlp::qa::QaBreakdown {
        stemmer: decode_duration(dec)?,
        regex: decode_duration(dec)?,
        crf: decode_duration(dec)?,
        search: decode_duration(dec)?,
        filtering: decode_duration(dec)?,
        total: decode_duration(dec)?,
        filter_hits: decode_usize(dec)?,
        docs_considered: decode_usize(dec)?,
        regex_ops: decode_usize(dec)?,
    })
}

// ---------------------------------------------------------------------------
// Errors

/// Maps a wire stage name back onto the runtime's `&'static str` stage
/// table. Stage names in [`SiriusError`] are static by construction, so the
/// wire form must intern, not allocate; a name outside the table is a
/// protocol violation.
fn intern_stage(name: &str) -> Result<&'static str, DecodeError> {
    STAGES
        .iter()
        .find(|s| **s == name)
        .copied()
        .ok_or_else(|| DecodeError {
            message: format!("unknown stage name {name:?}"),
            offset: 0,
        })
}

/// Encodes one [`SiriusError`], field-for-field. The `match` is exhaustive
/// on purpose: adding a variant without a wire mapping fails to compile
/// here (and in [`decode_sirius_error`]'s round-trip test) instead of
/// silently collapsing the new error class.
pub fn encode_sirius_error(enc: &mut Encoder, e: &SiriusError) {
    match e {
        SiriusError::Overloaded { stage } => {
            enc.u8(0).str(stage);
        }
        SiriusError::ShuttingDown => {
            enc.u8(1);
        }
        SiriusError::VenueOutOfRange { image_id, venues } => {
            enc.u8(2).u32(*image_id).u64(*venues as u64);
        }
        SiriusError::StagePanicked { stage } => {
            enc.u8(3).str(stage);
        }
        SiriusError::Timeout { waited } => {
            enc.u8(4);
            encode_duration(enc, *waited);
        }
        SiriusError::InvalidAudio { reason } => {
            enc.u8(5).str(reason);
        }
        SiriusError::DeadlineUnmeetable {
            expected,
            deadline,
            retry_after,
        } => {
            enc.u8(6);
            encode_duration(enc, *expected);
            encode_duration(enc, *deadline);
            encode_duration(enc, *retry_after);
        }
        SiriusError::UnknownTenantClass { class } => {
            enc.u8(7).str(class);
        }
    }
}

/// Decodes one [`SiriusError`]; the inverse of [`encode_sirius_error`].
///
/// # Errors
///
/// [`DecodeError`] on an unknown discriminant, stage name or malformed
/// field.
pub fn decode_sirius_error(dec: &mut Decoder) -> Result<SiriusError, DecodeError> {
    Ok(match dec.u8()? {
        0 => SiriusError::Overloaded {
            stage: intern_stage(&dec.str()?)?,
        },
        1 => SiriusError::ShuttingDown,
        2 => SiriusError::VenueOutOfRange {
            image_id: dec.u32()?,
            venues: decode_usize(dec)?,
        },
        3 => SiriusError::StagePanicked {
            stage: intern_stage(&dec.str()?)?,
        },
        4 => SiriusError::Timeout {
            waited: decode_duration(dec)?,
        },
        5 => SiriusError::InvalidAudio { reason: dec.str()? },
        6 => SiriusError::DeadlineUnmeetable {
            expected: decode_duration(dec)?,
            deadline: decode_duration(dec)?,
            retry_after: decode_duration(dec)?,
        },
        7 => SiriusError::UnknownTenantClass { class: dec.str()? },
        other => {
            return Err(DecodeError {
                message: format!("unknown SiriusError discriminant {other}"),
                offset: 0,
            })
        }
    })
}

/// Encodes one [`ClusterError`], field-for-field (exhaustive `match`; see
/// [`encode_sirius_error`]).
pub fn encode_cluster_error(enc: &mut Encoder, e: &ClusterError) {
    match e {
        ClusterError::NoReplicas => {
            enc.u8(0);
        }
        ClusterError::InvalidShardCount { requested } => {
            enc.u8(1).u32(*requested);
        }
        ClusterError::Replica { replica, source } => {
            enc.u8(2).u64(*replica as u64);
            encode_sirius_error(enc, source);
        }
    }
}

/// Decodes one [`ClusterError`]; the inverse of [`encode_cluster_error`].
///
/// # Errors
///
/// [`DecodeError`] on an unknown discriminant or malformed field.
pub fn decode_cluster_error(dec: &mut Decoder) -> Result<ClusterError, DecodeError> {
    Ok(match dec.u8()? {
        0 => ClusterError::NoReplicas,
        1 => ClusterError::InvalidShardCount {
            requested: dec.u32()?,
        },
        2 => ClusterError::Replica {
            replica: decode_usize(dec)?,
            source: decode_sirius_error(dec)?,
        },
        other => {
            return Err(DecodeError {
                message: format!("unknown ClusterError discriminant {other}"),
                offset: 0,
            })
        }
    })
}

fn encode_fault(enc: &mut Encoder, fault: &WireFault) {
    match fault {
        WireFault::Protocol { message } => {
            enc.u8(0).str(message);
        }
        WireFault::Cluster(e) => {
            enc.u8(1);
            encode_cluster_error(enc, e);
        }
    }
}

fn decode_fault(dec: &mut Decoder) -> Result<WireFault, DecodeError> {
    Ok(match dec.u8()? {
        0 => WireFault::Protocol {
            message: dec.str()?,
        },
        1 => WireFault::Cluster(decode_cluster_error(dec)?),
        other => {
            return Err(DecodeError {
                message: format!("unknown fault discriminant {other}"),
                offset: 0,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_nlp::qa::QaBreakdown;
    use std::io::Cursor;

    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn round_trip(frame: &Frame) -> Frame {
        let bytes = frame.encode();
        match read_frame(&mut Cursor::new(bytes)) {
            FrameRead::Frame(decoded) => decoded,
            other => panic!("expected a frame, got {other:?}"),
        }
    }

    #[test]
    fn submit_frames_round_trip_with_and_without_images() {
        let plain = Frame::Submit(SubmitFrame {
            tenant_class: String::new(),
            deadline_ns: 0,
            audio: vec![0.25, -1.0, f32::MIN_POSITIVE],
            image: None,
        });
        assert_eq!(round_trip(&plain), plain);

        let image = GrayImage::from_data(3, 2, vec![0.0, 0.5, 1.0, -0.5, 2.0, -2.0]);
        let classed = Frame::Submit(SubmitFrame {
            tenant_class: "premium".into(),
            deadline_ns: 12_345_678,
            audio: vec![0.0; 64],
            image: Some(image),
        });
        assert_eq!(round_trip(&classed), classed);
    }

    #[test]
    fn mismatched_image_dimensions_are_rejected_not_trusted() {
        let mut enc = Encoder::new();
        enc.str("").u64(0).f32_slice(&[0.0]);
        enc.bool(true).u32(1000).u32(1000).f32_slice(&[1.0, 2.0]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = decode_submit(&mut dec).unwrap_err();
        assert!(err.message.contains("disagree"), "{err}");
    }

    #[test]
    fn answers_round_trip_every_outcome_shape() {
        let timing = StageTiming {
            asr: AsrTiming {
                feature_extraction: Duration::from_nanos(1),
                scoring: Duration::from_micros(2),
                search: Duration::from_millis(3),
                total: Duration::from_secs(4),
            },
            classify: Duration::from_nanos(5),
            qa: Some(QaBreakdown {
                stemmer: Duration::from_nanos(6),
                regex: Duration::from_nanos(7),
                crf: Duration::from_nanos(8),
                search: Duration::from_nanos(9),
                filtering: Duration::from_nanos(10),
                total: Duration::from_nanos(11),
                filter_hits: 12,
                docs_considered: 13,
                regex_ops: 14,
            }),
            imm: Some(ImmTiming {
                feature_extraction: Duration::from_nanos(15),
                feature_description: Duration::from_nanos(16),
                ann_search: Duration::from_nanos(17),
                total: Duration::from_nanos(18),
            }),
            total: Duration::MAX,
        };
        let shapes = [
            SiriusResponse {
                recognized: "set my alarm for seven".into(),
                outcome: SiriusOutcome::Action(DeviceAction {
                    action: "alarm".into(),
                    command: "set my alarm for seven".into(),
                }),
                matched_venue: None,
                timing: timing.clone(),
            },
            SiriusResponse {
                recognized: "what is the tallest mountain".into(),
                outcome: SiriusOutcome::Answer(Some("everest".into())),
                matched_venue: Some("city hall".into()),
                timing: timing.clone(),
            },
            SiriusResponse {
                recognized: "unanswerable".into(),
                outcome: SiriusOutcome::Answer(None),
                matched_venue: None,
                timing,
            },
        ];
        for response in shapes {
            let frame = Frame::Answer(Box::new(response));
            assert_eq!(round_trip(&frame), frame);
        }
    }

    /// Every variant constructed here comes from an exhaustive `match` over
    /// the enum, mirroring the one in `encode_sirius_error`: adding a
    /// variant to `SiriusError` (or `ClusterError`) without extending both
    /// the wire mapping and this census fails to compile.
    fn every_sirius_error() -> Vec<SiriusError> {
        let witness = |e: SiriusError| -> SiriusError {
            // Compile-time exhaustiveness: a new variant lands in this
            // match unmapped and rustc rejects the build.
            match &e {
                SiriusError::Overloaded { .. }
                | SiriusError::ShuttingDown
                | SiriusError::VenueOutOfRange { .. }
                | SiriusError::StagePanicked { .. }
                | SiriusError::Timeout { .. }
                | SiriusError::InvalidAudio { .. }
                | SiriusError::DeadlineUnmeetable { .. }
                | SiriusError::UnknownTenantClass { .. } => e,
            }
        };
        vec![
            witness(SiriusError::Overloaded { stage: "asr" }),
            witness(SiriusError::ShuttingDown),
            witness(SiriusError::VenueOutOfRange {
                image_id: 77,
                venues: 12,
            }),
            witness(SiriusError::StagePanicked { stage: "qa" }),
            witness(SiriusError::Timeout {
                waited: Duration::new(3, 999_999_999),
            }),
            witness(SiriusError::InvalidAudio {
                reason: "non-finite sample at index 11".into(),
            }),
            witness(SiriusError::DeadlineUnmeetable {
                expected: Duration::from_millis(90),
                deadline: Duration::from_millis(40),
                retry_after: Duration::from_millis(50),
            }),
            witness(SiriusError::UnknownTenantClass {
                class: "platinum".into(),
            }),
        ]
    }

    #[test]
    fn every_sirius_error_variant_round_trips_losslessly() {
        for error in every_sirius_error() {
            let mut enc = Encoder::new();
            encode_sirius_error(&mut enc, &error);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(decode_sirius_error(&mut dec).unwrap(), error);
            dec.finish().unwrap();
        }
    }

    #[test]
    fn every_cluster_error_variant_round_trips_losslessly() {
        let witness = |e: ClusterError| -> ClusterError {
            match &e {
                ClusterError::NoReplicas
                | ClusterError::InvalidShardCount { .. }
                | ClusterError::Replica { .. } => e,
            }
        };
        let mut cases = vec![
            witness(ClusterError::NoReplicas),
            witness(ClusterError::InvalidShardCount { requested: 0 }),
        ];
        // Replica wraps *every* SiriusError variant — retry_after hints and
        // stage names must survive the extra nesting level too.
        cases.extend(
            every_sirius_error()
                .into_iter()
                .map(|source| witness(ClusterError::Replica { replica: 3, source })),
        );
        for error in cases {
            let mut enc = Encoder::new();
            encode_cluster_error(&mut enc, &error);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(decode_cluster_error(&mut dec).unwrap(), error);
            dec.finish().unwrap();
        }
        for fault in [
            WireFault::Protocol {
                message: "bad magic".into(),
            },
            WireFault::Cluster(ClusterError::Replica {
                replica: 1,
                source: SiriusError::DeadlineUnmeetable {
                    expected: Duration::from_millis(9),
                    deadline: Duration::from_millis(4),
                    retry_after: Duration::from_millis(5),
                },
            }),
        ] {
            let frame = Frame::Error(fault);
            assert_eq!(round_trip(&frame), frame);
        }
    }

    #[test]
    fn header_violations_are_malformed_not_io() {
        // Bad magic.
        let mut bytes = Frame::Submit(SubmitFrame {
            tenant_class: String::new(),
            deadline_ns: 0,
            audio: vec![0.0],
            image: None,
        })
        .encode();
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes.clone())),
            FrameRead::Malformed(m) if m.contains("magic")
        ));
        // Wrong version.
        bytes[0] = b'S';
        bytes[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes.clone())),
            FrameRead::Malformed(m) if m.contains("version")
        ));
        // Unknown type.
        bytes[4] = PROTOCOL_VERSION;
        bytes[5] = 0x7f;
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes.clone())),
            FrameRead::Malformed(m) if m.contains("type")
        ));
        // Oversize body claim: rejected before any allocation.
        bytes[5] = TYPE_SUBMIT;
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes.clone())),
            FrameRead::Malformed(m) if m.contains("limit")
        ));
        // Truncated header: the connection died, nothing to answer.
        assert!(matches!(
            read_frame(&mut Cursor::new(bytes[..6].to_vec())),
            FrameRead::Io(_)
        ));
        // Empty stream: clean close.
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())),
            FrameRead::Closed
        ));
    }

    #[test]
    fn random_bytes_never_panic_the_frame_reader() {
        let mut rng = Mix(0x5eed_0f0f);
        for case in 0..512 {
            let len = (rng.next() % 160) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            // Half the cases wear a valid header so the body decoders are
            // exercised, not just the magic check.
            if case % 2 == 0 && bytes.len() >= HEADER_LEN {
                bytes[..4].copy_from_slice(&MAGIC);
                bytes[4] = PROTOCOL_VERSION;
                bytes[5] = [TYPE_SUBMIT, TYPE_ANSWER, TYPE_ERROR][case % 3];
                let body_len = (bytes.len() - HEADER_LEN) as u32;
                bytes[6..10].copy_from_slice(&body_len.to_le_bytes());
            }
            // Whatever comes back, it is a value — never a panic.
            let _ = read_frame(&mut Cursor::new(bytes));
        }
    }
}
