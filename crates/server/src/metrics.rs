//! The staged runtime's telemetry: one [`Registry`] per server holding
//! per-stage queue-wait/service histograms and panic counters, admission
//! counters, queue-depth gauges and the end-to-end sojourn histogram.
//!
//! Everything a worker records on the hot path is lock-free
//! (`sirius-obs` atomics); the registry lock is touched only at wiring and
//! snapshot time. [`SiriusServer::metrics_snapshot`] refreshes the
//! queue-depth gauges from the live queues and exports the lot.
//!
//! Naming scheme (`Snapshot` keys):
//!
//! | name | type | meaning |
//! |---|---|---|
//! | `{stage}.queue_wait_ns` | histogram | time queued in front of the stage |
//! | `{stage}.service_ns` | histogram | stage handler time |
//! | `{stage}.service_ewma_ns` | meter | rolling (EWMA) mean service time |
//! | `{stage}.panics` | counter | requests lost to a caught stage panic |
//! | `{stage}.expired` | counter | jobs dropped at dequeue (deadline passed) |
//! | `{stage}.queue_depth` | gauge | queued items at snapshot time |
//! | `{stage}.queue_capacity` | gauge | bounded queue capacity |
//! | `{stage}.in_flight` | gauge | jobs a worker is serving right now |
//! | `{stage}.batch_size` | histogram | blocks coalesced per collector flush |
//! | `{stage}.batch_flush_full` | counter | flushes at `max_batch` blocks |
//! | `{stage}.batch_flush_timeout` | counter | partial flushes forced by `max_delay` |
//! | `asr.partials_emitted` | counter | stable-prefix partial hypotheses emitted |
//! | `asr.commit_latency_ns` | histogram | chunk arrival → its words committed |
//! | `asr.spec_dispatched` | counter | speculative downstream jobs dispatched |
//! | `asr.spec_hit` | counter | speculations confirmed by the final hypothesis |
//! | `asr.spec_miss` | counter | speculations discarded at reconcile |
//! | `e2e.first_partial_ns` | histogram | admission → first committed partial |
//! | `admission.accepted` / `admission.shed` | counter | admission control outcomes |
//! | `admission.shed_deadline` | counter | sheds by the deadline-aware policy |
//! | `admission.rejected_shutdown` | counter | submits refused mid-shutdown |
//! | `completed` / `failed` | counter | ticket completions by result |
//! | `sojourn_ns` | histogram | admission → completion, successful queries |
//! | `sojourn_failed_ns` | histogram | admission → completion, failed queries |
//! | `cache.{qa,imm}.hit` / `.miss` | counter | result-cache lookups after ASR commit |
//! | `cache.{qa,imm}.insert` / `.eviction` / `.stale` | counter | result-cache fills, LRU evictions, TTL/generation rejections |
//! | `cache.{qa,imm}.entries` | gauge | live result-cache entries |
//! | `tenant.{class}.accepted` / `.shed_deadline` | counter | classed admission outcomes |
//! | `tenant.{class}.completed` / `.failed` | counter | classed completions by result |
//! | `tenant.{class}.cache_hit` | counter | classed queries answered from the result cache |
//! | `tenant.{class}.in_flight` | gauge | admitted, not yet completed classed queries |
//! | `tenant.{class}.sojourn_ns` | histogram | admission → completion per class |
//! | `net.connections_opened` / `.connections_closed` | counter | TCP front-end connection lifecycle |
//! | `net.active_connections` | gauge | connections being served right now |
//! | `net.frames_in` / `.frames_out` | counter | well-formed frames read / frames written |
//! | `net.bytes_in` / `.bytes_out` | counter | bytes crossing accepted connections |
//! | `net.errors_protocol` | counter | violations answered with a typed error frame |
//! | `net.read_timeouts` | counter | connections cut off by the read timeout |
//! | `net.http_scrapes` | counter | successful `GET /metrics` responses |
//! | `net.handler_panics` | counter | handler panics caught at the connection boundary |
//!
//! The `net.*` names ([`NetMetrics::register`](crate::NetMetrics::register))
//! are never replica-prefixed: one front-end serves the whole cluster, so
//! they sit beside the `replica{i}.*` series in the same registry.
//!
//! When several servers share one registry — the cluster front-end's
//! layout — every name above additionally carries the instance's prefix:
//! `replica0.asr.queue_depth`, `replica1.sojourn_ns`, and so on
//! ([`ServerMetrics::in_registry`]).
//!
//! [`SiriusServer::metrics_snapshot`]: crate::SiriusServer::metrics_snapshot

use std::sync::Arc;

use sirius_obs::{Counter, Gauge, Histogram, Meter, Registry};

/// The stage names the runtime instruments, in pipeline order.
pub const STAGES: [&str; 4] = ["asr", "classify", "imm", "qa"];

/// Per-stage observability handles shared by every worker in one pool.
#[derive(Debug, Clone)]
pub struct StageObs {
    /// Time each job spent queued before a worker picked it up.
    pub queue_wait: Histogram,
    /// Time the stage handler spent on each job.
    pub service: Histogram,
    /// Rolling (EWMA) mean of the stage's service time — the admission
    /// estimator's per-stage service-rate input.
    pub service_meter: Meter,
    /// Jobs lost to a panic caught at the pool boundary.
    pub panics: Counter,
    /// Jobs dropped at dequeue because their deadline had already passed;
    /// they consume no stage service time.
    pub expired: Counter,
    /// Jobs a worker of this stage is serving right now (dequeued, handler
    /// running).
    pub in_flight: Gauge,
}

impl StageObs {
    /// Registers the stage's metrics under `{stage}.…` names.
    pub fn register(registry: &Registry, stage: &str) -> Arc<Self> {
        Arc::new(Self {
            queue_wait: registry.histogram(&format!("{stage}.queue_wait_ns")),
            service: registry.histogram(&format!("{stage}.service_ns")),
            service_meter: registry.meter(&format!("{stage}.service_ewma_ns")),
            panics: registry.counter(&format!("{stage}.panics")),
            expired: registry.counter(&format!("{stage}.expired")),
            in_flight: registry.gauge(&format!("{stage}.in_flight")),
        })
    }
}

/// Batch-collector telemetry for one stage (today only ASR batches).
///
/// `size.count == flush_full + flush_timeout` — every flush records its
/// size exactly once, so the histogram doubles as a flush census.
#[derive(Debug, Clone)]
pub struct BatchObs {
    /// Blocks coalesced into each GEMM flush.
    pub size: Histogram,
    /// Flushes triggered by reaching `max_batch` blocks.
    pub flush_full: Counter,
    /// Partial flushes forced by the oldest block waiting out `max_delay`
    /// (includes drain-at-teardown flushes).
    pub flush_timeout: Counter,
}

impl BatchObs {
    /// Registers the collector's metrics under `{stage}.batch_…` names.
    pub fn register(registry: &Registry, stage: &str) -> Arc<Self> {
        Arc::new(Self {
            size: registry.histogram(&format!("{stage}.batch_size")),
            flush_full: registry.counter(&format!("{stage}.batch_flush_full")),
            flush_timeout: registry.counter(&format!("{stage}.batch_flush_timeout")),
        })
    }
}

/// Streaming-ASR telemetry: partial-hypothesis emission and speculative
/// pipelining outcomes (flat when streaming is off).
#[derive(Debug, Clone)]
pub struct StreamObs {
    /// Stable-prefix partial hypotheses emitted (each commit that grew the
    /// prefix counts once).
    pub partials_emitted: Counter,
    /// Latency from a chunk's arrival at the worker to the commit it
    /// produced (the decode lag behind the audio edge).
    pub commit_latency: Histogram,
    /// Admission → the query's first non-empty committed prefix: the
    /// time-to-first-partial a barge-in UI would observe.
    pub first_partial: Histogram,
    /// Speculative downstream (Classify/IMM/QA) jobs dispatched on partials.
    pub spec_dispatched: Counter,
    /// Speculations whose text matched the final hypothesis (reused).
    pub spec_hit: Counter,
    /// Speculations discarded at reconcile (prefix was not the final text).
    pub spec_miss: Counter,
}

impl StreamObs {
    /// Registers the streaming metrics under `{prefix}asr.…` /
    /// `{prefix}e2e.…` names (empty prefix for a server that owns its
    /// registry).
    pub fn register(registry: &Registry, prefix: &str) -> Arc<Self> {
        Arc::new(Self {
            partials_emitted: registry.counter(&format!("{prefix}asr.partials_emitted")),
            commit_latency: registry.histogram(&format!("{prefix}asr.commit_latency_ns")),
            first_partial: registry.histogram(&format!("{prefix}e2e.first_partial_ns")),
            spec_dispatched: registry.counter(&format!("{prefix}asr.spec_dispatched")),
            spec_hit: registry.counter(&format!("{prefix}asr.spec_hit")),
            spec_miss: registry.counter(&format!("{prefix}asr.spec_miss")),
        })
    }
}

/// Every metric the staged runtime records, pre-registered in one
/// [`Registry`] (also reachable by name through snapshots).
///
/// A server normally owns its registry ([`ServerMetrics::new`]); a cluster
/// front-end instead registers each replica's metrics into one **shared**
/// registry under a distinct name prefix ([`ServerMetrics::in_registry`]
/// with e.g. `"replica0."`), so N replicas export side by side without
/// aliasing each other's counters.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// Name prefix every metric was registered under (empty for a server
    /// that owns its registry).
    prefix: String,
    /// Queries admitted by `submit`.
    pub accepted: Counter,
    /// Queries shed at admission because the ASR queue was full
    /// (`Overloaded`).
    pub shed: Counter,
    /// Queries shed at admission because their expected sojourn exceeded the
    /// caller's deadline (`DeadlineUnmeetable`).
    pub shed_deadline: Counter,
    /// Submits refused because the runtime was already shutting down when
    /// the send raced the queue teardown.
    pub rejected_shutdown: Counter,
    /// Tickets completed with a response.
    pub completed: Counter,
    /// Tickets completed with an error.
    pub failed: Counter,
    /// Admission → completion time of successful queries.
    pub sojourn: Histogram,
    /// Admission → completion time of failed queries (expired, panicked,
    /// shut down mid-flight), so accepted work is always accounted:
    /// `accepted = sojourn.count + sojourn_failed.count + in flight`.
    pub sojourn_failed: Histogram,
    /// ASR pool telemetry.
    pub asr: Arc<StageObs>,
    /// Classifier pool telemetry.
    pub classify: Arc<StageObs>,
    /// Image-matching pool telemetry.
    pub imm: Arc<StageObs>,
    /// Question-answering pool telemetry.
    pub qa: Arc<StageObs>,
    /// ASR batch-collector telemetry (flat counters when batching is off).
    pub batch: Arc<BatchObs>,
    /// Streaming-ASR telemetry (flat when streaming is off).
    pub stream: Arc<StreamObs>,
}

impl ServerMetrics {
    /// A fresh registry with every runtime metric registered under its
    /// plain (unprefixed) name.
    pub fn new() -> Arc<Self> {
        Self::in_registry(Registry::new(), "")
    }

    /// Registers every runtime metric into a caller-supplied — possibly
    /// shared — registry, each name prepended with `prefix` verbatim
    /// (`"replica0."` yields `replica0.asr.queue_depth` and friends). Two
    /// servers wired into the same registry with distinct prefixes never
    /// alias a metric; an empty prefix reproduces [`ServerMetrics::new`]'s
    /// naming exactly.
    pub fn in_registry(registry: Registry, prefix: &str) -> Arc<Self> {
        let scoped = |name: &str| format!("{prefix}{name}");
        Arc::new(Self {
            accepted: registry.counter(&scoped("admission.accepted")),
            shed: registry.counter(&scoped("admission.shed")),
            shed_deadline: registry.counter(&scoped("admission.shed_deadline")),
            rejected_shutdown: registry.counter(&scoped("admission.rejected_shutdown")),
            completed: registry.counter(&scoped("completed")),
            failed: registry.counter(&scoped("failed")),
            sojourn: registry.histogram(&scoped("sojourn_ns")),
            sojourn_failed: registry.histogram(&scoped("sojourn_failed_ns")),
            asr: StageObs::register(&registry, &scoped("asr")),
            classify: StageObs::register(&registry, &scoped("classify")),
            imm: StageObs::register(&registry, &scoped("imm")),
            qa: StageObs::register(&registry, &scoped("qa")),
            batch: BatchObs::register(&registry, &scoped("asr")),
            stream: StreamObs::register(&registry, prefix),
            prefix: prefix.to_owned(),
            registry,
        })
    }

    /// The prefix every metric name was registered under (empty unless the
    /// metrics live in a shared registry).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// `name` with this instance's registration prefix applied — how the
    /// metric appears in snapshots of the backing registry.
    pub fn scoped(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// The backing registry (snapshot it via
    /// [`SiriusServer::metrics_snapshot`] to get fresh queue gauges).
    ///
    /// [`SiriusServer::metrics_snapshot`]: crate::SiriusServer::metrics_snapshot
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-stage telemetry for a stage name from [`STAGES`].
    pub fn stage(&self, name: &str) -> Option<&Arc<StageObs>> {
        match name {
            "asr" => Some(&self.asr),
            "classify" => Some(&self.classify),
            "imm" => Some(&self.imm),
            "qa" => Some(&self.qa),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_registered_and_shared() {
        let m = ServerMetrics::new();
        m.asr.queue_wait.record(100);
        m.asr.service_meter.record(5_000);
        m.shed.inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap.histogram("asr.queue_wait_ns").unwrap().count, 1);
        assert_eq!(snap.counter("admission.shed"), Some(1));
        assert_eq!(snap.counter("admission.shed_deadline"), Some(0));
        assert_eq!(snap.counter("admission.rejected_shutdown"), Some(0));
        assert_eq!(snap.histogram("sojourn_failed_ns").unwrap().count, 0);
        assert!((snap.meter("asr.service_ewma_ns").unwrap().mean - 5_000.0).abs() < 1e-9);
        for stage in STAGES {
            assert!(m.stage(stage).is_some(), "{stage}");
            assert!(snap.histogram(&format!("{stage}.service_ns")).is_some());
            assert!(snap.counter(&format!("{stage}.panics")).is_some());
            assert!(snap.counter(&format!("{stage}.expired")).is_some());
            assert!(snap.gauge(&format!("{stage}.in_flight")).is_some());
            assert!(snap.meter(&format!("{stage}.service_ewma_ns")).is_some());
        }
        assert!(m.stage("nope").is_none());
        m.batch.size.record(3);
        m.batch.flush_full.inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap.histogram("asr.batch_size").unwrap().count, 1);
        assert_eq!(snap.counter("asr.batch_flush_full"), Some(1));
        assert_eq!(snap.counter("asr.batch_flush_timeout"), Some(0));
    }

    #[test]
    fn prefixed_instances_in_one_registry_do_not_alias() {
        let registry = Registry::new();
        let a = ServerMetrics::in_registry(registry.clone(), "replica0.");
        let b = ServerMetrics::in_registry(registry.clone(), "replica1.");
        assert_eq!(a.prefix(), "replica0.");
        assert_eq!(a.scoped("sojourn_ns"), "replica0.sojourn_ns");
        a.completed.inc();
        a.asr.queue_wait.record(100);
        a.stream.partials_emitted.inc();
        b.shed.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("replica0.completed"), Some(1));
        assert_eq!(snap.counter("replica1.completed"), Some(0));
        assert_eq!(snap.counter("replica0.admission.shed"), Some(0));
        assert_eq!(snap.counter("replica1.admission.shed"), Some(1));
        assert_eq!(
            snap.histogram("replica0.asr.queue_wait_ns").unwrap().count,
            1
        );
        assert_eq!(
            snap.histogram("replica1.asr.queue_wait_ns").unwrap().count,
            0
        );
        assert_eq!(snap.counter("replica0.asr.partials_emitted"), Some(1));
        assert_eq!(snap.counter("replica1.asr.partials_emitted"), Some(0));
        // The unprefixed names must not exist in a prefixed layout.
        assert_eq!(snap.counter("completed"), None);
        assert!(snap.histogram("asr.queue_wait_ns").is_none());
    }

    #[test]
    fn streaming_metrics_are_registered_and_exported() {
        let m = ServerMetrics::new();
        m.stream.partials_emitted.inc();
        m.stream.commit_latency.record(1_000);
        m.stream.first_partial.record(2_000);
        m.stream.spec_dispatched.inc();
        m.stream.spec_hit.inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("asr.partials_emitted"), Some(1));
        assert_eq!(snap.histogram("asr.commit_latency_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("e2e.first_partial_ns").unwrap().count, 1);
        assert_eq!(snap.counter("asr.spec_dispatched"), Some(1));
        assert_eq!(snap.counter("asr.spec_hit"), Some(1));
        assert_eq!(snap.counter("asr.spec_miss"), Some(0));
        let prom = snap.to_prometheus();
        for name in [
            "asr_partials_emitted",
            "asr_commit_latency_ns",
            "e2e_first_partial_ns",
            "asr_spec_dispatched",
        ] {
            assert!(prom.contains(name), "{name} missing from Prometheus export");
        }
    }
}
