//! The staged runtime's telemetry: one [`Registry`] per server holding
//! per-stage queue-wait/service histograms and panic counters, admission
//! counters, queue-depth gauges and the end-to-end sojourn histogram.
//!
//! Everything a worker records on the hot path is lock-free
//! (`sirius-obs` atomics); the registry lock is touched only at wiring and
//! snapshot time. [`SiriusServer::metrics_snapshot`] refreshes the
//! queue-depth gauges from the live queues and exports the lot.
//!
//! Naming scheme (`Snapshot` keys):
//!
//! | name | type | meaning |
//! |---|---|---|
//! | `{stage}.queue_wait_ns` | histogram | time queued in front of the stage |
//! | `{stage}.service_ns` | histogram | stage handler time |
//! | `{stage}.panics` | counter | requests lost to a caught stage panic |
//! | `{stage}.queue_depth` | gauge | queued items at snapshot time |
//! | `{stage}.queue_capacity` | gauge | bounded queue capacity |
//! | `admission.accepted` / `admission.shed` | counter | admission control outcomes |
//! | `completed` / `failed` | counter | ticket completions by result |
//! | `sojourn_ns` | histogram | admission → completion, successful queries |
//!
//! [`SiriusServer::metrics_snapshot`]: crate::SiriusServer::metrics_snapshot

use std::sync::Arc;

use sirius_obs::{Counter, Histogram, Registry};

/// The stage names the runtime instruments, in pipeline order.
pub const STAGES: [&str; 4] = ["asr", "classify", "imm", "qa"];

/// Per-stage observability handles shared by every worker in one pool.
#[derive(Debug, Clone)]
pub struct StageObs {
    /// Time each job spent queued before a worker picked it up.
    pub queue_wait: Histogram,
    /// Time the stage handler spent on each job.
    pub service: Histogram,
    /// Jobs lost to a panic caught at the pool boundary.
    pub panics: Counter,
}

impl StageObs {
    /// Registers the stage's metrics under `{stage}.…` names.
    pub fn register(registry: &Registry, stage: &str) -> Arc<Self> {
        Arc::new(Self {
            queue_wait: registry.histogram(&format!("{stage}.queue_wait_ns")),
            service: registry.histogram(&format!("{stage}.service_ns")),
            panics: registry.counter(&format!("{stage}.panics")),
        })
    }
}

/// Every metric the staged runtime records, pre-registered in one
/// [`Registry`] (also reachable by name through snapshots).
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    /// Queries admitted by `submit`.
    pub accepted: Counter,
    /// Queries shed at admission (`Overloaded`).
    pub shed: Counter,
    /// Tickets completed with a response.
    pub completed: Counter,
    /// Tickets completed with an error.
    pub failed: Counter,
    /// Admission → completion time of successful queries.
    pub sojourn: Histogram,
    /// ASR pool telemetry.
    pub asr: Arc<StageObs>,
    /// Classifier pool telemetry.
    pub classify: Arc<StageObs>,
    /// Image-matching pool telemetry.
    pub imm: Arc<StageObs>,
    /// Question-answering pool telemetry.
    pub qa: Arc<StageObs>,
}

impl ServerMetrics {
    /// A fresh registry with every runtime metric registered.
    pub fn new() -> Arc<Self> {
        let registry = Registry::new();
        Arc::new(Self {
            accepted: registry.counter("admission.accepted"),
            shed: registry.counter("admission.shed"),
            completed: registry.counter("completed"),
            failed: registry.counter("failed"),
            sojourn: registry.histogram("sojourn_ns"),
            asr: StageObs::register(&registry, "asr"),
            classify: StageObs::register(&registry, "classify"),
            imm: StageObs::register(&registry, "imm"),
            qa: StageObs::register(&registry, "qa"),
            registry,
        })
    }

    /// The backing registry (snapshot it via
    /// [`SiriusServer::metrics_snapshot`] to get fresh queue gauges).
    ///
    /// [`SiriusServer::metrics_snapshot`]: crate::SiriusServer::metrics_snapshot
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-stage telemetry for a stage name from [`STAGES`].
    pub fn stage(&self, name: &str) -> Option<&Arc<StageObs>> {
        match name {
            "asr" => Some(&self.asr),
            "classify" => Some(&self.classify),
            "imm" => Some(&self.imm),
            "qa" => Some(&self.qa),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_are_registered_and_shared() {
        let m = ServerMetrics::new();
        m.asr.queue_wait.record(100);
        m.shed.inc();
        let snap = m.registry().snapshot();
        assert_eq!(snap.histogram("asr.queue_wait_ns").unwrap().count, 1);
        assert_eq!(snap.counter("admission.shed"), Some(1));
        for stage in STAGES {
            assert!(m.stage(stage).is_some(), "{stage}");
            assert!(snap.histogram(&format!("{stage}.service_ns")).is_some());
            assert!(snap.counter(&format!("{stage}.panics")).is_some());
        }
        assert!(m.stage("nope").is_none());
    }
}
