//! The staged Sirius serving runtime.
//!
//! [`SiriusServer::start`] wires the four typed pipeline stages (ASR →
//! classify → IMM → QA) into per-stage worker pools connected by bounded
//! MPMC queues:
//!
//! ```text
//!  submit ─try_send─▶ [asr queue] ─▶ ASR pool ─send─▶ [classify queue]
//!        ─▶ classify pool ──Action──▶ ticket completed
//!                         └─Question─▶ [imm queue] ─▶ IMM pool
//!        ─send─▶ [qa queue] ─▶ QA pool ─▶ ticket completed
//! ```
//!
//! **Admission control**: [`SiriusServer::submit`] uses a non-blocking
//! `try_send` into the ASR queue and sheds with
//! [`SiriusError::Overloaded`] when it is full — overload surfaces as a
//! typed rejection the client can retry, instead of unbounded queueing.
//! [`SiriusServer::submit_with_deadline`] is the deadline-aware policy on
//! top: it estimates the query's end-to-end sojourn from live queue depths,
//! in-flight counts and per-stage EWMA service times
//! ([`SiriusServer::expected_sojourn`]) and sheds with
//! [`SiriusError::DeadlineUnmeetable`] — carrying a drain-rate-derived
//! retry hint — the moment the deadline cannot be met, instead of only when
//! the ASR queue is physically full. Admitted deadlines ride along with the
//! job; a worker dequeuing an already-expired job drops it unserved
//! (`{stage}.expired`), so no stage service time is spent on an answer the
//! client has abandoned.
//!
//! **Back-pressure**: interior hand-offs use blocking `send`, so a slow
//! downstream stage stalls its upstream pool rather than growing a queue
//! without bound. The stage graph is a forward-only chain whose final pool
//! never blocks, so progress is always guaranteed (no cycles, no deadlock).
//!
//! **Graceful shutdown**: dropping (or [`SiriusServer::shutdown`]ting) the
//! runtime closes the ASR queue; each pool drains its queue, exits, and by
//! dropping its sender closes the next queue in the chain. Every accepted
//! query completes before the workers are joined.
//!
//! **Observability**: every pool records per-stage queue-wait and
//! service-time histograms, panic counters and (at snapshot time)
//! queue-depth gauges into one [`ServerMetrics`] registry — all lock-free
//! on the hot path. [`SiriusServer::metrics_snapshot`] exports the lot;
//! [`SiriusServer::start_with_recorder`] additionally attributes every
//! span of every query to a caller-supplied [`Recorder`].

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusInput, SiriusOutcome, SiriusResponse, StageTiming};
use sirius::stage::{
    AsrRequest, AsrResponse, AsrStage, ClassifyRequest, ClassifyStage, ImmRequest, ImmStage,
    QaRequest, QaStage,
};
use sirius_obs::{Gauge, NoopRecorder, Recorder, Snapshot, SpanKind};
use sirius_par::queue::{bounded, Sender, TrySendError};
use sirius_speech::asr::{AcousticModelKind, AsrTiming};
use sirius_speech::WindowScorer;
use sirius_vision::db::ImmTiming;
use sirius_vision::image::GrayImage;

use crate::batch::{spawn_batch_collector, BatchPolicy, BatchedAsrStage, SiriusWindowScorer};
use crate::metrics::{ServerMetrics, STAGES};
use crate::pool::{spawn_stage_pool, Job};
use crate::qos::{
    CacheKey, CachePolicy, CachedAnswer, ResultCaches, TenantClass, TenantObs, TenantTable,
};
use crate::stream::{spawn_streaming_stages, StreamPolicy};

/// Sizing of one stage's pool and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageConfig {
    /// Worker threads draining this stage's queue (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue depth in front of the pool (clamped to at least 1).
    pub queue_depth: usize,
}

impl Default for StageConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_depth: 16,
        }
    }
}

/// Configuration of the staged runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// ASR pool/queue sizing. Its queue is the admission-control queue.
    pub asr: StageConfig,
    /// Query-classifier pool/queue sizing (the stage is microseconds, one
    /// worker is plenty).
    pub classify: StageConfig,
    /// Image-matching pool/queue sizing.
    pub imm: StageConfig,
    /// Question-answering pool/queue sizing.
    pub qa: StageConfig,
    /// Acoustic model every query is scored with.
    pub acoustic: AcousticModelKind,
    /// Cross-query dynamic batching of ASR DNN block GEMMs. The default
    /// (`max_batch == 1`) spawns no collector and serves exactly the
    /// per-query path; see [`crate::batch`].
    pub batch: BatchPolicy,
    /// Streaming ASR ingestion and speculative downstream pipelining. The
    /// default (`chunk == 0`) serves whole utterances; see
    /// [`crate::stream`].
    pub stream: StreamPolicy,
    /// Tenant traffic classes served by [`SiriusServer::submit_classed`].
    /// Empty (the default) leaves only the class-less submit paths.
    pub tenants: Vec<TenantClass>,
    /// The post-ASR result caches. Disabled (the default), the serving
    /// path is exactly the uncached runtime; see [`crate::qos`].
    pub cache: CachePolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            asr: StageConfig::default(),
            classify: StageConfig::default(),
            imm: StageConfig::default(),
            qa: StageConfig::default(),
            acoustic: AcousticModelKind::Gmm,
            batch: BatchPolicy::default(),
            stream: StreamPolicy::default(),
            tenants: Vec::new(),
            cache: CachePolicy::default(),
        }
    }
}

impl ServerConfig {
    /// `workers` threads on each heavy stage (ASR, IMM, QA); the classifier
    /// keeps a single worker.
    pub fn with_workers(workers: usize) -> Self {
        let mut cfg = Self::default();
        cfg.asr.workers = workers;
        cfg.imm.workers = workers;
        cfg.qa.workers = workers;
        cfg
    }

    /// Sets the ASR batch collector's policy. Only DNN-scored queries
    /// batch; with the default GMM acoustic model the policy is inert.
    pub fn with_batch_policy(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the streaming ASR policy. With the default (non-streaming)
    /// policy the runtime serves whole utterances exactly as before.
    pub fn with_stream_policy(mut self, stream: StreamPolicy) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the tenant traffic classes [`SiriusServer::submit_classed`]
    /// serves.
    pub fn with_tenant_classes(mut self, tenants: Vec<TenantClass>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Sets the result-cache policy.
    pub fn with_cache_policy(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Sets every stage's queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.asr.queue_depth = depth;
        self.classify.queue_depth = depth;
        self.imm.queue_depth = depth;
        self.qa.queue_depth = depth;
        self
    }

    /// Total worker threads the runtime will spawn (the streaming
    /// speculation pool, when enabled, matches the ASR pool's size).
    pub fn total_workers(&self) -> usize {
        let spec = if self.stream.is_streaming() && self.stream.speculate {
            self.asr.workers.max(1)
        } else {
            0
        };
        self.asr.workers.max(1)
            + self.classify.workers.max(1)
            + self.imm.workers.max(1)
            + self.qa.workers.max(1)
            + spec
    }
}

pub(crate) struct TicketState {
    slot: Mutex<Option<Result<SiriusResponse, SiriusError>>>,
    done: Condvar,
}

/// Completion handle for one submitted query.
///
/// On success the response's `timing.total` is the **sojourn time** — queue
/// wait plus service across every stage, measured from admission — which is
/// exactly the quantity the M/M/1 model predicts.
pub struct Ticket {
    state: Arc<TicketState>,
    submitted: Instant,
}

impl Ticket {
    /// When the query was admitted.
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }

    /// Blocks until the query completes.
    pub fn wait(self) -> Result<SiriusResponse, SiriusError> {
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.state.done.wait(slot).expect("ticket lock");
        }
    }

    /// Blocks until the query completes or `timeout` elapses.
    ///
    /// On timeout the ticket is **kept** (unlike [`Ticket::wait`], which
    /// consumes it): the query is still in flight and the caller may wait
    /// again or poll with [`Ticket::try_take`].
    ///
    /// # Errors
    ///
    /// [`SiriusError::Timeout`] if no result arrived within `timeout`; any
    /// pipeline error the query itself completed with.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<SiriusResponse, SiriusError> {
        // A near-`Duration::MAX` timeout overflows `Instant` arithmetic;
        // such a deadline can never be reached, so degrade to an untimed
        // wait instead of panicking.
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            let Some(deadline) = deadline else {
                slot = self.state.done.wait(slot).expect("ticket lock");
                continue;
            };
            let now = Instant::now();
            if now >= deadline {
                return Err(SiriusError::Timeout { waited: timeout });
            }
            let (guard, _) = self
                .state
                .done
                .wait_timeout(slot, deadline - now)
                .expect("ticket lock");
            slot = guard;
        }
    }

    /// Non-blocking poll; `None` while the query is still in flight.
    pub fn try_take(&self) -> Option<Result<SiriusResponse, SiriusError>> {
        self.state.slot.lock().expect("ticket lock").take()
    }
}

fn complete(state: &Arc<TicketState>, result: Result<SiriusResponse, SiriusError>) {
    let mut slot = state.slot.lock().expect("ticket lock");
    *slot = Some(result);
    state.done.notify_all();
}

/// Completes a ticket and accounts for the outcome: successful queries
/// record their sojourn, failed ones bump the failure counter and record
/// theirs into the `sojourn_failed_ns` histogram, so every admitted
/// query's time is accounted and `accepted = completed + failed + in
/// flight` always balances.
///
/// *Every* terminating query — successful, errored, or expired — records
/// exactly one terminal `total` span when the recorder is enabled. The
/// span used to be recorded only on success, which made recorder-side
/// ledgers (spans-per-query censuses, trace reconstructions) silently
/// undercount whenever a query failed.
pub(crate) fn finish(
    metrics: &ServerMetrics,
    recorder: &dyn Recorder,
    started: Instant,
    tenant: Option<&TenantObs>,
    ticket: &Arc<TicketState>,
    result: Result<SiriusResponse, SiriusError>,
) {
    let sojourn = started.elapsed();
    match &result {
        Ok(_) => {
            metrics.completed.inc();
            metrics.sojourn.record_duration(sojourn);
            if let Some(tenant) = tenant {
                tenant.completed.inc();
                tenant.sojourn.record_duration(sojourn);
            }
        }
        Err(_) => {
            metrics.failed.inc();
            metrics.sojourn_failed.record_duration(sojourn);
            if let Some(tenant) = tenant {
                tenant.failed.inc();
            }
        }
    }
    if let Some(tenant) = tenant {
        tenant.in_flight.dec();
    }
    if recorder.enabled() {
        recorder.record("total", SpanKind::Total, sojourn);
    }
    complete(ticket, result);
}

/// Completes the ticket of a job that expired in a queue: it already missed
/// its deadline, so the typed deadline error reports the time it actually
/// spent (all of it queue wait — no stage served it) and a zero-backlog
/// retry hint (the client's own abandoned job is gone; the next attempt
/// faces admission control afresh).
fn expire(metrics: &ServerMetrics, recorder: &dyn Recorder, ctx: Ctx) {
    let expected = ctx.started.elapsed();
    let deadline = ctx
        .deadline
        .map_or(Duration::ZERO, |d| d.duration_since(ctx.started));
    finish(
        metrics,
        recorder,
        ctx.started,
        ctx.tenant.as_deref(),
        &ctx.ticket,
        Err(SiriusError::DeadlineUnmeetable {
            expected,
            deadline,
            retry_after: expected.saturating_sub(deadline),
        }),
    );
}

/// Per-query state carried alongside stage requests as they move through
/// the queues. Grows monotonically: each stage adds what the final response
/// assembly needs.
pub(crate) struct Ctx {
    pub(crate) ticket: Arc<TicketState>,
    pub(crate) started: Instant,
    /// Absolute completion deadline (admission instant + the caller's SLO),
    /// `None` for deadline-free submits or unrepresentably far deadlines.
    pub(crate) deadline: Option<Instant>,
    pub(crate) image: Option<GrayImage>,
    pub(crate) recognized: String,
    pub(crate) asr_timing: AsrTiming,
    pub(crate) classify: Duration,
    pub(crate) imm_timing: Option<ImmTiming>,
    pub(crate) matched_venue: Option<String>,
    /// The tenant class's telemetry when the query entered through
    /// [`SiriusServer::submit_classed`].
    pub(crate) tenant: Option<Arc<TenantObs>>,
    /// The result-cache key this query missed on (set at the ASR-commit
    /// consult); completion fills the cache under it.
    pub(crate) cache_key: Option<CacheKey>,
}

/// A retained handle onto one stage's queue that refreshes its depth and
/// capacity gauges on demand. Holding it keeps a `Sender` clone alive, so
/// probes must be dropped before the workers are joined at shutdown —
/// otherwise the interior queues never close.
struct QueueProbe {
    depth: Gauge,
    capacity: Gauge,
    read: Box<dyn Fn() -> (usize, usize) + Send + Sync>,
}

impl QueueProbe {
    fn new<T: Send + 'static>(metrics: &ServerMetrics, stage: &str, tx: &Sender<T>) -> Self {
        let probe = Self {
            depth: metrics
                .registry()
                .gauge(&metrics.scoped(&format!("{stage}.queue_depth"))),
            capacity: metrics
                .registry()
                .gauge(&metrics.scoped(&format!("{stage}.queue_capacity"))),
            read: {
                let tx = tx.clone();
                Box::new(move || (tx.len(), tx.capacity()))
            },
        };
        probe.refresh();
        probe
    }

    fn refresh(&self) {
        let (depth, capacity) = (self.read)();
        self.depth.set(depth as u64);
        self.capacity.set(capacity as u64);
    }

    /// The queue's current depth, read live (not the gauge's last value).
    fn depth_now(&self) -> usize {
        (self.read)().0
    }
}

/// The staged Sirius serving runtime. See the module docs for the queueing
/// topology and policies.
pub struct SiriusServer {
    sirius: Arc<Sirius>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    tenants: TenantTable,
    caches: Option<Arc<ResultCaches>>,
    submit_tx: Option<Sender<Job<Ctx, AsrRequest>>>,
    queue_probes: Vec<QueueProbe>,
    workers: Vec<JoinHandle<()>>,
}

impl SiriusServer {
    /// Starts worker pools for every stage over a shared trained assistant,
    /// with per-query span tracing disabled (metrics are always on — their
    /// hot path is a handful of relaxed atomics).
    pub fn start(sirius: Arc<Sirius>, config: ServerConfig) -> Self {
        Self::start_with_recorder(sirius, config, Arc::new(NoopRecorder))
    }

    /// Starts the runtime with a [`Recorder`] that receives every query's
    /// queue-wait/service spans per stage plus a `total` span on success.
    pub fn start_with_recorder(
        sirius: Arc<Sirius>,
        config: ServerConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::start_with_metrics(sirius, config, recorder, ServerMetrics::new())
    }

    /// Starts the runtime recording into caller-supplied metrics — the
    /// cluster front-end's hook for wiring every replica into one shared
    /// registry under per-replica prefixes
    /// ([`ServerMetrics::in_registry`]). The queue gauges inherit the
    /// metrics' prefix, so nothing aliases between replicas.
    pub fn start_with_metrics(
        sirius: Arc<Sirius>,
        config: ServerConfig,
        recorder: Arc<dyn Recorder>,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        let (asr_tx, asr_rx) = bounded::<Job<Ctx, AsrRequest>>(config.asr.queue_depth);
        let (cls_tx, cls_rx) = bounded::<Job<Ctx, ClassifyRequest>>(config.classify.queue_depth);
        let (imm_tx, imm_rx) = bounded::<Job<Ctx, ImmRequest>>(config.imm.queue_depth);
        let (qa_tx, qa_rx) = bounded::<Job<Ctx, QaRequest>>(config.qa.queue_depth);

        let tenants = TenantTable::build(&config.tenants, &metrics);
        let caches = config
            .cache
            .enabled
            .then(|| Arc::new(ResultCaches::register(config.cache, &metrics)));

        let queue_probes = vec![
            QueueProbe::new(&metrics, "asr", &asr_tx),
            QueueProbe::new(&metrics, "classify", &cls_tx),
            QueueProbe::new(&metrics, "imm", &imm_tx),
            QueueProbe::new(&metrics, "qa", &qa_tx),
        ];

        let mut workers = Vec::with_capacity(config.total_workers());

        // QA pool: the chain's tail; completes tickets and never blocks.
        workers.extend(spawn_stage_pool(
            Arc::new(QaStage(Arc::clone(&sirius))),
            config.qa.workers,
            qa_rx,
            Arc::clone(&metrics.qa),
            Arc::clone(&recorder),
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                let caches = caches.clone();
                move |mut ctx: Ctx, result| {
                    let cache_key = ctx.cache_key.take();
                    let response = result.map(|qa| SiriusResponse {
                        recognized: ctx.recognized,
                        outcome: SiriusOutcome::Answer(qa.answer),
                        matched_venue: ctx.matched_venue,
                        timing: StageTiming {
                            asr: ctx.asr_timing,
                            classify: ctx.classify,
                            qa: Some(qa.breakdown),
                            imm: ctx.imm_timing,
                            total: ctx.started.elapsed(),
                        },
                    });
                    if let (Some(caches), Some(key), Ok(response)) =
                        (caches.as_deref(), cache_key, &response)
                    {
                        caches.fill(key, CachedAnswer::of(response));
                    }
                    finish(
                        &metrics,
                        recorder.as_ref(),
                        ctx.started,
                        ctx.tenant.as_deref(),
                        &ctx.ticket,
                        response,
                    );
                }
            },
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                move |ctx: Ctx| expire(&metrics, recorder.as_ref(), ctx)
            },
        ));

        // IMM pool: match + rewrite, then forward to QA (blocking send =
        // back-pressure).
        workers.extend(spawn_stage_pool(
            Arc::new(ImmStage(Arc::clone(&sirius))),
            config.imm.workers,
            imm_rx,
            Arc::clone(&metrics.imm),
            Arc::clone(&recorder),
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                move |mut ctx: Ctx, result| match result {
                    Ok(imm) => {
                        ctx.imm_timing = imm.timing;
                        ctx.matched_venue = imm.matched_venue;
                        let deadline = ctx.deadline;
                        let job = Job::with_deadline(
                            ctx,
                            QaRequest {
                                question: imm.question,
                            },
                            deadline,
                        );
                        if let Err(sirius_par::queue::SendError(job)) = qa_tx.send(job) {
                            finish(
                                &metrics,
                                recorder.as_ref(),
                                job.ctx.started,
                                job.ctx.tenant.as_deref(),
                                &job.ctx.ticket,
                                Err(SiriusError::ShuttingDown),
                            );
                        }
                    }
                    Err(err) => finish(
                        &metrics,
                        recorder.as_ref(),
                        ctx.started,
                        ctx.tenant.as_deref(),
                        &ctx.ticket,
                        Err(err),
                    ),
                }
            },
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                move |ctx: Ctx| expire(&metrics, recorder.as_ref(), ctx)
            },
        ));

        // Classify pool: actions complete immediately; questions continue to
        // IMM (which passes through when there is no image).
        workers.extend(spawn_stage_pool(
            Arc::new(ClassifyStage(Arc::clone(&sirius))),
            config.classify.workers,
            cls_rx,
            Arc::clone(&metrics.classify),
            Arc::clone(&recorder),
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                let caches = caches.clone();
                move |mut ctx: Ctx, result| match result {
                    Ok(cls) => {
                        ctx.classify = cls.elapsed;
                        if let Some(action) = cls.action {
                            let cache_key = ctx.cache_key.take();
                            let response = SiriusResponse {
                                recognized: ctx.recognized,
                                outcome: SiriusOutcome::Action(action),
                                matched_venue: None,
                                timing: StageTiming {
                                    asr: ctx.asr_timing,
                                    classify: ctx.classify,
                                    qa: None,
                                    imm: None,
                                    total: ctx.started.elapsed(),
                                },
                            };
                            if let (Some(caches), Some(key)) = (caches.as_deref(), cache_key) {
                                caches.fill(key, CachedAnswer::of(&response));
                            }
                            finish(
                                &metrics,
                                recorder.as_ref(),
                                ctx.started,
                                ctx.tenant.as_deref(),
                                &ctx.ticket,
                                Ok(response),
                            );
                            return;
                        }
                        let question = ctx.recognized.clone();
                        let image = ctx.image.take();
                        let deadline = ctx.deadline;
                        let job = Job::with_deadline(ctx, ImmRequest { question, image }, deadline);
                        if let Err(sirius_par::queue::SendError(job)) = imm_tx.send(job) {
                            finish(
                                &metrics,
                                recorder.as_ref(),
                                job.ctx.started,
                                job.ctx.tenant.as_deref(),
                                &job.ctx.ticket,
                                Err(SiriusError::ShuttingDown),
                            );
                        }
                    }
                    Err(err) => finish(
                        &metrics,
                        recorder.as_ref(),
                        ctx.started,
                        ctx.tenant.as_deref(),
                        &ctx.ticket,
                        Err(err),
                    ),
                }
            },
            {
                let metrics = Arc::clone(&metrics);
                let recorder = Arc::clone(&recorder);
                move |ctx: Ctx| expire(&metrics, recorder.as_ref(), ctx)
            },
        ));

        // ASR pool: the chain's head, fed by `submit`. Routing and expiry
        // are identical whether or not the pool scores through the batch
        // collector, so both closures are built once and moved into
        // whichever stage variant the batch policy selects.
        let asr_route = {
            let metrics = Arc::clone(&metrics);
            let recorder = Arc::clone(&recorder);
            let caches = caches.clone();
            move |mut ctx: Ctx, result: Result<AsrResponse, SiriusError>| match result {
                Ok(asr) => {
                    ctx.recognized = asr.recognized.clone();
                    ctx.asr_timing = asr.timing;
                    // The post-ASR-commit cache consult: a verified hit
                    // serves the cached outcome with this query's own fresh
                    // ASR text/timing and never touches Classify/IMM/QA. A
                    // miss stamps the key on the context so completion
                    // fills the cache.
                    if let Some(caches) = caches.as_deref() {
                        let key = CacheKey::of(&asr.recognized, ctx.image.as_ref());
                        if let Some(cached) = caches.lookup(&key, &asr.recognized) {
                            if let Some(tenant) = &ctx.tenant {
                                tenant.cache_hit.inc();
                            }
                            let response = SiriusResponse {
                                recognized: asr.recognized,
                                outcome: cached.outcome,
                                matched_venue: cached.matched_venue,
                                timing: StageTiming {
                                    asr: asr.timing,
                                    classify: Duration::ZERO,
                                    qa: None,
                                    imm: None,
                                    total: ctx.started.elapsed(),
                                },
                            };
                            finish(
                                &metrics,
                                recorder.as_ref(),
                                ctx.started,
                                ctx.tenant.as_deref(),
                                &ctx.ticket,
                                Ok(response),
                            );
                            return;
                        }
                        ctx.cache_key = Some(key);
                    }
                    let deadline = ctx.deadline;
                    let job = Job::with_deadline(
                        ctx,
                        ClassifyRequest {
                            recognized: asr.recognized,
                        },
                        deadline,
                    );
                    if let Err(sirius_par::queue::SendError(job)) = cls_tx.send(job) {
                        finish(
                            &metrics,
                            recorder.as_ref(),
                            job.ctx.started,
                            job.ctx.tenant.as_deref(),
                            &job.ctx.ticket,
                            Err(SiriusError::ShuttingDown),
                        );
                    }
                }
                Err(err) => finish(
                    &metrics,
                    recorder.as_ref(),
                    ctx.started,
                    ctx.tenant.as_deref(),
                    &ctx.ticket,
                    Err(err),
                ),
            }
        };
        let asr_expire = {
            let metrics = Arc::clone(&metrics);
            let recorder = Arc::clone(&recorder);
            move |ctx: Ctx| expire(&metrics, recorder.as_ref(), ctx)
        };
        if config.stream.is_streaming() {
            // Streaming ASR workers decode paced chunks in place; when the
            // batch policy also calls for a collector, DNN block GEMMs are
            // still coalesced across queries — the streaming recognizer
            // scores through the same collector handle.
            let remote = if config.batch.is_batching() {
                let scorer: Arc<dyn WindowScorer> =
                    Arc::new(SiriusWindowScorer::new(Arc::clone(&sirius)));
                let (handle, collector) = spawn_batch_collector(
                    scorer,
                    config.batch,
                    Arc::clone(&metrics.batch),
                    config.asr.workers.max(1),
                );
                workers.push(collector);
                Some(handle)
            } else {
                None
            };
            workers.extend(spawn_streaming_stages(
                Arc::clone(&sirius),
                &config,
                asr_rx,
                Arc::clone(&metrics),
                Arc::clone(&recorder),
                remote,
                caches.clone(),
                asr_route,
                asr_expire,
            ));
        } else if config.batch.is_batching() {
            // Workers hold the collector's handle through their stage, so
            // the pool exiting is what lets the collector drain and stop;
            // its join below can never deadlock. Expired jobs are dropped
            // by the pool at dequeue, before the stage handler runs, so an
            // abandoned query never occupies a slot in a batch.
            let scorer: Arc<dyn WindowScorer> =
                Arc::new(SiriusWindowScorer::new(Arc::clone(&sirius)));
            let (handle, collector) = spawn_batch_collector(
                scorer,
                config.batch,
                Arc::clone(&metrics.batch),
                config.asr.workers.max(1),
            );
            workers.extend(spawn_stage_pool(
                Arc::new(BatchedAsrStage::new(Arc::clone(&sirius), handle)),
                config.asr.workers,
                asr_rx,
                Arc::clone(&metrics.asr),
                Arc::clone(&recorder),
                asr_route,
                asr_expire,
            ));
            workers.push(collector);
        } else {
            workers.extend(spawn_stage_pool(
                Arc::new(AsrStage(Arc::clone(&sirius))),
                config.asr.workers,
                asr_rx,
                Arc::clone(&metrics.asr),
                Arc::clone(&recorder),
                asr_route,
                asr_expire,
            ));
        }

        Self {
            sirius,
            config,
            metrics,
            tenants,
            caches,
            submit_tx: Some(asr_tx),
            queue_probes,
            workers,
        }
    }

    /// The shared assistant this runtime serves.
    pub fn sirius(&self) -> &Arc<Sirius> {
        &self.sirius
    }

    /// The configuration the runtime was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The runtime's metrics (live handles; see [`crate::metrics`] for the
    /// naming scheme).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Refreshes the queue-depth/capacity gauges and exports every metric.
    pub fn metrics_snapshot(&self) -> Snapshot {
        for probe in &self.queue_probes {
            probe.refresh();
        }
        self.metrics.registry().snapshot()
    }

    /// Queries currently waiting in the admission (ASR) queue.
    pub fn admission_queue_len(&self) -> usize {
        self.submit_tx.as_ref().map_or(0, Sender::len)
    }

    /// Worker threads serving the stage at `STAGES` index `i`.
    fn stage_workers(&self, i: usize) -> usize {
        let stage = match i {
            0 => self.config.asr,
            1 => self.config.classify,
            2 => self.config.imm,
            _ => self.config.qa,
        };
        stage.workers.max(1)
    }

    /// The expected end-to-end sojourn of a query admitted *right now*:
    /// Σ over stages of `(queue depth + in-flight) / workers + 1` × the
    /// stage's recent mean service time (EWMA).
    ///
    /// Each stage term is the backlog a new arrival queues behind, spread
    /// over the stage's workers, plus its own service. Stages whose meter
    /// has not observed a job yet contribute nothing — a cold runtime
    /// admits everything and the estimate sharpens as the meters warm up.
    /// This is the deadline-aware admission policy's decision quantity; the
    /// paper's tail-latency target (Table 8) applied as a runtime check
    /// instead of an offline provisioning row.
    pub fn expected_sojourn(&self) -> Duration {
        let mut total_ns = 0.0f64;
        for (i, stage) in STAGES.iter().enumerate() {
            let obs = self.metrics.stage(stage).expect("known stage");
            let mean_ns = obs.service_meter.mean();
            if mean_ns <= 0.0 {
                continue;
            }
            let backlog = self.queue_probes[i].depth_now() + obs.in_flight.get() as usize;
            total_ns += mean_ns * (backlog as f64 / self.stage_workers(i) as f64 + 1.0);
        }
        Duration::from_nanos(total_ns as u64)
    }

    /// Admits a query, or sheds it if the admission queue is full.
    ///
    /// # Errors
    ///
    /// [`SiriusError::Overloaded`] when the ASR queue is at capacity;
    /// [`SiriusError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: SiriusInput) -> Result<Ticket, SiriusError> {
        self.submit_inner(input, None, None)
    }

    /// Admits a query under a tenant traffic class: weighted-fair,
    /// deadline-aware admission. The class's SLO becomes the query's
    /// deadline, but admission is gated on the class's **effective budget**
    /// `slo × weight / max_weight` — so as the expected sojourn grows,
    /// low-weight classes shed first and high-weight classes keep
    /// admitting until the estimate exceeds their full SLO. See
    /// [`crate::qos`] for the rule and the per-class `retry_after`
    /// semantics.
    ///
    /// # Errors
    ///
    /// [`SiriusError::UnknownTenantClass`] when `class` is not in
    /// [`ServerConfig::tenants`];
    /// [`SiriusError::DeadlineUnmeetable`] when the expected sojourn
    /// exceeds the class budget — `retry_after` is `expected − budget`,
    /// the drain the *class* needs before it admits again (longer than the
    /// raw-SLO hint for every class below max weight);
    /// [`SiriusError::Overloaded`] / [`SiriusError::ShuttingDown`] as for
    /// [`SiriusServer::submit`].
    pub fn submit_classed(&self, input: SiriusInput, class: &str) -> Result<Ticket, SiriusError> {
        let (class, obs) =
            self.tenants
                .lookup(class)
                .ok_or_else(|| SiriusError::UnknownTenantClass {
                    class: class.to_owned(),
                })?;
        let expected = self.expected_sojourn();
        let budget = self.tenants.budget(class);
        if expected > budget {
            self.metrics.shed_deadline.inc();
            obs.shed_deadline.inc();
            return Err(SiriusError::DeadlineUnmeetable {
                expected,
                deadline: class.slo,
                // The hint drains the backlog to the *class* budget, not to
                // the raw SLO: a low-weight class must wait out the extra
                // `slo − budget` of backlog its weight denies it.
                retry_after: expected - budget,
            });
        }
        self.submit_inner(input, Some(class.slo), Some(Arc::clone(obs)))
    }

    /// The result caches, when [`ServerConfig::cache`] enabled them.
    pub fn caches(&self) -> Option<&Arc<ResultCaches>> {
        self.caches.as_ref()
    }

    /// Invalidates both result caches in O(1) (no-op when caching is off).
    /// Pre-bump entries can never be served again; they are lazily removed
    /// (counted `cache.{qa,imm}.stale`) as lookups touch them.
    pub fn invalidate_result_caches(&self) {
        if let Some(caches) = &self.caches {
            caches.invalidate_all();
        }
    }

    /// Admits a query only if its deadline looks meetable: sheds up front
    /// when the [`SiriusServer::expected_sojourn`] estimate already exceeds
    /// `deadline`, and stamps admitted jobs so workers drop them unserved
    /// if they expire in a queue anyway (completing the ticket with the
    /// same typed error).
    ///
    /// With an effectively infinite deadline (for example
    /// `Duration::MAX`) this behaves exactly like [`SiriusServer::submit`]:
    /// the estimate can never exceed it and the deadline stamp degrades to
    /// "none", leaving shed-on-full as the only admission policy.
    ///
    /// # Errors
    ///
    /// [`SiriusError::DeadlineUnmeetable`] when the expected sojourn
    /// exceeds `deadline` — `retry_after` is the estimate's excess over the
    /// deadline, i.e. how long the backlog ahead needs to drain at the
    /// current service rate before the deadline becomes meetable;
    /// [`SiriusError::Overloaded`] when the ASR queue is at capacity;
    /// [`SiriusError::ShuttingDown`] after shutdown began.
    pub fn submit_with_deadline(
        &self,
        input: SiriusInput,
        deadline: Duration,
    ) -> Result<Ticket, SiriusError> {
        let expected = self.expected_sojourn();
        if expected > deadline {
            self.metrics.shed_deadline.inc();
            return Err(SiriusError::DeadlineUnmeetable {
                expected,
                deadline,
                retry_after: expected - deadline,
            });
        }
        self.submit_inner(input, Some(deadline), None)
    }

    fn submit_inner(
        &self,
        input: SiriusInput,
        deadline: Option<Duration>,
        tenant: Option<Arc<TenantObs>>,
    ) -> Result<Ticket, SiriusError> {
        let tx = self.submit_tx.as_ref().ok_or(SiriusError::ShuttingDown)?;
        let started = Instant::now();
        // A deadline too far out to represent as an `Instant` can never
        // pass; carry it as "none" so workers skip the expiry check.
        let deadline = deadline.and_then(|d| started.checked_add(d));
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let ctx = Ctx {
            ticket: Arc::clone(&state),
            started,
            deadline,
            image: input.image,
            recognized: String::new(),
            asr_timing: AsrTiming::default(),
            classify: Duration::ZERO,
            imm_timing: None,
            matched_venue: None,
            tenant: tenant.clone(),
            cache_key: None,
        };
        let req = AsrRequest {
            audio: input.audio,
            acoustic: self.config.acoustic,
        };
        match tx.try_send(Job {
            ctx,
            req,
            enqueued: started,
            deadline,
        }) {
            Ok(()) => {
                self.metrics.accepted.inc();
                if let Some(tenant) = &tenant {
                    tenant.accepted.inc();
                    tenant.in_flight.inc();
                }
                Ok(Ticket {
                    state,
                    submitted: started,
                })
            }
            Err(TrySendError::Full(_)) => {
                self.metrics.shed.inc();
                Err(SiriusError::Overloaded { stage: "asr" })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.rejected_shutdown.inc();
                Err(SiriusError::ShuttingDown)
            }
        }
    }

    /// Submits and waits: the one-call synchronous client of the staged
    /// path. Output matches [`Sirius::process_with`] bit-for-bit (same
    /// stage methods, same order).
    pub fn process_sync(&self, input: SiriusInput) -> Result<SiriusResponse, SiriusError> {
        self.submit(input)?.wait()
    }

    /// Stops admitting, drains every accepted query, and joins all workers.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // Closing the admission queue cascades: each pool drains, exits and
        // drops its sender to the next queue, closing that one in turn. The
        // queue probes hold sender clones on the interior queues, so they
        // must go first or the cascade never reaches the downstream pools.
        self.queue_probes.clear();
        drop(self.submit_tx.take());
        for worker in self.workers.drain(..) {
            worker.join().expect("stage worker never panics");
        }
    }
}

impl Drop for SiriusServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for SiriusServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiriusServer")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .field("accepting", &self.submit_tx.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_ticket() -> (Arc<TicketState>, Ticket) {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let ticket = Ticket {
            state: Arc::clone(&state),
            submitted: Instant::now(),
        };
        (state, ticket)
    }

    #[test]
    fn wait_timeout_returns_typed_timeout_and_keeps_the_ticket() {
        let (state, ticket) = fresh_ticket();
        let waited = Duration::from_millis(10);
        assert_eq!(
            ticket.wait_timeout(waited),
            Err(SiriusError::Timeout { waited })
        );
        // The ticket survived the timeout; a late completion is observable.
        complete(&state, Err(SiriusError::ShuttingDown));
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(5)),
            Err(SiriusError::ShuttingDown)
        );
    }

    #[test]
    fn wait_timeout_near_duration_max_degrades_to_untimed_wait() {
        // Regression: `Instant::now() + Duration::MAX` panics on overflow;
        // an unrepresentable deadline must degrade to an untimed wait that
        // still observes the completion.
        for timeout in [Duration::MAX, Duration::MAX - Duration::from_nanos(1)] {
            let (state, ticket) = fresh_ticket();
            let completer = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                complete(&state, Err(SiriusError::ShuttingDown));
            });
            assert_eq!(ticket.wait_timeout(timeout), Err(SiriusError::ShuttingDown));
            completer.join().unwrap();
        }
    }

    #[test]
    fn wait_timeout_wakes_on_completion_before_the_deadline() {
        let (state, ticket) = fresh_ticket();
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            complete(&state, Err(SiriusError::StagePanicked { stage: "qa" }));
        });
        let begun = Instant::now();
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(30)),
            Err(SiriusError::StagePanicked { stage: "qa" })
        );
        assert!(begun.elapsed() < Duration::from_secs(30));
        completer.join().unwrap();
    }
}
