//! Generic worker pool over a typed [`Stage`].
//!
//! [`spawn_stage_pool`] turns any `Stage` implementation into a pool of
//! named OS threads draining one bounded queue. Each queued [`Job`] carries
//! an opaque per-query context `C` alongside the stage request plus its
//! enqueue timestamp; the `route` callback receives the context and the
//! stage result and decides what happens next (forward to the next stage's
//! queue, or complete the query's ticket). Handlers run under
//! `catch_unwind`, so a panicking request is converted into
//! [`SiriusError::StagePanicked`] and the worker survives to serve the next
//! job.
//!
//! A job may additionally carry a **deadline**. A worker checks it at
//! dequeue, *before* invoking the handler: a job whose deadline has already
//! passed is dropped — counted in the stage's `expired` counter and handed
//! to the `on_expired` callback (which completes the query's ticket with
//! the typed deadline error) — so stage service time is never spent on work
//! the client has abandoned.
//!
//! Every worker attributes each job's time to the stage's [`StageObs`]
//! histograms: queue wait (enqueue → dequeue) and service (the `handle`
//! call). Those records are lock-free atomics. When the optional
//! [`Recorder`] is enabled, the same two spans are also reported per query.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sirius::error::SiriusError;
use sirius::stage::Stage;
use sirius_obs::{Recorder, SpanKind};
use sirius_par::queue::Receiver;

use crate::metrics::StageObs;

/// One queued unit of work: the per-query context, the stage request, when
/// it entered the queue (so the worker can attribute queue wait), and the
/// query's optional completion deadline.
#[derive(Debug)]
pub struct Job<C, Req> {
    /// Per-query context threaded through the stage graph.
    pub ctx: C,
    /// The typed request for the stage draining this queue.
    pub req: Req,
    /// When the job was enqueued.
    pub enqueued: Instant,
    /// Absolute completion deadline. A worker dequeuing the job at or after
    /// this instant drops it without invoking the stage handler.
    pub deadline: Option<Instant>,
}

impl<C, Req> Job<C, Req> {
    /// A deadline-free job stamped with the current instant.
    pub fn now(ctx: C, req: Req) -> Self {
        Self::with_deadline(ctx, req, None)
    }

    /// A job stamped with the current instant, carrying the query's
    /// completion deadline across the stage hand-off.
    pub fn with_deadline(ctx: C, req: Req, deadline: Option<Instant>) -> Self {
        Self {
            ctx,
            req,
            enqueued: Instant::now(),
            deadline,
        }
    }
}

/// Spawns `workers` named threads (clamped to at least 1) that drain `rx`
/// through `stage` and hand each result to `route`, recording queue-wait
/// and service time into `obs` (and into `recorder` when it is enabled).
/// Jobs whose deadline already passed at dequeue are dropped unserved and
/// handed to `on_expired` instead. The threads exit when the queue is
/// closed (every sender dropped) and drained.
pub fn spawn_stage_pool<S, C, R, E>(
    stage: Arc<S>,
    workers: usize,
    rx: Receiver<Job<C, S::Req>>,
    obs: Arc<StageObs>,
    recorder: Arc<dyn Recorder>,
    route: R,
    on_expired: E,
) -> Vec<JoinHandle<()>>
where
    S: Stage + 'static,
    C: Send + 'static,
    R: Fn(C, Result<S::Resp, SiriusError>) + Send + Sync + Clone + 'static,
    E: Fn(C) + Send + Sync + Clone + 'static,
{
    (0..workers.max(1))
        .map(|i| {
            let stage = Arc::clone(&stage);
            let rx = rx.clone();
            let obs = Arc::clone(&obs);
            let recorder = Arc::clone(&recorder);
            let route = route.clone();
            let on_expired = on_expired.clone();
            std::thread::Builder::new()
                .name(format!("sirius-{}-{i}", stage.name()))
                .spawn(move || {
                    while let Some(Job {
                        ctx,
                        req,
                        enqueued,
                        deadline,
                    }) = rx.recv()
                    {
                        let wait = enqueued.elapsed();
                        obs.queue_wait.record_duration(wait);
                        if recorder.enabled() {
                            recorder.record(stage.name(), SpanKind::QueueWait, wait);
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            obs.expired.inc();
                            on_expired(ctx);
                            continue;
                        }
                        obs.in_flight.inc();
                        let begun = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| stage.handle(req)));
                        let service = begun.elapsed();
                        obs.in_flight.dec();
                        obs.service.record_duration(service);
                        obs.service_meter.record_duration(service);
                        if recorder.enabled() {
                            recorder.record(stage.name(), SpanKind::Service, service);
                        }
                        let result = result.unwrap_or_else(|_| {
                            obs.panics.inc();
                            Err(SiriusError::StagePanicked {
                                stage: stage.name(),
                            })
                        });
                        route(ctx, result);
                    }
                })
                .expect("spawn stage worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    use sirius_obs::{CollectingRecorder, Registry};
    use sirius_par::queue::bounded;

    /// A stage that doubles, errors on odd input, and panics on 13.
    struct Doubler;

    impl Stage for Doubler {
        type Req = u64;
        type Resp = u64;

        fn name(&self) -> &'static str {
            "doubler"
        }

        fn handle(&self, req: u64) -> Result<u64, SiriusError> {
            assert!(req != 13, "unlucky request");
            if req % 2 == 1 {
                return Err(SiriusError::ShuttingDown);
            }
            Ok(req * 2)
        }
    }

    #[test]
    fn pool_processes_routes_observes_and_survives_panics() {
        let registry = Registry::new();
        let obs = StageObs::register(&registry, "doubler");
        let recorder = Arc::new(CollectingRecorder::new());
        let (tx, rx) = bounded(16);
        let (out_tx, out_rx) = mpsc::channel();
        let workers = spawn_stage_pool(
            Arc::new(Doubler),
            3,
            rx,
            Arc::clone(&obs),
            Arc::<CollectingRecorder>::clone(&recorder),
            move |id: usize, result| {
                out_tx.send((id, result)).unwrap();
            },
            |_id: usize| panic!("no job carries a deadline"),
        );
        let inputs: Vec<u64> = vec![2, 4, 13, 7, 100];
        for (id, req) in inputs.iter().enumerate() {
            tx.send(Job::now(id, *req)).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        let mut results: Vec<_> = out_rx.iter().collect();
        results.sort_by_key(|(id, _)| *id);
        assert_eq!(results[0].1, Ok(4));
        assert_eq!(results[1].1, Ok(8));
        assert_eq!(
            results[2].1,
            Err(SiriusError::StagePanicked { stage: "doubler" })
        );
        assert_eq!(results[3].1, Err(SiriusError::ShuttingDown));
        assert_eq!(results[4].1, Ok(200));

        // Every job — including the panicked one — is attributed.
        let snap = registry.snapshot();
        assert_eq!(snap.histogram("doubler.queue_wait_ns").unwrap().count, 5);
        assert_eq!(snap.histogram("doubler.service_ns").unwrap().count, 5);
        assert_eq!(snap.counter("doubler.panics"), Some(1));
        let events = recorder.events();
        assert_eq!(
            events
                .iter()
                .filter(|(s, k, _)| *s == "doubler" && *k == SpanKind::QueueWait)
                .count(),
            5
        );
        assert_eq!(
            events
                .iter()
                .filter(|(s, k, _)| *s == "doubler" && *k == SpanKind::Service)
                .count(),
            5
        );
        assert_eq!(snap.counter("doubler.expired"), Some(0));
        assert_eq!(snap.gauge("doubler.in_flight"), Some(0), "all drained");
    }

    #[test]
    fn expired_jobs_skip_the_handler_entirely() {
        let registry = Registry::new();
        let obs = StageObs::register(&registry, "doubler");
        let (tx, rx) = bounded(16);
        let (out_tx, out_rx) = mpsc::channel();
        let expired_tx = out_tx.clone();
        let workers = spawn_stage_pool(
            Arc::new(Doubler),
            1,
            rx,
            Arc::clone(&obs),
            Arc::new(sirius_obs::NoopRecorder),
            move |id: usize, result| out_tx.send((id, Some(result))).unwrap(),
            move |id: usize| expired_tx.send((id, None)).unwrap(),
        );
        let past = Instant::now();
        // A deadline in the past, one in the far future, one absent.
        tx.send(Job::with_deadline(0usize, 2u64, Some(past)))
            .unwrap();
        tx.send(Job::with_deadline(
            1usize,
            4u64,
            Instant::now().checked_add(std::time::Duration::from_secs(3600)),
        ))
        .unwrap();
        tx.send(Job::now(2usize, 6u64)).unwrap();
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        let mut results: Vec<_> = out_rx.iter().collect();
        results.sort_by_key(|(id, _)| *id);
        assert_eq!(results[0], (0, None), "expired job routed to on_expired");
        assert_eq!(results[1], (1, Some(Ok(8))));
        assert_eq!(results[2], (2, Some(Ok(12))));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("doubler.expired"), Some(1));
        // The expired job waited in the queue but consumed no service time.
        assert_eq!(snap.histogram("doubler.queue_wait_ns").unwrap().count, 3);
        assert_eq!(snap.histogram("doubler.service_ns").unwrap().count, 2);
        assert_eq!(snap.meter("doubler.service_ewma_ns").unwrap().count, 2);
    }
}
