//! Generic worker pool over a typed [`Stage`].
//!
//! [`spawn_stage_pool`] turns any `Stage` implementation into a pool of
//! named OS threads draining one bounded queue. Each queued job carries an
//! opaque per-query context `C` alongside the stage request; the `route`
//! callback receives the context and the stage result and decides what
//! happens next (forward to the next stage's queue, or complete the query's
//! ticket). Handlers run under `catch_unwind`, so a panicking request is
//! converted into [`SiriusError::StagePanicked`] and the worker survives to
//! serve the next job.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use sirius::error::SiriusError;
use sirius::stage::Stage;
use sirius_par::queue::Receiver;

/// Spawns `workers` named threads (clamped to at least 1) that drain `rx`
/// through `stage` and hand each result to `route`. The threads exit when
/// the queue is closed (every sender dropped) and drained.
pub fn spawn_stage_pool<S, C, R>(
    stage: Arc<S>,
    workers: usize,
    rx: Receiver<(C, S::Req)>,
    route: R,
) -> Vec<JoinHandle<()>>
where
    S: Stage + 'static,
    C: Send + 'static,
    R: Fn(C, Result<S::Resp, SiriusError>) + Send + Sync + Clone + 'static,
{
    (0..workers.max(1))
        .map(|i| {
            let stage = Arc::clone(&stage);
            let rx = rx.clone();
            let route = route.clone();
            std::thread::Builder::new()
                .name(format!("sirius-{}-{i}", stage.name()))
                .spawn(move || {
                    while let Some((ctx, req)) = rx.recv() {
                        let result = catch_unwind(AssertUnwindSafe(|| stage.handle(req)))
                            .unwrap_or_else(|_| {
                                Err(SiriusError::StagePanicked {
                                    stage: stage.name(),
                                })
                            });
                        route(ctx, result);
                    }
                })
                .expect("spawn stage worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    use sirius_par::queue::bounded;

    /// A stage that doubles, errors on odd input, and panics on 13.
    struct Doubler;

    impl Stage for Doubler {
        type Req = u64;
        type Resp = u64;

        fn name(&self) -> &'static str {
            "doubler"
        }

        fn handle(&self, req: u64) -> Result<u64, SiriusError> {
            assert!(req != 13, "unlucky request");
            if req % 2 == 1 {
                return Err(SiriusError::ShuttingDown);
            }
            Ok(req * 2)
        }
    }

    #[test]
    fn pool_processes_routes_and_survives_panics() {
        let (tx, rx) = bounded(16);
        let (out_tx, out_rx) = mpsc::channel();
        let workers = spawn_stage_pool(Arc::new(Doubler), 3, rx, move |id: usize, result| {
            out_tx.send((id, result)).unwrap();
        });
        let inputs: Vec<u64> = vec![2, 4, 13, 7, 100];
        for (id, req) in inputs.iter().enumerate() {
            tx.send((id, *req)).unwrap();
        }
        drop(tx);
        for w in workers {
            w.join().unwrap();
        }
        let mut results: Vec<_> = out_rx.iter().collect();
        results.sort_by_key(|(id, _)| *id);
        assert_eq!(results[0].1, Ok(4));
        assert_eq!(results[1].1, Ok(8));
        assert_eq!(
            results[2].1,
            Err(SiriusError::StagePanicked { stage: "doubler" })
        );
        assert_eq!(results[3].1, Err(SiriusError::ShuttingDown));
        assert_eq!(results[4].1, Ok(200));
    }
}
