//! The network serving front-end: a dependency-free, threaded TCP server
//! that puts the cluster's classed admission path behind a real wire
//! protocol, plus a minimal HTTP shim so Prometheus can scrape the same
//! socket.
//!
//! ```text
//!            ┌──────────────────────── NetServer ────────────────────────┐
//! phone ──TCP┤ acceptor thread ── handler thread per connection          │
//!            │   "SIRF…" frames → SiriusCluster::submit{,_classed,       │
//!            │                    _with_deadline} → Answer/Error frame   │
//!            │   "GET /metrics"  → Prometheus text of the shared registry│
//!            └───────────────────────────────────────────────────────────┘
//! ```
//!
//! The paper's warehouse-scale argument is about *services*: Sirius queries
//! arrive from phones over a network and land on a datacenter front-end.
//! Until this module, the cluster, its QoS classes and its result caches
//! were exercised only by in-process function calls; [`NetServer`] is the
//! missing protocol boundary. Queries arrive as [`Frame::Submit`] over the
//! versioned, length-prefixed codec of [`crate::wire`], are routed through
//! exactly the same [`SiriusCluster`] entry points the in-process callers
//! use — so remote answers are **bit-identical** to in-process ones — and
//! complete as [`Frame::Answer`] or a typed [`Frame::Error`] that carries
//! every [`SiriusError`](sirius::error::SiriusError)/
//! [`ClusterError`](sirius::error::ClusterError) variant losslessly
//! (`retry_after` hints included).
//!
//! **Threading.** One acceptor thread; one handler thread per connection,
//! its work wrapped in `catch_unwind` so a handler bug costs one
//! connection, never the listener. Hostile bytes — wrong magic, an alien
//! version, an oversize length claim, an undecodable body — are answered
//! with a typed protocol-error frame and the connection closed; a peer
//! that goes silent mid-frame is cut off by the read timeout. Nothing a
//! client sends can panic the server or wedge a thread forever.
//!
//! **Shutdown.** [`NetServer::shutdown`] (and `Drop`) stops accepting,
//! half-closes every connection's read side — in-flight answers still
//! flush — joins every handler, then drops the cluster, which drains every
//! admitted query. Graceful end to end.
//!
//! **Telemetry.** Connection, frame and byte counters live in the same
//! shared registry as every replica's metrics (under `net.`), so one
//! `GET /metrics` scrape exports the whole serving stack.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sirius::pipeline::{SiriusInput, SiriusResponse};
use sirius_obs::{Counter, Gauge, Registry};

use crate::cluster::SiriusCluster;
use crate::wire::{read_frame, Frame, FrameRead, SubmitFrame, WireFault};

/// Tuning of the network front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// How long a connection may sit silent (between or inside frames)
    /// before the server closes it. `None` disables the timeout; shutdown
    /// still unblocks such readers via the read-side half-close.
    pub read_timeout: Option<Duration>,
    /// Upper bound on waiting for an admitted query's completion before
    /// the connection is answered with a typed
    /// [`Timeout`](sirius::error::SiriusError::Timeout) error. The
    /// pipeline completes every admitted ticket, so this only fires if a
    /// query is pathologically slow — it guarantees the connection answers.
    pub answer_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(30)),
            answer_timeout: Duration::from_secs(120),
        }
    }
}

impl NetConfig {
    /// Sets the idle/read timeout.
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the bound on waiting for a query's completion.
    pub fn with_answer_timeout(mut self, timeout: Duration) -> Self {
        self.answer_timeout = timeout;
        self
    }
}

/// Connection/frame/byte telemetry, registered under `net.` in the
/// cluster's shared registry so scrapes export it next to the replicas.
#[derive(Debug, Clone)]
pub struct NetMetrics {
    /// Connections accepted.
    pub connections_opened: Counter,
    /// Connections that finished (cleanly or not).
    pub connections_closed: Counter,
    /// Connections currently being served.
    pub active_connections: Gauge,
    /// Well-formed frames read off the wire.
    pub frames_in: Counter,
    /// Frames written (answers and typed errors).
    pub frames_out: Counter,
    /// Bytes read off accepted connections.
    pub bytes_in: Counter,
    /// Bytes written to accepted connections.
    pub bytes_out: Counter,
    /// Protocol violations answered with a typed error frame.
    pub errors_protocol: Counter,
    /// Connections cut off by the read timeout.
    pub read_timeouts: Counter,
    /// Successful `GET /metrics` scrapes served.
    pub http_scrapes: Counter,
    /// Handler panics caught at the connection boundary.
    pub handler_panics: Counter,
}

impl NetMetrics {
    /// Registers the front-end metrics under `net.…` names.
    pub fn register(registry: &Registry) -> Self {
        Self {
            connections_opened: registry.counter("net.connections_opened"),
            connections_closed: registry.counter("net.connections_closed"),
            active_connections: registry.gauge("net.active_connections"),
            frames_in: registry.counter("net.frames_in"),
            frames_out: registry.counter("net.frames_out"),
            bytes_in: registry.counter("net.bytes_in"),
            bytes_out: registry.counter("net.bytes_out"),
            errors_protocol: registry.counter("net.errors_protocol"),
            read_timeouts: registry.counter("net.read_timeouts"),
            http_scrapes: registry.counter("net.http_scrapes"),
            handler_panics: registry.counter("net.handler_panics"),
        }
    }
}

struct Shared {
    cluster: SiriusCluster,
    config: NetConfig,
    metrics: NetMetrics,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    /// Read-side handles of live connections, so shutdown can unblock
    /// readers without cutting off in-flight answer writes.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Handler threads; joined (instantly, once their connections close)
    /// at shutdown.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// The TCP front-end over one [`SiriusCluster`]. See the module docs.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and starts serving `cluster` over it.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn serve(
        cluster: SiriusCluster,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::register(cluster.registry());
        let shared = Arc::new(Shared {
            cluster,
            config,
            metrics,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            streams: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let acceptor = std::thread::spawn({
            let shared = Arc::clone(&shared);
            move || accept_loop(&listener, &shared)
        });
        Ok(Self {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The cluster this front-end serves — in-process submits through it
    /// are exactly what remote submits are gated bit-identical against.
    pub fn cluster(&self) -> &SiriusCluster {
        &self.shared.cluster
    }

    /// The front-end's own telemetry handles.
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Stops accepting, drains every connection (in-flight answers still
    /// flush), joins every handler thread, then shuts the cluster down,
    /// draining every admitted query.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock `accept` with a throwaway self-connection; the acceptor
        // sees the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Half-close every connection's read side: blocked readers wake
        // with EOF, while handlers mid-answer can still write.
        for stream in self.shared.streams.lock().expect("streams lock").values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().expect("handlers lock"));
        for handler in handlers {
            let _ = handler.join();
        }
        // Dropping the front-end drops the cluster (the only owner),
        // which drains and joins every replica runtime.
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("replicas", &self.shared.cluster.len())
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a raced client).
            return;
        }
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            shared
                .streams
                .lock()
                .expect("streams lock")
                .insert(id, read_half);
        }
        let handler = std::thread::spawn({
            let shared = Arc::clone(shared);
            move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(&shared, stream);
                }));
                if outcome.is_err() {
                    shared.metrics.handler_panics.inc();
                }
                shared.streams.lock().expect("streams lock").remove(&id);
                shared.metrics.active_connections.dec();
                shared.metrics.connections_closed.inc();
            }
        });
        shared.handlers.lock().expect("handlers lock").push(handler);
    }
}

/// `Read` adapter that counts every byte pulled off the connection.
struct CountingReader<'a> {
    stream: &'a TcpStream,
    bytes: &'a Counter,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = (&mut &*self.stream).read(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let metrics = &shared.metrics;
    metrics.connections_opened.inc();
    metrics.active_connections.inc();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.config.read_timeout);

    // One peeked byte dispatches the protocol: frames open with the magic
    // `b"SIRF"`, an HTTP scrape opens with `GET`, so the first byte is
    // unambiguous (and the HTTP path re-validates the full request line).
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(1) if probe[0] == b'G' => {
            serve_http(shared, &stream);
            return;
        }
        Ok(1) => {}
        Ok(_) => return, // EOF before a single byte
        Err(e) => {
            if is_timeout(&e) {
                metrics.read_timeouts.inc();
            }
            return;
        }
    }

    loop {
        let mut reader = CountingReader {
            stream: &stream,
            bytes: &metrics.bytes_in,
        };
        match read_frame(&mut reader) {
            FrameRead::Frame(Frame::Submit(submit)) => {
                metrics.frames_in.inc();
                let answer = serve_submit(shared, submit);
                if write_frame(metrics, &stream, &answer).is_err() {
                    return;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            FrameRead::Frame(_) => {
                // Answer/Error frames only travel server → client.
                metrics.frames_in.inc();
                metrics.errors_protocol.inc();
                let fault = Frame::Error(WireFault::Protocol {
                    message: "only Submit frames may be sent to the server".into(),
                });
                let _ = write_frame(metrics, &stream, &fault);
                return;
            }
            FrameRead::Closed => return,
            FrameRead::Malformed(message) => {
                metrics.errors_protocol.inc();
                let fault = Frame::Error(WireFault::Protocol { message });
                let _ = write_frame(metrics, &stream, &fault);
                return;
            }
            FrameRead::Io(e) => {
                if is_timeout(&e) {
                    metrics.read_timeouts.inc();
                }
                return;
            }
        }
    }
}

fn write_frame(metrics: &NetMetrics, mut stream: &TcpStream, frame: &Frame) -> io::Result<()> {
    let written = frame.write_to(&mut stream)?;
    metrics.bytes_out.add(written as u64);
    metrics.frames_out.inc();
    Ok(())
}

/// Routes one submission through the cluster exactly as an in-process
/// caller would: classed admission when a tenant class is named,
/// deadline-aware admission when a deadline is set, plain shed-on-full
/// otherwise. Always produces a frame — an answer or a typed error.
fn serve_submit(shared: &Shared, submit: SubmitFrame) -> Frame {
    let input = SiriusInput {
        audio: submit.audio,
        image: submit.image,
    };
    let cluster = &shared.cluster;
    let served: Result<SiriusResponse, _> = if !submit.tenant_class.is_empty() {
        cluster.submit_classed(input, &submit.tenant_class)
    } else if submit.deadline_ns > 0 {
        cluster.submit_with_deadline(input, Duration::from_nanos(submit.deadline_ns))
    } else {
        cluster.submit(input)
    }
    .and_then(|ticket| ticket.wait_timeout(shared.config.answer_timeout));
    match served {
        Ok(response) => Frame::Answer(Box::new(response)),
        Err(e) => Frame::Error(WireFault::Cluster(e)),
    }
}

// ---------------------------------------------------------------------------
// HTTP shim

const MAX_HTTP_REQUEST: usize = 8 * 1024;

/// Serves one HTTP request on the connection: `GET /metrics` renders the
/// shared registry (every replica plus the `net.` front-end counters) in
/// Prometheus exposition format; anything else is a 404. One request per
/// connection (`Connection: close`), which is exactly a scraper's pattern.
fn serve_http(shared: &Shared, stream: &TcpStream) {
    let metrics = &shared.metrics;
    let mut request = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // Read until the header terminator; a peer that never sends it is cut
    // off by the size cap or the read timeout.
    loop {
        match (&mut &*stream).read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                metrics.bytes_in.add(n as u64);
                request.extend_from_slice(&buf[..n]);
                if request.windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
                if request.len() > MAX_HTTP_REQUEST {
                    return;
                }
            }
            Err(e) => {
                if is_timeout(&e) {
                    metrics.read_timeouts.inc();
                }
                return;
            }
        }
    }
    let head = String::from_utf8_lossy(&request);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.strip_prefix("GET "))
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or("");
    let (status, body) = if path == "/metrics" {
        metrics.http_scrapes.inc();
        ("200 OK", shared.cluster.metrics_snapshot().to_prometheus())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    if (&mut &*stream).write_all(response.as_bytes()).is_ok() {
        metrics.bytes_out.add(response.len() as u64);
    }
}

// ---------------------------------------------------------------------------
// Client

/// Why a [`NetClient`] call failed.
#[derive(Debug)]
pub enum NetClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server answered with a typed fault frame.
    Fault(WireFault),
    /// The server broke the protocol (sent something other than an answer
    /// or fault).
    Unexpected(String),
}

impl std::fmt::Display for NetClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetClientError::Io(e) => write!(f, "socket error: {e}"),
            NetClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            NetClientError::Unexpected(m) => write!(f, "unexpected server frame: {m}"),
        }
    }
}

impl std::error::Error for NetClientError {}

/// A minimal synchronous client for the frame protocol: one connection,
/// one in-flight query at a time. Load harnesses run one per thread.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects to a [`NetServer`].
    ///
    /// # Errors
    ///
    /// Any I/O error from connecting.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Submits one query and blocks for its answer. An empty
    /// `tenant_class` uses the class-less path; `deadline` (when set and
    /// class-less) requests deadline-aware admission.
    ///
    /// # Errors
    ///
    /// [`NetClientError::Fault`] for every typed server-side error —
    /// admission sheds with their `retry_after` hints included —
    /// [`NetClientError::Io`]/[`NetClientError::Unexpected`] for transport
    /// failures.
    pub fn submit(
        &mut self,
        input: &SiriusInput,
        tenant_class: &str,
        deadline: Option<Duration>,
    ) -> Result<SiriusResponse, NetClientError> {
        let frame = Frame::Submit(SubmitFrame {
            tenant_class: tenant_class.to_owned(),
            deadline_ns: deadline.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)),
            audio: input.audio.clone(),
            image: input.image.clone(),
        });
        frame
            .write_to(&mut self.stream)
            .map_err(NetClientError::Io)?;
        match read_frame(&mut self.stream) {
            FrameRead::Frame(Frame::Answer(response)) => Ok(*response),
            FrameRead::Frame(Frame::Error(fault)) => Err(NetClientError::Fault(fault)),
            FrameRead::Frame(Frame::Submit(_)) => Err(NetClientError::Unexpected(
                "server sent a Submit frame".into(),
            )),
            FrameRead::Closed => Err(NetClientError::Unexpected(
                "connection closed before an answer".into(),
            )),
            FrameRead::Malformed(m) => Err(NetClientError::Unexpected(m)),
            FrameRead::Io(e) => Err(NetClientError::Io(e)),
        }
    }
}

/// Scrapes `GET {path}` from the front-end over a fresh connection,
/// returning the status line's code and the body — a tiny test/bench
/// client for the HTTP shim, not a general HTTP implementation.
///
/// # Errors
///
/// Any I/O error, or a malformed status line.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: sirius\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}
