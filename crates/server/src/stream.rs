//! Streaming ASR serving with speculative downstream pipelining.
//!
//! The staged runtime's ASR workers normally see a whole utterance at once,
//! so a query's end-to-end latency is pinned at the **sum-of-stages floor**:
//! nothing downstream can start until the full decode finishes. This module
//! replays the utterance through [`sirius_speech::StreamingRecognizer`] in
//! paced chunks instead — modelling audio that *arrives over time* — and
//! exploits the recognizer's stable-prefix guarantee twice:
//!
//! 1. **Overlap**: the beam advances while later audio is still "arriving",
//!    so when the utterance ends only the clamped feature tail remains to
//!    decode. Measured from the end of audio arrival, ASR latency collapses
//!    from the full decode to the tail.
//! 2. **Speculation**: each time the committed prefix grows, the worker
//!    dispatches the prefix to a private speculation pool that runs the
//!    downstream stages (classify → IMM → QA, the exact
//!    [`Sirius::try_process_with`] order) on it. At utterance end the worker
//!    **reconciles**: if the latest speculation ran on exactly the final
//!    hypothesis, its payload is reused and the ticket completes
//!    immediately (`asr.spec_hit`); otherwise the query is forwarded
//!    through the ordinary classify queue (`asr.spec_miss`) and nothing
//!    downstream ever observes a wrong prefix.
//!
//! Both paths are bit-identical to the serial pipeline: the streaming
//! recognizer's final hypothesis equals batch `recognize_with_mode` by
//! construction, and the downstream stages are pure functions of the
//! recognized text and the image, so a payload computed speculatively on
//! the (confirmed) final text equals the one the staged path would compute.
//!
//! Degenerate audio — empty, or containing non-finite samples — is served
//! through the ordinary batch ASR stage instead of the streaming
//! recognizer, so malformed inputs produce byte-for-byte the serial
//! pipeline's response rather than a typed streaming error the serial path
//! would never surface.
//!
//! [`Sirius::try_process_with`]: sirius::pipeline::Sirius::try_process_with

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusOutcome, SiriusResponse, StageTiming};
use sirius::stage::{
    AsrRequest, AsrResponse, ClassifyRequest, ClassifyResponse, ImmRequest, ImmResponse, QaRequest,
    QaResponse,
};
use sirius_obs::{Recorder, SpanKind};
use sirius_par::queue::{bounded, Receiver, Sender};
use sirius_speech::asr::AcousticModelKind;
use sirius_speech::features::SAMPLE_RATE;
use sirius_vision::image::GrayImage;

use crate::batch::BatchHandle;
use crate::metrics::{ServerMetrics, StreamObs};
use crate::pool::Job;
use crate::qos::{CacheKey, CachedAnswer, ResultCaches};
use crate::runtime::{finish, Ctx, ServerConfig};

/// Governs streaming ASR service: chunked ingestion pacing and speculative
/// downstream dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamPolicy {
    /// Audio duration ingested per chunk. `Duration::ZERO` (the default)
    /// disables streaming entirely: the runtime serves the ordinary
    /// whole-utterance ASR stage.
    pub chunk: Duration,
    /// Arrival pacing as a fraction of real time: chunk `k` is pushed no
    /// earlier than `pacing × (audio seconds through k)` after admission.
    /// `0.0` replays chunks back-to-back (useful for equivalence tests);
    /// `1.0` models live microphone capture.
    pub pacing: f64,
    /// Whether committed prefixes are speculatively forwarded downstream.
    /// Off, streaming still overlaps decode with arrival but every query
    /// routes through the classify queue at the end.
    pub speculate: bool,
}

impl Default for StreamPolicy {
    fn default() -> Self {
        Self {
            chunk: Duration::ZERO,
            pacing: 0.0,
            speculate: false,
        }
    }
}

impl StreamPolicy {
    /// A streaming policy ingesting `chunk` of audio at a time.
    pub fn new(chunk: Duration) -> Self {
        Self {
            chunk,
            ..Self::default()
        }
    }

    /// Sets the arrival pacing factor.
    pub fn with_pacing(mut self, pacing: f64) -> Self {
        self.pacing = pacing;
        self
    }

    /// Enables speculative downstream dispatch on committed prefixes.
    pub fn with_speculation(mut self) -> Self {
        self.speculate = true;
        self
    }

    /// Whether this policy calls for the streaming ASR stage at all.
    pub fn is_streaming(&self) -> bool {
        self.chunk > Duration::ZERO
    }

    /// Samples per ingestion chunk (at least 1).
    pub fn chunk_samples(&self) -> usize {
        ((self.chunk.as_secs_f64() * SAMPLE_RATE as f64).round() as usize).max(1)
    }
}

/// A speculatively computed downstream payload: everything the final
/// response needs past ASR. `imm`/`qa` are present exactly when the
/// classifier routed the text to the question path.
struct SpecPayload {
    classify: ClassifyResponse,
    imm: Option<ImmResponse>,
    qa: Option<QaResponse>,
}

/// One finished speculation: the prefix it ran on and what it produced.
struct SpecResult {
    generation: u64,
    text: String,
    payload: Result<SpecPayload, SiriusError>,
}

struct SpecInner {
    /// Highest generation dispatched so far; later prefixes supersede
    /// earlier ones, so workers skip jobs whose generation is stale.
    generation: u64,
    /// Dispatched-but-unfinished jobs; reconcile waits for zero so no
    /// speculation thread still holds the query's image when the ticket
    /// completes.
    outstanding: usize,
    /// The latest-generation finished speculation (latest wins).
    deposit: Option<SpecResult>,
}

/// Per-query rendezvous between the ASR worker and the speculation pool.
struct SpecCell {
    inner: Mutex<SpecInner>,
    done: Condvar,
}

impl SpecCell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(SpecInner {
                generation: 0,
                outstanding: 0,
                deposit: None,
            }),
            done: Condvar::new(),
        })
    }
}

/// One speculative unit of work: run the downstream stages on `text`.
struct SpecJob {
    cell: Arc<SpecCell>,
    generation: u64,
    text: String,
    image: Option<GrayImage>,
}

/// Runs classify → IMM → QA on `text` exactly as the staged path would:
/// the same stage methods in the same order, so the payload is
/// bit-identical to what the queues would produce for the same text.
fn run_downstream(
    sirius: &Sirius,
    text: String,
    image: Option<GrayImage>,
) -> Result<SpecPayload, SiriusError> {
    let classify = sirius.stage_classify(ClassifyRequest {
        recognized: text.clone(),
    })?;
    if classify.action.is_some() {
        return Ok(SpecPayload {
            classify,
            imm: None,
            qa: None,
        });
    }
    let imm = sirius.stage_imm(ImmRequest {
        question: text,
        image,
    })?;
    let qa = sirius.stage_qa(QaRequest {
        question: imm.question.clone(),
    })?;
    Ok(SpecPayload {
        classify,
        imm: Some(imm),
        qa: Some(qa),
    })
}

/// Spawns the speculation pool: `workers` threads draining `rx`, running
/// each job's downstream stages and depositing the latest-generation
/// result into the job's cell. Threads exit when every sender is dropped
/// (the ASR workers own the senders, so the pool outlives every query).
fn spawn_spec_pool(
    sirius: Arc<Sirius>,
    workers: usize,
    rx: Receiver<SpecJob>,
) -> Vec<JoinHandle<()>> {
    (0..workers.max(1))
        .map(|i| {
            let sirius = Arc::clone(&sirius);
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("sirius-asr-spec-{i}"))
                .spawn(move || {
                    while let Some(job) = rx.recv() {
                        let stale = {
                            let inner = job.cell.inner.lock().expect("spec lock");
                            job.generation < inner.generation
                        };
                        let payload = if stale {
                            None
                        } else {
                            let text = job.text.clone();
                            let image = job.image.clone();
                            Some(
                                catch_unwind(AssertUnwindSafe(|| {
                                    run_downstream(&sirius, text, image)
                                }))
                                .unwrap_or(Err(SiriusError::StagePanicked { stage: "asr" })),
                            )
                        };
                        let mut inner = job.cell.inner.lock().expect("spec lock");
                        if let Some(payload) = payload {
                            let newer = inner
                                .deposit
                                .as_ref()
                                .is_none_or(|d| d.generation < job.generation);
                            if newer {
                                inner.deposit = Some(SpecResult {
                                    generation: job.generation,
                                    text: job.text,
                                    payload,
                                });
                            }
                        }
                        inner.outstanding = inner.outstanding.saturating_sub(1);
                        job.cell.done.notify_all();
                    }
                })
                .expect("spawn spec worker")
        })
        .collect()
}

/// What one streaming serve produced. One short-lived value per query,
/// consumed by the worker loop immediately — not worth boxing.
#[allow(clippy::large_enum_variant)]
enum Served {
    /// An ASR result to route through the ordinary classify queue (the
    /// no-speculation path, a speculation miss, or an error).
    Asr(Result<AsrResponse, SiriusError>),
    /// A confirmed speculation: ASR plus the whole downstream payload —
    /// the ticket completes without touching another queue.
    Complete {
        asr: AsrResponse,
        payload: SpecPayload,
    },
}

/// Sleeps until `due` (absolute); `None` (unrepresentable) never arrives,
/// so it is treated as "already due".
fn wait_until(due: Option<Instant>) {
    if let Some(due) = due {
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
    }
}

/// Serves one query through the streaming recognizer: paced chunk
/// ingestion, partial-commit telemetry, speculative dispatch, and the
/// final reconcile. See the module docs for the full story.
fn serve_streaming(
    sirius: &Sirius,
    policy: StreamPolicy,
    stream_obs: &StreamObs,
    remote: Option<&BatchHandle>,
    spec_tx: Option<&Sender<SpecJob>>,
    ctx: &Ctx,
    req: AsrRequest,
) -> Served {
    // Degenerate audio takes the batch stage so the response (including
    // error behaviour) is byte-identical to the serial pipeline's.
    if req.audio.is_empty() || req.audio.iter().any(|s| !s.is_finite()) {
        return Served::Asr(sirius.stage_asr(req));
    }

    let asr = sirius.asr();
    let mut rec = match (req.acoustic, remote) {
        (AcousticModelKind::Dnn, Some(handle)) => asr.streaming_with_window_scorer(handle),
        _ => asr.streaming(req.acoustic),
    };

    let spec_cell = spec_tx.map(|_| SpecCell::new());
    let chunk_samples = policy.chunk_samples();
    let mut last_committed = 0usize;
    let mut arrived = 0usize;
    for chunk in req.audio.chunks(chunk_samples) {
        arrived += chunk.len();
        if policy.pacing > 0.0 {
            let offset = policy.pacing * arrived as f64 / SAMPLE_RATE as f64;
            wait_until(ctx.started.checked_add(Duration::from_secs_f64(offset)));
        }
        let push_begun = Instant::now();
        let progress = match rec.push_chunk(chunk) {
            Ok(progress) => progress,
            // Unreachable (audio was pre-validated), but a typed error
            // must never panic a worker.
            Err(e) => return Served::Asr(Err(e.into())),
        };
        if progress.committed_words > last_committed {
            stream_obs.partials_emitted.inc();
            stream_obs
                .commit_latency
                .record_duration(push_begun.elapsed());
            if last_committed == 0 {
                stream_obs
                    .first_partial
                    .record_duration(ctx.started.elapsed());
            }
            if let (Some(tx), Some(cell)) = (spec_tx, &spec_cell) {
                let generation = {
                    let mut inner = cell.inner.lock().expect("spec lock");
                    inner.generation += 1;
                    inner.outstanding += 1;
                    inner.generation
                };
                let job = SpecJob {
                    cell: Arc::clone(cell),
                    generation,
                    text: rec.committed_text(),
                    image: ctx.image.clone(),
                };
                if tx.try_send(job).is_ok() {
                    stream_obs.spec_dispatched.inc();
                } else {
                    // Queue full (or closing): retract the reservation so
                    // reconcile does not wait for a job that never ran.
                    let mut inner = cell.inner.lock().expect("spec lock");
                    inner.outstanding = inner.outstanding.saturating_sub(1);
                    cell.done.notify_all();
                }
            }
            last_committed = progress.committed_words;
        }
    }

    let out = match rec.finish() {
        Ok(out) => out,
        Err(e) => return Served::Asr(Err(e.into())),
    };
    let asr_resp = AsrResponse {
        recognized: out.text,
        timing: out.timing,
    };

    // Reconcile: wait for every dispatched speculation (so none still
    // borrows the query), then reuse the deposit iff it ran on exactly
    // the final hypothesis and succeeded.
    if let Some(cell) = spec_cell {
        let deposit = {
            let mut inner = cell.inner.lock().expect("spec lock");
            while inner.outstanding > 0 {
                inner = cell.done.wait(inner).expect("spec lock");
            }
            inner.deposit.take()
        };
        let dispatched_any = deposit.is_some() || last_committed > 0;
        if let Some(result) = deposit {
            if result.text == asr_resp.recognized {
                if let Ok(payload) = result.payload {
                    stream_obs.spec_hit.inc();
                    return Served::Complete {
                        asr: asr_resp,
                        payload,
                    };
                }
            }
            stream_obs.spec_miss.inc();
        } else if dispatched_any {
            stream_obs.spec_miss.inc();
        }
    }
    Served::Asr(Ok(asr_resp))
}

/// Assembles the final response from a confirmed speculation, mirroring
/// the classify-route (Action) and QA-route (Answer) assemblies in
/// `runtime.rs` field for field.
fn assemble(ctx: &Ctx, asr: AsrResponse, payload: SpecPayload) -> SiriusResponse {
    if let Some(action) = payload.classify.action {
        return SiriusResponse {
            recognized: asr.recognized,
            outcome: SiriusOutcome::Action(action),
            matched_venue: None,
            timing: StageTiming {
                asr: asr.timing,
                classify: payload.classify.elapsed,
                qa: None,
                imm: None,
                total: ctx.started.elapsed(),
            },
        };
    }
    let imm = payload.imm.expect("question payload carries IMM");
    let qa = payload.qa.expect("question payload carries QA");
    SiriusResponse {
        recognized: asr.recognized,
        outcome: SiriusOutcome::Answer(qa.answer),
        matched_venue: imm.matched_venue,
        timing: StageTiming {
            asr: asr.timing,
            classify: payload.classify.elapsed,
            qa: Some(qa.breakdown),
            imm: imm.timing,
            total: ctx.started.elapsed(),
        },
    }
}

/// Spawns the streaming ASR stage: `config.asr.workers` serving threads
/// plus (when speculation is on) an equal-sized speculation pool. Mirrors
/// the generic pool's instrumentation — queue wait, expiry at dequeue,
/// in-flight/service accounting, `catch_unwind` survival — and routes
/// each query either through `route` (into the classify queue) or, on a
/// confirmed speculation, straight to ticket completion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_streaming_stages<R, E>(
    sirius: Arc<Sirius>,
    config: &ServerConfig,
    rx: Receiver<Job<Ctx, AsrRequest>>,
    metrics: Arc<ServerMetrics>,
    recorder: Arc<dyn Recorder>,
    remote: Option<BatchHandle>,
    caches: Option<Arc<ResultCaches>>,
    route: R,
    on_expired: E,
) -> Vec<JoinHandle<()>>
where
    R: Fn(Ctx, Result<AsrResponse, SiriusError>) + Send + Sync + Clone + 'static,
    E: Fn(Ctx) + Send + Sync + Clone + 'static,
{
    let policy = config.stream;
    let asr_workers = config.asr.workers.max(1);
    let mut workers = Vec::new();
    // The spec pool's queue is sized so a full ASR pool can have several
    // prefixes in flight each; overflow degrades to a dropped speculation,
    // never to blocking the decode loop.
    let spec_tx = if policy.speculate {
        let (tx, spec_rx) = bounded::<SpecJob>(config.asr.queue_depth.max(asr_workers * 4));
        workers.extend(spawn_spec_pool(Arc::clone(&sirius), asr_workers, spec_rx));
        Some(tx)
    } else {
        None
    };

    for i in 0..asr_workers {
        let sirius = Arc::clone(&sirius);
        let rx = rx.clone();
        let obs = Arc::clone(&metrics.asr);
        let stream_obs = Arc::clone(&metrics.stream);
        let metrics = Arc::clone(&metrics);
        let recorder = Arc::clone(&recorder);
        let remote = remote.clone();
        let caches = caches.clone();
        let spec_tx = spec_tx.clone();
        let route = route.clone();
        let on_expired = on_expired.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("sirius-asr-{i}"))
                .spawn(move || {
                    while let Some(Job {
                        ctx,
                        req,
                        enqueued,
                        deadline,
                    }) = rx.recv()
                    {
                        let wait = enqueued.elapsed();
                        obs.queue_wait.record_duration(wait);
                        if recorder.enabled() {
                            recorder.record("asr", SpanKind::QueueWait, wait);
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            obs.expired.inc();
                            on_expired(ctx);
                            continue;
                        }
                        obs.in_flight.inc();
                        let begun = Instant::now();
                        let served = catch_unwind(AssertUnwindSafe(|| {
                            serve_streaming(
                                &sirius,
                                policy,
                                &stream_obs,
                                remote.as_ref(),
                                spec_tx.as_ref(),
                                &ctx,
                                req,
                            )
                        }));
                        let service = begun.elapsed();
                        obs.in_flight.dec();
                        obs.service.record_duration(service);
                        obs.service_meter.record_duration(service);
                        if recorder.enabled() {
                            recorder.record("asr", SpanKind::Service, service);
                        }
                        let served = served.unwrap_or_else(|_| {
                            obs.panics.inc();
                            Served::Asr(Err(SiriusError::StagePanicked { stage: "asr" }))
                        });
                        match served {
                            Served::Asr(result) => route(ctx, result),
                            Served::Complete { asr, payload } => {
                                let response = assemble(&ctx, asr, payload);
                                // A confirmed speculation bypasses the
                                // classify/QA queues where misses normally
                                // fill the caches, so fill here — the next
                                // identical query then hits at ASR commit.
                                if let Some(caches) = caches.as_deref() {
                                    let key =
                                        CacheKey::of(&response.recognized, ctx.image.as_ref());
                                    caches.fill(key, CachedAnswer::of(&response));
                                }
                                finish(
                                    &metrics,
                                    recorder.as_ref(),
                                    ctx.started,
                                    ctx.tenant.as_deref(),
                                    &ctx.ticket,
                                    Ok(response),
                                );
                            }
                        }
                    }
                    // The worker's `spec_tx` clone drops here; once every
                    // ASR worker exits the spec queue closes and the pool
                    // drains and joins cleanly.
                })
                .expect("spawn streaming asr worker"),
        );
    }
    workers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_not_streaming() {
        let policy = StreamPolicy::default();
        assert!(!policy.is_streaming());
        assert!(!policy.speculate);
        assert_eq!(policy.pacing, 0.0);
    }

    #[test]
    fn chunk_samples_converts_duration_to_samples() {
        let policy = StreamPolicy::new(Duration::from_millis(100));
        assert!(policy.is_streaming());
        assert_eq!(policy.chunk_samples(), SAMPLE_RATE / 10);
        // Sub-sample chunks clamp to one sample rather than zero.
        assert_eq!(
            StreamPolicy::new(Duration::from_nanos(1)).chunk_samples(),
            1
        );
    }

    #[test]
    fn policy_builders_compose() {
        let policy = StreamPolicy::new(Duration::from_millis(80))
            .with_pacing(0.25)
            .with_speculation();
        assert!(policy.is_streaming());
        assert!(policy.speculate);
        assert_eq!(policy.pacing, 0.25);
    }
}
