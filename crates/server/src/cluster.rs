//! The multi-replica sharded cluster front-end.
//!
//! [`SiriusCluster::start`] shards one trained [`Sirius`] into N replicas
//! ([`Sirius::shard_replicas`]) — each holding one QA-corpus shard and one
//! IMM-database shard, scattering retrieval across the full shard
//! directory — and runs every replica as its own [`SiriusServer`] with its
//! own stage pools and queues. A query entering the cluster is routed to
//! exactly one replica by the configured [`RoutePolicy`]:
//!
//! - [`RoutePolicy::RoundRobin`] — a lock-free rotating cursor; perfectly
//!   fair in arrival count, blind to the per-class (VC/VQ/VIQ) service-time
//!   spread.
//! - [`RoutePolicy::ConsistentHash`] — FNV-1a over the input's audio (and
//!   image) bits onto a virtual-node ring, so identical inputs always land
//!   on the same replica and replica churn only remaps `1/N` of the key
//!   space.
//! - [`RoutePolicy::LeastSojourn`] — routes to the replica whose live
//!   [`SiriusServer::expected_sojourn`] estimate (queue backlog × EWMA
//!   service time, summed over stages) is smallest, ties broken toward the
//!   lowest index. This is the paper's load-balancing front-end driven by
//!   the same estimator the deadline-aware admission policy uses.
//!
//! Because every replica scatters its retrieval across **all** shards and
//! merges under a total order, the cluster's answers are bit-identical to
//! the unsharded single server no matter which replica serves a query —
//! routing is a pure performance decision. The equivalence is enforced by
//! `tests/cluster.rs` over the full 42-query input set for every
//! (replica count, policy) combination.
//!
//! Every replica registers its metrics into one shared [`Registry`] under a
//! `replica{i}.` prefix ([`ServerMetrics::in_registry`]), so one snapshot
//! exports the whole cluster and per-replica histograms can be merged into
//! cluster-level distributions ([`SiriusCluster::merged_histogram`])
//! without re-recording a single sample.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sirius::error::ClusterError;
use sirius::pipeline::{Sirius, SiriusInput, SiriusResponse};
use sirius_obs::{HistogramSnapshot, NoopRecorder, Recorder, Registry, Snapshot};

use crate::metrics::ServerMetrics;
use crate::runtime::{ServerConfig, SiriusServer, Ticket};

/// Virtual nodes per replica on the consistent-hash ring. Enough that the
/// key space splits near-evenly at small replica counts; the ring stays a
/// few hundred entries, so the binary search is free next to a query.
const VNODES: usize = 31;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The routing key of one input: FNV-1a over the audio sample bits and,
/// when present, the image dimensions and pixel bits. Bit-exact inputs —
/// the only equality the pipeline itself recognises — hash identically.
fn input_key(input: &SiriusInput) -> u64 {
    let mut h = FNV_OFFSET;
    for sample in &input.audio {
        fnv1a(&mut h, &sample.to_bits().to_le_bytes());
    }
    if let Some(image) = &input.image {
        fnv1a(&mut h, &(image.width() as u64).to_le_bytes());
        for pixel in image.data() {
            fnv1a(&mut h, &pixel.to_bits().to_le_bytes());
        }
    }
    h
}

/// How the cluster front-end picks a replica for each query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutePolicy {
    /// Rotate through the replicas in arrival order.
    RoundRobin,
    /// Hash the input onto a virtual-node ring: identical inputs always
    /// route to the same replica.
    ConsistentHash,
    /// Route to the replica with the smallest live expected-sojourn
    /// estimate (ties to the lowest index).
    LeastSojourn,
}

impl RoutePolicy {
    /// All routing policies, in the order the benches sweep them.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::RoundRobin,
        RoutePolicy::ConsistentHash,
        RoutePolicy::LeastSojourn,
    ];
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutePolicy::RoundRobin => "round_robin",
            RoutePolicy::ConsistentHash => "consistent_hash",
            RoutePolicy::LeastSojourn => "least_sojourn",
        })
    }
}

/// Sizing and routing of a [`SiriusCluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Replica runtimes to start (each holds one data shard).
    pub replicas: u32,
    /// Per-query replica selection policy.
    pub route: RoutePolicy,
    /// Stage pool/queue sizing of every replica.
    pub server: ServerConfig,
}

impl ClusterConfig {
    /// `replicas` round-robin-routed replicas with default stage sizing.
    pub fn new(replicas: u32) -> Self {
        Self {
            replicas,
            route: RoutePolicy::RoundRobin,
            server: ServerConfig::default(),
        }
    }

    /// Sets the routing policy.
    pub fn with_route(mut self, route: RoutePolicy) -> Self {
        self.route = route;
        self
    }

    /// Sets every replica's stage sizing.
    pub fn with_server(mut self, server: ServerConfig) -> Self {
        self.server = server;
        self
    }
}

/// Completion handle for a query admitted through the cluster: the
/// replica's [`Ticket`] plus which replica it was routed to, with errors
/// lifted into [`ClusterError::Replica`].
pub struct ClusterTicket {
    replica: usize,
    ticket: Ticket,
}

impl std::fmt::Debug for ClusterTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterTicket")
            .field("replica", &self.replica)
            .finish_non_exhaustive()
    }
}

impl ClusterTicket {
    /// The replica the query was routed to.
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// The underlying replica ticket (for `wait_timeout`/`try_take`).
    pub fn ticket(&self) -> &Ticket {
        &self.ticket
    }

    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Replica`] wrapping whatever the serving replica
    /// failed with.
    pub fn wait(self) -> Result<SiriusResponse, ClusterError> {
        let replica = self.replica;
        self.ticket
            .wait()
            .map_err(|source| ClusterError::Replica { replica, source })
    }

    /// Blocks until the query completes or `timeout` elapses. On timeout
    /// the ticket is kept (the query is still in flight), mirroring
    /// [`Ticket::wait_timeout`]; the network front-end uses this to bound
    /// every connection's wait so a remote peer is always answered.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Replica`] wrapping the replica's error —
    /// [`SiriusError::Timeout`](sirius::error::SiriusError::Timeout) when
    /// `timeout` elapsed first.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<SiriusResponse, ClusterError> {
        let replica = self.replica;
        self.ticket
            .wait_timeout(timeout)
            .map_err(|source| ClusterError::Replica { replica, source })
    }
}

/// N sharded replica runtimes behind one routing front-end. See the module
/// docs for the routing policies and the bit-identity guarantee.
pub struct SiriusCluster {
    replicas: Vec<SiriusServer>,
    registry: Registry,
    route: RoutePolicy,
    cursor: AtomicUsize,
    /// `(point, replica)` virtual nodes, ascending by point.
    ring: Vec<(u64, usize)>,
}

impl SiriusCluster {
    /// Shards `sirius` into `config.replicas` replicas and starts one
    /// [`SiriusServer`] per shard, all exporting into one shared registry.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoReplicas`] when `config.replicas == 0`;
    /// [`ClusterError::InvalidShardCount`] from the data-plane shard
    /// builders.
    pub fn start(sirius: &Sirius, config: ClusterConfig) -> Result<Self, ClusterError> {
        Self::start_with_recorder(sirius, config, Arc::new(NoopRecorder))
    }

    /// [`SiriusCluster::start`] with a [`Recorder`] shared by every
    /// replica's workers.
    pub fn start_with_recorder(
        sirius: &Sirius,
        config: ClusterConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Self, ClusterError> {
        if config.replicas == 0 {
            return Err(ClusterError::NoReplicas);
        }
        let shards = sirius.shard_replicas(config.replicas)?;
        let registry = Registry::new();
        let replicas: Vec<SiriusServer> = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                let metrics = ServerMetrics::in_registry(registry.clone(), &format!("replica{i}."));
                SiriusServer::start_with_metrics(
                    Arc::new(shard),
                    config.server.clone(),
                    Arc::clone(&recorder),
                    metrics,
                )
            })
            .collect();
        let mut ring = Vec::with_capacity(replicas.len() * VNODES);
        for replica in 0..replicas.len() {
            for vnode in 0..VNODES {
                let mut h = FNV_OFFSET;
                fnv1a(&mut h, &(replica as u64).to_le_bytes());
                fnv1a(&mut h, &(vnode as u64).to_le_bytes());
                ring.push((h, replica));
            }
        }
        ring.sort_unstable();
        Ok(Self {
            replicas,
            registry,
            route: config.route,
            cursor: AtomicUsize::new(0),
            ring,
        })
    }

    /// The replica runtimes, in shard order.
    pub fn replicas(&self) -> &[SiriusServer] {
        &self.replicas
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — construction rejects zero replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The routing policy queries are dispatched with.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route
    }

    /// The shared registry every replica's metrics live in (names carry
    /// `replica{i}.` prefixes).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The replica the configured policy routes `input` to, advancing any
    /// routing state (the round-robin cursor) exactly as a submit would.
    pub fn route(&self, input: &SiriusInput) -> usize {
        match self.route {
            RoutePolicy::RoundRobin => {
                self.cursor.fetch_add(1, Ordering::Relaxed) % self.replicas.len()
            }
            RoutePolicy::ConsistentHash => {
                let key = input_key(input);
                // First virtual node clockwise of the key, wrapping.
                let at = self.ring.partition_point(|&(point, _)| point < key);
                self.ring[at % self.ring.len()].1
            }
            RoutePolicy::LeastSojourn => {
                let mut best = 0;
                let mut best_sojourn = self.replicas[0].expected_sojourn();
                for (i, replica) in self.replicas.iter().enumerate().skip(1) {
                    let sojourn = replica.expected_sojourn();
                    // Strict `<` keeps ties on the lowest index.
                    if sojourn < best_sojourn {
                        best = i;
                        best_sojourn = sojourn;
                    }
                }
                best
            }
        }
    }

    /// Routes and admits a query; sheds when the chosen replica does.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Replica`] wrapping the replica's admission error
    /// ([`Overloaded`](sirius::error::SiriusError::Overloaded), [`ShuttingDown`](sirius::error::SiriusError::ShuttingDown)).
    pub fn submit(&self, input: SiriusInput) -> Result<ClusterTicket, ClusterError> {
        let replica = self.route(&input);
        self.replicas[replica]
            .submit(input)
            .map(|ticket| ClusterTicket { replica, ticket })
            .map_err(|source| ClusterError::Replica { replica, source })
    }

    /// Routes a query, then applies the chosen replica's deadline-aware
    /// admission ([`SiriusServer::submit_with_deadline`]): the router picks
    /// the replica, the replica's live sojourn estimate decides whether the
    /// deadline is meetable there.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Replica`] wrapping
    /// [`DeadlineUnmeetable`](sirius::error::SiriusError::DeadlineUnmeetable) (with the replica's retry hint)
    /// or any admission error.
    pub fn submit_with_deadline(
        &self,
        input: SiriusInput,
        deadline: Duration,
    ) -> Result<ClusterTicket, ClusterError> {
        let replica = self.route(&input);
        self.replicas[replica]
            .submit_with_deadline(input, deadline)
            .map(|ticket| ClusterTicket { replica, ticket })
            .map_err(|source| ClusterError::Replica { replica, source })
    }

    /// Routes a query, then applies the chosen replica's **classed**
    /// weighted-fair admission
    /// ([`SiriusServer::submit_classed`](crate::SiriusServer::submit_classed)):
    /// the router picks the replica — consistent hashing keeps repeated
    /// inputs on one replica, concentrating result-cache hits there — and
    /// the replica's live sojourn estimate against the class's weighted
    /// budget decides admission.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Replica`] wrapping
    /// [`UnknownTenantClass`](sirius::error::SiriusError::UnknownTenantClass),
    /// [`DeadlineUnmeetable`](sirius::error::SiriusError::DeadlineUnmeetable)
    /// (with the per-class retry hint) or any admission error.
    pub fn submit_classed(
        &self,
        input: SiriusInput,
        class: &str,
    ) -> Result<ClusterTicket, ClusterError> {
        let replica = self.route(&input);
        self.replicas[replica]
            .submit_classed(input, class)
            .map(|ticket| ClusterTicket { replica, ticket })
            .map_err(|source| ClusterError::Replica { replica, source })
    }

    /// Submits and waits: the one-call synchronous client of the cluster.
    ///
    /// # Errors
    ///
    /// Any [`ClusterError`] from admission or the serving replica.
    pub fn process_sync(&self, input: SiriusInput) -> Result<SiriusResponse, ClusterError> {
        self.submit(input)?.wait()
    }

    /// Invalidates every replica's result caches (no-op when caching is
    /// off).
    pub fn invalidate_result_caches(&self) {
        for replica in &self.replicas {
            replica.invalidate_result_caches();
        }
    }

    /// Cluster-wide result-cache hits and lookups, summed over both caches
    /// of every replica (`replica{i}.cache.{qa,imm}.{hit,miss}`).
    pub fn cache_totals(&self, snapshot: &Snapshot) -> (u64, u64) {
        let hits = self.merged_counter(snapshot, "cache.qa.hit")
            + self.merged_counter(snapshot, "cache.imm.hit");
        let misses = self.merged_counter(snapshot, "cache.qa.miss")
            + self.merged_counter(snapshot, "cache.imm.miss");
        (hits, hits + misses)
    }

    /// The smallest live expected sojourn across the replicas — what a
    /// least-sojourn-routed query admitted right now is predicted to see.
    pub fn expected_sojourn(&self) -> Duration {
        self.replicas
            .iter()
            .map(SiriusServer::expected_sojourn)
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// Refreshes every replica's queue gauges and exports the whole
    /// cluster: one snapshot holding every replica's metrics side by side
    /// under their `replica{i}.` prefixes.
    pub fn metrics_snapshot(&self) -> Snapshot {
        // Each replica refreshes its own gauges into the shared registry;
        // the last snapshot therefore carries all of them, fresh.
        let mut snapshot = None;
        for replica in &self.replicas {
            snapshot = Some(replica.metrics_snapshot());
        }
        snapshot.expect("cluster has at least one replica")
    }

    /// Merges one histogram across the replicas: `replica{i}.{name}` for
    /// every `i`, combined exactly at bucket granularity
    /// ([`HistogramSnapshot::merge`]) into the cluster-level distribution.
    pub fn merged_histogram(&self, snapshot: &Snapshot, name: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for i in 0..self.replicas.len() {
            if let Some(h) = snapshot.histogram(&format!("replica{i}.{name}")) {
                merged = merged.merge(h);
            }
        }
        merged
    }

    /// Sums one counter across the replicas (`replica{i}.{name}`).
    pub fn merged_counter(&self, snapshot: &Snapshot, name: &str) -> u64 {
        (0..self.replicas.len())
            .filter_map(|i| snapshot.counter(&format!("replica{i}.{name}")))
            .sum()
    }

    /// The cluster-level sojourn distribution of successful queries, merged
    /// from the replicas' `sojourn_ns` histograms.
    pub fn cluster_sojourn(&self) -> HistogramSnapshot {
        let snapshot = self.metrics_snapshot();
        self.merged_histogram(&snapshot, "sojourn_ns")
    }

    /// Stops admitting on every replica, drains every accepted query, and
    /// joins all workers, replica by replica in shard order.
    pub fn shutdown(self) {
        for replica in self.replicas {
            replica.shutdown();
        }
    }
}

impl std::fmt::Debug for SiriusCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiriusCluster")
            .field("replicas", &self.replicas.len())
            .field("route", &self.route)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(seed: u8) -> SiriusInput {
        SiriusInput {
            audio: (0..64).map(|i| (i as f32 + seed as f32) / 100.0).collect(),
            image: None,
        }
    }

    #[test]
    fn ring_points_spread_over_every_replica() {
        // Construction-only invariants of the hash ring, no servers needed:
        // build the ring exactly as `start` does.
        for n in [1usize, 2, 4, 8] {
            let mut ring = Vec::with_capacity(n * VNODES);
            for replica in 0..n {
                for vnode in 0..VNODES {
                    let mut h = FNV_OFFSET;
                    fnv1a(&mut h, &(replica as u64).to_le_bytes());
                    fnv1a(&mut h, &(vnode as u64).to_le_bytes());
                    ring.push((h, replica));
                }
            }
            ring.sort_unstable();
            assert_eq!(ring.len(), n * VNODES);
            for replica in 0..n {
                assert_eq!(
                    ring.iter().filter(|&&(_, r)| r == replica).count(),
                    VNODES,
                    "replica {replica} of {n}"
                );
            }
            // No two virtual nodes collide (the ring is a strict order).
            assert!(ring.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn input_keys_are_deterministic_and_input_sensitive() {
        assert_eq!(input_key(&input(1)), input_key(&input(1)));
        assert_ne!(input_key(&input(1)), input_key(&input(2)));
        let with_image = SiriusInput {
            audio: input(1).audio,
            image: Some(sirius_vision::image::GrayImage::new(8, 8)),
        };
        assert_ne!(input_key(&with_image), input_key(&input(1)));
    }

    #[test]
    fn route_policies_display_as_snake_case() {
        assert_eq!(RoutePolicy::RoundRobin.to_string(), "round_robin");
        assert_eq!(RoutePolicy::ConsistentHash.to_string(), "consistent_hash");
        assert_eq!(RoutePolicy::LeastSojourn.to_string(), "least_sojourn");
        assert_eq!(RoutePolicy::ALL.len(), 3);
    }
}
