//! The multi-tenant QoS front-end: tenant traffic classes with
//! weighted-fair admission, and the keyed result caches that deflect
//! repeated queries off the backend stages.
//!
//! # Result caches
//!
//! Two [`sirius_cache::Cache`] instances sit *after ASR commit* and before
//! the Classify queue:
//!
//! * the **QA answer cache**, keyed by the normalized recognized text
//!   ([`normalize_query`]) — serves voice-only (VC/VQ) queries;
//! * the **IMM cache**, keyed by `(normalized text, image match
//!   signature)` — serves voice+vision (VIQ) queries, where the signature
//!   ([`ImageSignature`]) is a 128-bit FNV-1a pair over the image's exact
//!   dimension and pixel bits: the same input identity the cluster's
//!   consistent-hash router uses, so identical images always share a key
//!   and hash-ring affinity concentrates repeats on one replica's cache.
//!
//! A hit skips Classify, IMM and QA entirely. Correctness is enforced
//! structurally, not probabilistically: the cached value carries the **raw**
//! recognized text it was computed from, and [`ResultCaches::lookup`] only
//! returns a hit when the raw texts match exactly (normalization merely
//! widens the bucketing; it can never alias two different texts onto one
//! served answer). The downstream stages are pure functions of the
//! recognized text and the image, so a verified hit is bit-identical to
//! what the uncached path would have computed — the property
//! `tests/qos.rs` gates over the full 42-query set.
//!
//! # Tenant classes and weighted-fair admission
//!
//! A [`TenantClass`] names a traffic tier: a priority, an SLO, and an
//! admission weight. [`SiriusServer::submit_classed`] reuses the live
//! [`expected_sojourn`] estimator but admits class `c` only while the
//! estimate stays within the class's **effective budget**
//!
//! ```text
//! budget(c) = slo(c) × weight(c) / max_weight
//! ```
//!
//! so as backlog builds, low-weight (best-effort) classes start shedding
//! while high-weight (premium) classes still admit — best-effort absorbs
//! the deadline sheds before premium p99 is touched. The shed error's
//! `retry_after` is computed against the *class* budget (`expected −
//! budget(c)`), not the raw SLO: a best-effort client is told how long the
//! backlog must drain before *its class* admits again, which is strictly
//! longer than the global hint and keeps its retries from undershooting
//! under premium bursts.
//!
//! Per-class telemetry registers under `tenant.{class}.*` in the shared
//! registry (the class name passes through the registry's hardened
//! renderers, so hostile names cannot corrupt the export).
//!
//! [`SiriusServer::submit_classed`]: crate::SiriusServer::submit_classed
//! [`expected_sojourn`]: crate::SiriusServer::expected_sojourn

use std::sync::Arc;
use std::time::Duration;

use sirius::pipeline::{SiriusOutcome, SiriusResponse};
use sirius_cache::{Cache, CacheConfig, CacheObs};
use sirius_obs::{Counter, Gauge, Histogram, Registry};
use sirius_vision::image::GrayImage;

use crate::metrics::ServerMetrics;

/// One tenant traffic tier: who gets admitted (and how urgently) when the
/// backlog grows. See the module docs for the admission rule.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Class name; addresses the class in `submit_classed` and labels its
    /// `tenant.{name}.*` metrics.
    pub name: String,
    /// Scheduling priority (higher = more important). Carried for
    /// dashboards and future preemption policies; admission itself is
    /// driven by `weight`.
    pub priority: u8,
    /// The class's end-to-end latency SLO. Admitted queries carry it as
    /// their deadline, so workers drop them unserved once it passes.
    pub slo: Duration,
    /// Admission weight. The class admits while the expected sojourn stays
    /// within `slo × weight / max_weight`, so relative weights decide who
    /// sheds first under load.
    pub weight: u32,
}

impl TenantClass {
    /// A tenant class with the given name, priority, SLO and weight.
    pub fn new(name: &str, priority: u8, slo: Duration, weight: u32) -> Self {
        Self {
            name: name.to_owned(),
            priority,
            slo,
            weight,
        }
    }
}

/// Per-class telemetry, registered under `tenant.{class}.*`.
#[derive(Debug)]
pub struct TenantObs {
    /// Queries of this class admitted.
    pub accepted: Counter,
    /// Queries shed because the expected sojourn exceeded the class budget.
    pub shed_deadline: Counter,
    /// Admitted queries that completed with a response.
    pub completed: Counter,
    /// Admitted queries that completed with an error (expired in a queue,
    /// stage panic, shutdown).
    pub failed: Counter,
    /// Completions served straight from a result cache.
    pub cache_hit: Counter,
    /// Admitted queries still in flight (`accepted = completed + failed +
    /// in_flight` balances per class).
    pub in_flight: Gauge,
    /// Admission → completion time of this class's successful queries.
    pub sojourn: Histogram,
}

impl TenantObs {
    /// Registers the class's metrics under `{prefix}.{leaf}` names (the
    /// caller passes the fully scoped `tenant.{class}` prefix).
    pub fn register(registry: &Registry, prefix: &str) -> Arc<Self> {
        let name = |leaf: &str| format!("{prefix}.{leaf}");
        Arc::new(Self {
            accepted: registry.counter(&name("accepted")),
            shed_deadline: registry.counter(&name("shed_deadline")),
            completed: registry.counter(&name("completed")),
            failed: registry.counter(&name("failed")),
            cache_hit: registry.counter(&name("cache_hit")),
            in_flight: registry.gauge(&name("in_flight")),
            sojourn: registry.histogram(&name("sojourn_ns")),
        })
    }
}

/// The configured tenant classes with their registered telemetry and the
/// precomputed max weight the admission rule normalizes by.
pub(crate) struct TenantTable {
    classes: Vec<(TenantClass, Arc<TenantObs>)>,
    max_weight: u32,
}

impl TenantTable {
    /// Registers every class's metrics under the server's scoped
    /// `tenant.{class}` prefix.
    pub(crate) fn build(tenants: &[TenantClass], metrics: &ServerMetrics) -> Self {
        let classes = tenants
            .iter()
            .map(|class| {
                let prefix = metrics.scoped(&format!("tenant.{}", class.name));
                let obs = TenantObs::register(metrics.registry(), &prefix);
                (class.clone(), obs)
            })
            .collect::<Vec<_>>();
        let max_weight = classes
            .iter()
            .map(|(c, _)| c.weight.max(1))
            .max()
            .unwrap_or(1);
        Self {
            classes,
            max_weight,
        }
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<(&TenantClass, &Arc<TenantObs>)> {
        self.classes
            .iter()
            .find(|(c, _)| c.name == name)
            .map(|(c, obs)| (c, obs))
    }

    /// The class's effective admission budget: `slo × weight / max_weight`.
    pub(crate) fn budget(&self, class: &TenantClass) -> Duration {
        class
            .slo
            .mul_f64(f64::from(class.weight.max(1)) / f64::from(self.max_weight))
    }
}

/// Sizing and lifetime policy of the server's two result caches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicy {
    /// Whether the caches exist at all. Off (the default), the serving path
    /// is exactly the uncached runtime.
    pub enabled: bool,
    /// Total entry budget of *each* cache (QA and IMM are sized alike).
    pub capacity: usize,
    /// Lock stripes per cache.
    pub shards: usize,
    /// Optional entry time-to-live.
    pub ttl: Option<Duration>,
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity: 1024,
            shards: 8,
            ttl: None,
        }
    }
}

impl CachePolicy {
    /// An enabled policy with the default sizing.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Sets the per-cache entry budget.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the entry time-to-live.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            capacity: self.capacity,
            shards: self.shards,
            ttl: self.ttl,
        }
    }
}

/// A 128-bit FNV-1a digest of an image's exact dimension and pixel bits.
///
/// Deliberately **not** lossy: any quantization that merged two distinct
/// images onto one signature could serve one image's venue match for the
/// other and break the bit-identity guarantee. Two independent 64-bit
/// streams (distinct offset bases) make an accidental collision
/// negligible while keeping the digest `Copy`-cheap as a map key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageSignature(u64, u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

impl ImageSignature {
    /// Signs `image`'s dimensions and pixel bit patterns.
    pub fn of(image: &GrayImage) -> Self {
        // The second stream starts from a decorrelated base so the pair
        // behaves as one 128-bit digest, not two copies of the same 64 bits.
        let mut a = FNV_OFFSET;
        let mut b = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        fnv1a(&mut a, &(image.width() as u64).to_le_bytes());
        fnv1a(&mut b, &(image.height() as u64).to_le_bytes());
        for pixel in image.data() {
            let bits = pixel.to_bits().to_le_bytes();
            fnv1a(&mut a, &bits);
            fnv1a(&mut b, &bits);
        }
        Self(a, b)
    }
}

/// Normalizes recognized text into a cache-key form: trimmed, lowercased,
/// inner whitespace runs collapsed to single spaces. Purely a bucketing
/// transform — hits are still verified against the raw text.
pub fn normalize_query(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for word in text.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.extend(word.chars().flat_map(char::to_lowercase));
    }
    out
}

/// Which cache a query keys into, decided after ASR commit: voice-only
/// queries hit the QA answer cache, voice+vision queries the IMM cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheKey {
    /// QA answer cache key: the normalized recognized text.
    Qa(String),
    /// IMM cache key: normalized text plus the image's match signature.
    Imm(String, ImageSignature),
}

impl CacheKey {
    /// The key for a query whose ASR committed `recognized` with `image`
    /// attached.
    pub fn of(recognized: &str, image: Option<&GrayImage>) -> Self {
        let text = normalize_query(recognized);
        match image {
            Some(image) => CacheKey::Imm(text, ImageSignature::of(image)),
            None => CacheKey::Qa(text),
        }
    }
}

/// A cached post-ASR result: everything the final response needs that the
/// fresh ASR pass doesn't provide.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The **raw** recognized text the answer was computed from; lookups
    /// verify it matches exactly before serving the hit.
    pub recognized: String,
    /// The served outcome (action or answer).
    pub outcome: SiriusOutcome,
    /// The venue IMM matched, when the query carried an image.
    pub matched_venue: Option<String>,
}

impl CachedAnswer {
    /// Captures the cacheable part of a served response.
    pub fn of(response: &SiriusResponse) -> Self {
        Self {
            recognized: response.recognized.clone(),
            outcome: response.outcome.clone(),
            matched_venue: response.matched_venue.clone(),
        }
    }
}

/// The server's two result caches (QA + IMM) behind one lookup/fill
/// interface. See the module docs for keys and the correctness argument.
pub struct ResultCaches {
    qa: Cache<String, CachedAnswer>,
    imm: Cache<(String, ImageSignature), CachedAnswer>,
}

impl ResultCaches {
    /// Builds both caches with unregistered counters (tests, ad-hoc use).
    pub fn new(policy: CachePolicy) -> Self {
        Self {
            qa: Cache::new(policy.cache_config()),
            imm: Cache::new(policy.cache_config()),
        }
    }

    /// Builds both caches with counters registered under the server's
    /// scoped `cache.qa.*` / `cache.imm.*` names.
    pub fn register(policy: CachePolicy, metrics: &ServerMetrics) -> Self {
        let registry = metrics.registry();
        Self {
            qa: Cache::with_obs(
                policy.cache_config(),
                CacheObs::register(registry, &metrics.scoped("cache.qa")),
            ),
            imm: Cache::with_obs(
                policy.cache_config(),
                CacheObs::register(registry, &metrics.scoped("cache.imm")),
            ),
        }
    }

    /// Looks up `key`, returning a hit only when the cached answer was
    /// computed from exactly `recognized` (raw, unnormalized). A
    /// normalization collision is demoted to a miss so it can never change
    /// a served answer.
    pub fn lookup(&self, key: &CacheKey, recognized: &str) -> Option<CachedAnswer> {
        let cached = match key {
            CacheKey::Qa(text) => self.qa.get(text),
            CacheKey::Imm(text, sig) => self.imm.get(&(text.clone(), *sig)),
        }?;
        (cached.recognized == recognized).then_some(cached)
    }

    /// Stores a served answer under its key.
    pub fn fill(&self, key: CacheKey, answer: CachedAnswer) {
        match key {
            CacheKey::Qa(text) => self.qa.insert(text, answer),
            CacheKey::Imm(text, sig) => self.imm.insert((text, sig), answer),
        }
    }

    /// Invalidates both caches in O(1) (generation bump; see
    /// [`sirius_cache::Cache::invalidate_all`]).
    pub fn invalidate_all(&self) {
        self.qa.invalidate_all();
        self.imm.invalidate_all();
    }

    /// The QA answer cache's counters.
    pub fn qa_obs(&self) -> &CacheObs {
        self.qa.obs()
    }

    /// The IMM cache's counters.
    pub fn imm_obs(&self) -> &CacheObs {
        self.imm.obs()
    }

    /// Hits and lookups summed over both caches.
    pub fn totals(&self) -> (u64, u64) {
        let hits = self.qa.obs().hit.get() + self.imm.obs().hit.get();
        let lookups = hits + self.qa.obs().miss.get() + self.imm.obs().miss.get();
        (hits, lookups)
    }
}

impl std::fmt::Debug for ResultCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCaches")
            .field("qa_entries", &self.qa.len())
            .field("imm_entries", &self.imm.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_buckets_without_aliasing_served_answers() {
        assert_eq!(
            normalize_query("  Where IS  Pete's\tdiner "),
            "where is pete's diner"
        );
        assert_eq!(normalize_query(""), "");
        let caches = ResultCaches::new(CachePolicy::enabled());
        let key = CacheKey::of("Where is Pete's", None);
        caches.fill(
            key.clone(),
            CachedAnswer {
                recognized: "Where is Pete's".into(),
                outcome: SiriusOutcome::Answer(Some("on main street".into())),
                matched_venue: None,
            },
        );
        // Same normalized key, different raw text: structurally a hit in the
        // map, demoted to a miss by raw-text verification.
        assert_eq!(CacheKey::of("where is  pete's", None), key);
        assert!(caches.lookup(&key, "where is  pete's").is_none());
        assert!(caches.lookup(&key, "Where is Pete's").is_some());
    }

    #[test]
    fn image_queries_key_into_the_imm_cache() {
        let mut img = GrayImage::new(4, 4);
        img.set(1, 1, 0.5);
        let with = CacheKey::of("what is this", Some(&img));
        let without = CacheKey::of("what is this", None);
        assert!(matches!(with, CacheKey::Imm(..)));
        assert!(matches!(without, CacheKey::Qa(..)));
        // The signature tracks exact pixel bits.
        let mut img2 = GrayImage::new(4, 4);
        img2.set(1, 1, 0.5000001);
        assert_ne!(
            CacheKey::of("what is this", Some(&img2)),
            CacheKey::of("what is this", Some(&img))
        );
        assert_eq!(
            CacheKey::of("what is this", Some(&img.clone())),
            CacheKey::of("what is this", Some(&img))
        );
    }

    #[test]
    fn budget_scales_slo_by_relative_weight() {
        let metrics = ServerMetrics::new();
        let classes = vec![
            TenantClass::new("premium", 2, Duration::from_millis(100), 4),
            TenantClass::new("best_effort", 0, Duration::from_millis(100), 1),
        ];
        let table = TenantTable::build(&classes, &metrics);
        let (premium, _) = table.lookup("premium").unwrap();
        let (best_effort, _) = table.lookup("best_effort").unwrap();
        assert_eq!(table.budget(premium), Duration::from_millis(100));
        assert_eq!(table.budget(best_effort), Duration::from_millis(25));
        assert!(table.lookup("unknown").is_none());
    }

    #[test]
    fn tenant_metrics_register_scoped() {
        let metrics = ServerMetrics::new();
        let classes = vec![TenantClass::new("premium", 2, Duration::from_millis(50), 4)];
        let table = TenantTable::build(&classes, &metrics);
        let (_, obs) = table.lookup("premium").unwrap();
        obs.accepted.inc();
        obs.sojourn.record(1_000);
        let snap = metrics.registry().snapshot();
        assert_eq!(snap.counter("tenant.premium.accepted"), Some(1));
        assert_eq!(snap.counter("tenant.premium.shed_deadline"), Some(0));
        assert_eq!(
            snap.histogram("tenant.premium.sojourn_ns").unwrap().count,
            1
        );
    }
}
