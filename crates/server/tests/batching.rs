//! Equivalence and robustness gates for cross-query dynamic batching.
//!
//! 1. **Bit-identity**: the batched server's answers must match the serial
//!    pipeline's, query for query, at every tested `(max_batch, max_delay)`
//!    point — including `max_batch = 1`, which must degrade to the
//!    per-query path. The forward pass and emission conversion are
//!    row-independent, so coalescing several queries' frame blocks into
//!    one GEMM must not move a single bit.
//! 2. **Collector robustness**: a seeded multi-producer stress run through
//!    the bare collector must deliver every reply to its own sender with
//!    exactly its own rows — no loss, duplication, reordering or
//!    cross-wiring — while the flush census balances.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusResponse};
use sirius::prepare_input_set;
use sirius_obs::Registry;
use sirius_server::{
    spawn_batch_collector, BatchObs, BatchPolicy, ServerConfig, SiriusServer, Ticket,
};
use sirius_speech::asr::AcousticModelKind;
use sirius_speech::WindowScorer;

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

/// Everything the client can observe about an answer (timings excluded —
/// wall-clock is allowed to differ, the bits are not).
fn payload(r: &SiriusResponse) -> (String, String, Option<String>) {
    (
        r.recognized.clone(),
        format!("{:?}", r.outcome),
        r.matched_venue.clone(),
    )
}

/// The batched server must answer the full 42-query input set with exactly
/// the serial pipeline's bits at several policy points, with every query in
/// flight at once so cross-query batches actually form.
#[test]
fn batched_serving_is_bit_identical_to_serial() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let serial: Vec<_> = prepared
        .iter()
        .map(|p| payload(&sirius.process_with(&p.input(), AcousticModelKind::Dnn)))
        .collect();

    for (max_batch, delay_ms) in [(1u64, 2u64), (4, 1), (8, 4)] {
        let mut config = ServerConfig::with_workers(4)
            .with_queue_depth(prepared.len().max(16))
            .with_batch_policy(BatchPolicy::new(
                max_batch as usize,
                Duration::from_millis(delay_ms),
            ));
        config.acoustic = AcousticModelKind::Dnn;
        let server = SiriusServer::start(Arc::clone(&sirius), config);

        // Submit everything up front: the deep queue admits the whole set,
        // so the ASR pool stays saturated and the collector sees blocks
        // from several queries at once.
        let tickets: Vec<Ticket> = prepared
            .iter()
            .map(|p| server.submit(p.input()).expect("deep queue admits all"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let response = t.wait().expect("query served");
            assert_eq!(
                payload(&response),
                serial[i],
                "query {i} diverged at max_batch={max_batch} delay={delay_ms}ms"
            );
        }

        let snap = server.metrics_snapshot();
        let sizes = snap.histogram("asr.batch_size").unwrap();
        let flushes = snap.counter("asr.batch_flush_full").unwrap()
            + snap.counter("asr.batch_flush_timeout").unwrap();
        assert_eq!(sizes.count, flushes, "every flush records its size once");
        if max_batch == 1 {
            // No collector is spawned: the policy degrades to the
            // per-query path and the batch telemetry stays flat.
            assert_eq!(sizes.count, 0, "depth-1 policy must not batch");
        } else {
            assert!(sizes.count > 0, "collector saw no blocks");
            assert!(sizes.max <= max_batch, "flush exceeded max_batch");
        }
        server.shutdown();
    }
}

/// Deterministic stand-in for the DNN scorer: width-1 rows, out = 3x + 7.
/// Any correct batching of rows reproduces it exactly per request.
struct AffineScorer;

impl WindowScorer for AffineScorer {
    fn score_windows(&self, x: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(x.len(), rows, "width-1 rows");
        x.iter().map(|v| 3.0 * v + 7.0).collect()
    }
}

/// Tiny seeded xorshift so the stress mix is reproducible without pulling
/// a dev-dependency into the crate.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.0 = s;
        s
    }
}

/// Seeded multi-producer stress: 8 threads × 200 blocks of varying row
/// counts race through one collector. Every reply must be the exact affine
/// image of its own request — any loss, duplication, reordering or
/// cross-wiring of scattered rows breaks the per-call assertion — and the
/// flush census must cover every block exactly once.
#[test]
fn collector_stress_no_loss_duplication_or_cross_wiring() {
    const PRODUCERS: u64 = 8;
    const CALLS: u64 = 200;

    let registry = Registry::new();
    let obs = BatchObs::register(&registry, "asr");
    let policy = BatchPolicy::new(5, Duration::from_millis(1));
    let (handle, collector) =
        spawn_batch_collector(Arc::new(AffineScorer), policy, obs, PRODUCERS as usize);

    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let mut rng = XorShift(0x5EED_0000 + p + 1);
                let mut blocks = 0u64;
                for i in 0..CALLS {
                    let rows = 1 + (rng.next() % 4) as usize;
                    let block: Vec<f32> = (0..rows)
                        .map(|r| (p * 1_000_000 + i * 100 + r as u64) as f32)
                        .collect();
                    let out = handle.score_windows(&block, rows);
                    let want: Vec<f32> = block.iter().map(|v| 3.0 * v + 7.0).collect();
                    assert_eq!(out, want, "producer {p} call {i}");
                    blocks += 1;
                }
                blocks
            })
        })
        .collect();
    let total: u64 = threads
        .into_iter()
        .map(|t| t.join().expect("producer"))
        .sum();
    drop(handle);
    collector.join().expect("collector drains and exits");

    assert_eq!(total, PRODUCERS * CALLS);
    let snap = registry.snapshot();
    let sizes = snap.histogram("asr.batch_size").unwrap();
    assert_eq!(sizes.sum, total, "every block flushed exactly once");
    assert!(sizes.max <= 5, "flush exceeded max_batch");
    let flushes = snap.counter("asr.batch_flush_full").unwrap()
        + snap.counter("asr.batch_flush_timeout").unwrap();
    assert_eq!(sizes.count, flushes, "flush census balances");
    assert!(
        sizes.max > 1,
        "8 racing producers never coalesced a batch — collector is serializing"
    );
}
