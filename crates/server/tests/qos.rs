//! Multi-tenant QoS gates: result-cache bit-identity and weighted
//! admission.
//!
//! 1. With caching on, the warm pass over the full 42-query input set is
//!    answered entirely from the cache — and every answer is bit-identical
//!    to the cold pass (single server and N ∈ {2, 4} clusters).
//! 2. A cache-disabled server and a force-warm cache-enabled server return
//!    identical answers: the cache can never change *what* is served, only
//!    how fast.
//! 3. Weighted admission sheds best-effort traffic while premium traffic
//!    with the same SLO is still admitted, the shed's `retry_after` hint
//!    reflects the class's *weighted* budget (regression for the per-class
//!    drain-rate fix), and the per-class counters export.
//! 4. `invalidate_result_caches` makes every prior entry unreachable: the
//!    next pass misses (counting `stale` on collision) yet still serves
//!    bit-identical answers.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusConfig, SiriusResponse};
use sirius::prepare_input_set;
use sirius_server::{
    CachePolicy, ClusterConfig, RoutePolicy, ServerConfig, SiriusCluster, SiriusServer, TenantClass,
};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

/// The payload fields of a response — everything except timing, which
/// legitimately differs between a served and a cached answer.
fn payload(r: &SiriusResponse) -> (String, sirius::pipeline::SiriusOutcome, Option<String>) {
    (
        r.recognized.clone(),
        r.outcome.clone(),
        r.matched_venue.clone(),
    )
}

fn cached_config() -> ServerConfig {
    ServerConfig::default().with_cache_policy(CachePolicy::enabled())
}

#[test]
fn warm_pass_is_all_hits_and_bit_identical_on_a_single_server() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 90210);
    assert_eq!(prepared.len(), 42, "the full input set");
    let server = SiriusServer::start(Arc::clone(&sirius), cached_config());

    let cold: Vec<_> = prepared
        .iter()
        .map(|p| server.process_sync(p.input()).expect("cold query served"))
        .collect();
    let caches = server.caches().expect("cache policy enabled");
    let (cold_hits, cold_lookups) = caches.totals();
    assert_eq!(cold_hits, 0, "a cold cache cannot hit");
    assert_eq!(cold_lookups, 42, "every admitted query consults the cache");

    let warm: Vec<_> = prepared
        .iter()
        .map(|p| server.process_sync(p.input()).expect("warm query served"))
        .collect();
    let (hits, lookups) = caches.totals();
    assert_eq!(hits, 42, "the warm pass is answered entirely from cache");
    assert_eq!(lookups, 84);

    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            payload(c),
            payload(w),
            "cached answer must be bit-identical"
        );
    }
    // A cache hit skips Classify/IMM/QA entirely: its timing records zero
    // classify time, and the stage service histograms only ever saw the
    // cold pass.
    let snap = server.metrics_snapshot();
    assert_eq!(
        snap.counter("cache.qa.hit").unwrap() + snap.counter("cache.imm.hit").unwrap(),
        42
    );
    assert_eq!(
        snap.histogram("classify.service_ns").unwrap().count,
        42,
        "warm-pass hits never reach the classify stage"
    );
    server.shutdown();
}

#[test]
fn cache_disabled_and_force_warm_servers_agree_exactly() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 555);

    let plain = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());
    assert!(plain.caches().is_none(), "caching is opt-in");
    let cached = SiriusServer::start(Arc::clone(&sirius), cached_config());
    // Force the cache warm, then serve every query again out of it.
    for p in prepared.iter() {
        cached
            .process_sync(p.input())
            .expect("warming query served");
    }
    for p in prepared.iter() {
        let uncached = plain.process_sync(p.input()).expect("plain server serves");
        let hit = cached
            .process_sync(p.input())
            .expect("cached server serves");
        assert_eq!(payload(&uncached), payload(&hit));
    }
    let (hits, _) = cached.caches().unwrap().totals();
    assert_eq!(hits, 42, "the second pass was served from cache");
    plain.shutdown();
    cached.shutdown();
}

#[test]
fn cluster_warm_passes_are_bit_identical_and_hash_affinity_concentrates_hits() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 31337);

    for replicas in [2u32, 4] {
        let cluster = SiriusCluster::start(
            &sirius,
            ClusterConfig::new(replicas)
                .with_route(RoutePolicy::ConsistentHash)
                .with_server(cached_config()),
        )
        .expect("cluster starts");

        let cold: Vec<_> = prepared
            .iter()
            .map(|p| cluster.process_sync(p.input()).expect("cold query served"))
            .collect();
        let warm: Vec<_> = prepared
            .iter()
            .map(|p| cluster.process_sync(p.input()).expect("warm query served"))
            .collect();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(
                payload(c),
                payload(w),
                "N={replicas}: cached answer must be bit-identical"
            );
        }
        // Consistent-hash affinity pins each query to one replica, so the
        // warm pass finds every entry exactly where the cold pass filled it.
        let snap = cluster.metrics_snapshot();
        let (hits, lookups) = cluster.cache_totals(&snap);
        assert_eq!(
            hits, 42,
            "N={replicas}: warm pass is all hits under hash affinity"
        );
        assert_eq!(lookups, 84, "N={replicas}");
        cluster.shutdown();
    }
}

#[test]
fn invalidation_makes_the_whole_cache_unreachable_without_changing_answers() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 2026);
    let server = SiriusServer::start(Arc::clone(&sirius), cached_config());

    let cold: Vec<_> = prepared
        .iter()
        .map(|p| server.process_sync(p.input()).expect("cold query served"))
        .collect();
    server.invalidate_result_caches();

    let after: Vec<_> = prepared
        .iter()
        .map(|p| {
            server
                .process_sync(p.input())
                .expect("post-invalidation query served")
        })
        .collect();
    let (hits, lookups) = server.caches().unwrap().totals();
    assert_eq!(hits, 0, "no pre-invalidation entry may be served");
    assert_eq!(lookups, 84);
    for (c, a) in cold.iter().zip(&after) {
        assert_eq!(payload(c), payload(a), "re-served answers stay identical");
    }
    // And the invalidated generation is gone for good: a third pass hits
    // on the *re-filled* entries only.
    for p in prepared.iter() {
        server
            .process_sync(p.input())
            .expect("re-warm query served");
    }
    let (hits, _) = server.caches().unwrap().totals();
    assert_eq!(hits, 42);
    server.shutdown();
}

fn tenant_config() -> ServerConfig {
    ServerConfig::default()
        .with_cache_policy(CachePolicy::enabled())
        .with_tenant_classes(vec![
            TenantClass::new("premium", 0, Duration::from_millis(400), 4),
            TenantClass::new("best_effort", 2, Duration::from_millis(400), 1),
        ])
}

#[test]
fn weighted_admission_sheds_best_effort_before_premium() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 424242);
    let server = SiriusServer::start(Arc::clone(&sirius), tenant_config());

    // Seed the estimator deterministically: a 300 ms ASR mean puts the
    // expected sojourn between best-effort's weighted budget
    // (400 ms × 1/4 = 100 ms) and premium's (400 ms × 4/4 = 400 ms).
    server
        .metrics()
        .asr
        .service_meter
        .record_duration(Duration::from_millis(300));
    let expected = server.expected_sojourn();
    assert!(
        expected > Duration::from_millis(100) && expected <= Duration::from_millis(400),
        "estimator seed must split the two budgets, got {expected:?}"
    );

    let premium = server
        .submit_classed(prepared[0].input(), "premium")
        .expect("premium is admitted at full weight");
    match server.submit_classed(prepared[1].input(), "best_effort") {
        Err(SiriusError::DeadlineUnmeetable {
            expected,
            deadline,
            retry_after,
        }) => {
            assert_eq!(deadline, Duration::from_millis(400), "the class SLO");
            // Regression: the hint drains to the *weighted* budget, not the
            // raw SLO. expected ≤ deadline here, so the old
            // `expected − deadline` hint would have been zero.
            assert_eq!(retry_after, expected - Duration::from_millis(100));
            assert!(retry_after > Duration::ZERO);
        }
        Err(other) => panic!("best-effort must be shed by weighted admission, got {other:?}"),
        Ok(_) => panic!("best-effort must be shed by weighted admission, got an admit"),
    }
    premium.wait().expect("premium query completes");

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("tenant.premium.accepted"), Some(1));
    assert_eq!(snap.counter("tenant.premium.completed"), Some(1));
    assert_eq!(snap.counter("tenant.premium.shed_deadline"), Some(0));
    assert_eq!(snap.gauge("tenant.premium.in_flight"), Some(0));
    assert_eq!(
        snap.histogram("tenant.premium.sojourn_ns").unwrap().count,
        1
    );
    assert_eq!(snap.counter("tenant.best_effort.accepted"), Some(0));
    assert_eq!(snap.counter("tenant.best_effort.shed_deadline"), Some(1));
    assert_eq!(snap.counter("admission.shed_deadline"), Some(1));
    server.shutdown();
}

#[test]
fn classed_cache_hits_are_attributed_to_their_tenant() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 808);
    let server = SiriusServer::start(Arc::clone(&sirius), tenant_config());

    let input = prepared[0].input();
    let cold = server
        .submit_classed(input.clone(), "premium")
        .expect("cold query admitted")
        .wait()
        .expect("cold query served");
    let warm = server
        .submit_classed(input, "best_effort")
        .expect("warm query admitted on a cold estimator")
        .wait()
        .expect("warm query served");
    assert_eq!(payload(&cold), payload(&warm));

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("tenant.premium.cache_hit"), Some(0));
    assert_eq!(snap.counter("tenant.best_effort.cache_hit"), Some(1));
    assert_eq!(snap.counter("tenant.best_effort.completed"), Some(1));
    server.shutdown();
}

#[test]
fn unknown_tenant_class_is_a_typed_error() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 99);
    let server = SiriusServer::start(Arc::clone(&sirius), tenant_config());
    match server.submit_classed(prepared[0].input(), "platinum") {
        Err(SiriusError::UnknownTenantClass { class }) => assert_eq!(class, "platinum"),
        Err(other) => panic!("expected UnknownTenantClass, got {other:?}"),
        Ok(_) => panic!("expected UnknownTenantClass, got an admit"),
    }
    server.shutdown();
}

#[test]
fn cluster_routes_classed_traffic_with_per_replica_accounting() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 1234);
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(2)
            .with_route(RoutePolicy::ConsistentHash)
            .with_server(tenant_config()),
    )
    .expect("cluster starts");

    for p in prepared.iter().take(8) {
        cluster
            .submit_classed(p.input(), "premium")
            .expect("premium admitted on idle cluster")
            .wait()
            .expect("query served");
    }
    let snap = cluster.metrics_snapshot();
    let accepted = cluster.merged_counter(&snap, "tenant.premium.accepted");
    let completed = cluster.merged_counter(&snap, "tenant.premium.completed");
    assert_eq!(accepted, 8);
    assert_eq!(completed, 8);
    cluster.shutdown();
}
