//! Telemetry gates for the staged runtime.
//!
//! 1. Per-stage histograms must account for every admitted query: counts
//!    line up with the routing (actions exit at classify; only questions
//!    reach IMM/QA), and the per-stage `queue_wait + service` time
//!    reconciles with the end-to-end sojourn histogram.
//! 2. Admission counters must mirror the typed submit results.
//! 3. A caller-supplied `Recorder` must see every span of every query.
//! 4. Snapshots must export queue gauges and render to JSON/Prometheus.
//! 5. Queue gauges must be refreshed at snapshot time, not left at their
//!    last-probed values.
//! 6. The admission ledger must balance even when deadlines expire jobs:
//!    accepted = completed + failed, with the sojourn histograms and
//!    per-stage expiry counters splitting the two sides exactly.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusConfig, SiriusOutcome};
use sirius::prepare_input_set;
use sirius_obs::{CollectingRecorder, SpanKind};
use sirius_server::{ServerConfig, SiriusServer};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

#[test]
fn per_stage_histograms_account_for_every_query() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());

    let mut actions = 0u64;
    for p in prepared.iter() {
        let response = server.process_sync(p.input()).expect("query served");
        if matches!(response.outcome, SiriusOutcome::Action(_)) {
            actions += 1;
        }
    }
    let total = prepared.len() as u64;
    let questions = total - actions;
    assert!(actions > 0 && questions > 0, "input set mixes both kinds");

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("admission.accepted"), Some(total));
    assert_eq!(snap.counter("admission.shed"), Some(0));
    assert_eq!(snap.counter("completed"), Some(total));
    assert_eq!(snap.counter("failed"), Some(0));

    // Stage counts mirror the routing topology.
    for stage in ["asr", "classify"] {
        for kind in ["queue_wait_ns", "service_ns"] {
            let h = snap.histogram(&format!("{stage}.{kind}")).unwrap();
            assert_eq!(h.count, total, "{stage}.{kind}");
        }
        assert_eq!(snap.counter(&format!("{stage}.panics")), Some(0));
    }
    for stage in ["imm", "qa"] {
        let h = snap.histogram(&format!("{stage}.service_ns")).unwrap();
        assert_eq!(h.count, questions, "{stage} sees only questions");
    }

    // Reconciliation: summed per-stage wait + service never exceeds the
    // summed sojourn (both are exact sums, not bucketed), and the
    // unattributed remainder (routing hand-offs) is a small fraction.
    let sojourn = snap.histogram("sojourn_ns").unwrap();
    assert_eq!(sojourn.count, total);
    let attributed: u64 = ["asr", "classify", "imm", "qa"]
        .iter()
        .flat_map(|s| {
            [
                snap.histogram(&format!("{s}.queue_wait_ns")).unwrap().sum,
                snap.histogram(&format!("{s}.service_ns")).unwrap().sum,
            ]
        })
        .sum();
    assert!(
        attributed <= sojourn.sum,
        "stage time {attributed} must not exceed sojourn {}",
        sojourn.sum
    );
    assert!(
        attributed * 2 >= sojourn.sum,
        "stage time {attributed} should dominate sojourn {}",
        sojourn.sum
    );

    // Bucketed percentiles are ordered and bounded by the exact extremes.
    let (p50, p95, p99) = (
        sojourn.percentile(50.0),
        sojourn.percentile(95.0),
        sojourn.percentile(99.0),
    );
    assert!(sojourn.min <= p50 && p50 <= p95 && p95 <= p99 && p99 <= sojourn.max);

    server.shutdown();
}

#[test]
fn admission_counters_mirror_shedding() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 31415);
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::default().with_queue_depth(1),
    );
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for p in prepared.iter() {
        match server.submit(p.input()) {
            Ok(t) => tickets.push(t),
            Err(SiriusError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(shed > 0, "depth-1 queue must shed under a burst");
    let accepted = tickets.len() as u64;
    for t in tickets {
        t.wait().expect("accepted queries complete");
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("admission.accepted"), Some(accepted));
    assert_eq!(snap.counter("admission.shed"), Some(shed));
    assert_eq!(snap.counter("completed"), Some(accepted));
    server.shutdown();
}

#[test]
fn recorder_sees_every_span_of_every_query() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 777);
    let recorder = Arc::new(CollectingRecorder::new());
    let server = SiriusServer::start_with_recorder(
        Arc::clone(&sirius),
        ServerConfig::default(),
        Arc::<CollectingRecorder>::clone(&recorder),
    );
    let n = 6;
    for p in prepared.iter().take(n) {
        server.process_sync(p.input()).expect("query served");
    }
    server.shutdown();

    let events = recorder.events();
    let count = |stage: &str, kind: SpanKind| {
        events
            .iter()
            .filter(|(s, k, _)| *s == stage && *k == kind)
            .count()
    };
    // Every query passes ASR and classify, with both spans attributed.
    assert_eq!(count("asr", SpanKind::QueueWait), n);
    assert_eq!(count("asr", SpanKind::Service), n);
    assert_eq!(count("classify", SpanKind::Service), n);
    // Exactly one terminal total span per query, successful or not.
    assert_eq!(count("total", SpanKind::Total), n);
    // Questions flow through IMM and QA in lockstep.
    assert_eq!(
        count("imm", SpanKind::Service),
        count("qa", SpanKind::Service)
    );
    assert!(recorder.total_for("asr", SpanKind::Service) > std::time::Duration::ZERO);
}

/// A query that fails (here: expires in queue) must still leave exactly one
/// terminal `total` span, or recorder-side ledgers undercount — the span
/// used to be recorded only on success.
#[test]
fn failed_queries_still_record_a_terminal_total_span() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 555);
    let recorder = Arc::new(CollectingRecorder::new());
    let server = SiriusServer::start_with_recorder(
        Arc::clone(&sirius),
        ServerConfig::default(),
        Arc::<CollectingRecorder>::clone(&recorder),
    );

    // On a cold server the sojourn estimator reads zero, so a nanosecond
    // deadline is admitted — and then expires in the ASR queue before any
    // worker can serve it.
    let ticket = server
        .submit_with_deadline(prepared[0].input(), Duration::from_nanos(1))
        .expect("cold estimator admits everything");
    let err = ticket.wait().expect_err("deadline must expire in queue");
    assert!(matches!(err, SiriusError::DeadlineUnmeetable { .. }));
    server.shutdown();

    let events = recorder.events();
    let count = |stage: &str, kind: SpanKind| {
        events
            .iter()
            .filter(|(s, k, _)| *s == stage && *k == kind)
            .count()
    };
    assert_eq!(
        count("total", SpanKind::Total),
        1,
        "failed query leaves its terminal span"
    );
    assert_eq!(count("asr", SpanKind::Service), 0, "no stage served it");
}

#[test]
fn queue_gauges_are_refreshed_at_snapshot_time() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 2718);
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());

    // Pile up a burst, then snapshot while the queue drains. The gauge must
    // reflect the depth at snapshot time: bracket the snapshot with two
    // live reads — the queue only drains, so the exported value has to land
    // between them. A stale gauge (stuck at its value from some earlier
    // probe, e.g. 0 from startup while `before` is large) fails this.
    let mut tickets = Vec::new();
    for _ in 0..3 {
        for p in prepared.iter() {
            if let Ok(t) = server.submit(p.input()) {
                tickets.push(t);
            }
        }
    }
    let before = server.admission_queue_len() as u64;
    let snap = server.metrics_snapshot();
    let after = server.admission_queue_len() as u64;
    let exported = snap.gauge("asr.queue_depth").expect("gauge exported");
    assert!(
        (after..=before).contains(&exported),
        "snapshot gauge {exported} must lie between live reads {after}..={before}"
    );

    for t in tickets {
        t.wait().expect("accepted queries complete");
    }
    // Fully drained and idle: a fresh snapshot must say so everywhere.
    let snap = server.metrics_snapshot();
    for stage in sirius_server::STAGES {
        assert_eq!(
            snap.gauge(&format!("{stage}.queue_depth")),
            Some(0),
            "{stage}"
        );
        assert_eq!(
            snap.gauge(&format!("{stage}.in_flight")),
            Some(0),
            "{stage}"
        );
    }
    server.shutdown();
}

#[test]
fn admission_ledger_balances_with_expiring_deadlines() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 99);
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());

    // Warm the estimator so tight deadlines are exercised both ways.
    for p in prepared.iter().take(4) {
        server.process_sync(p.input()).expect("query served");
    }

    // A mix of unbounded submits and deadlines barely above the current
    // estimate: some of the latter are admitted and then expire in queue,
    // some complete, some are shed — whichever way each one lands, the
    // ledger below must balance.
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for _ in 0..3 {
        for p in prepared.iter() {
            let slo = server.expected_sojourn() + Duration::from_micros(200);
            match server.submit_with_deadline(p.input(), slo) {
                Ok(t) => tickets.push(t),
                Err(SiriusError::DeadlineUnmeetable { .. }) => shed += 1,
                Err(SiriusError::Overloaded { .. }) => shed += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
            if let Ok(t) = server.submit(p.input()) {
                tickets.push(t);
            }
        }
    }
    let mut completed = 0u64;
    let mut expired = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => completed += 1,
            Err(SiriusError::DeadlineUnmeetable { .. }) => expired += 1,
            Err(other) => panic!("unexpected ticket error: {other}"),
        }
    }
    assert!(shed + expired > 0, "tight SLOs must reject some work");

    let snap = server.metrics_snapshot();
    let accepted = snap.counter("admission.accepted").unwrap();
    assert_eq!(
        accepted,
        snap.counter("completed").unwrap() + snap.counter("failed").unwrap(),
        "every accepted query must be accounted for"
    );
    assert_eq!(snap.counter("completed"), Some(completed + 4));
    assert_eq!(snap.counter("failed"), Some(expired));
    assert_eq!(snap.histogram("sojourn_ns").unwrap().count, completed + 4);
    assert_eq!(snap.histogram("sojourn_failed_ns").unwrap().count, expired);
    let stage_expired: u64 = sirius_server::STAGES
        .iter()
        .map(|s| snap.counter(&format!("{s}.expired")).unwrap())
        .sum();
    assert_eq!(
        stage_expired, expired,
        "each expiry happens at exactly one stage"
    );
    // Every accepted query either received ASR service or expired there.
    assert_eq!(
        snap.histogram("asr.service_ns").unwrap().count + snap.counter("asr.expired").unwrap(),
        accepted
    );
    server.shutdown();
}

#[test]
fn snapshot_exports_queue_gauges_and_renders() {
    let sirius = shared_sirius();
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::default().with_queue_depth(7),
    );
    let snap = server.metrics_snapshot();
    for stage in sirius_server::STAGES {
        assert_eq!(
            snap.gauge(&format!("{stage}.queue_capacity")),
            Some(7),
            "{stage}"
        );
        assert_eq!(snap.gauge(&format!("{stage}.queue_depth")), Some(0), "idle");
    }
    let json = snap.to_json();
    assert!(json.contains("\"sojourn_ns\""));
    assert!(json.contains("\"asr.queue_capacity\": 7"));
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE asr_service_ns summary"));
    assert!(prom.contains("asr_queue_capacity 7"));
    server.shutdown();
}
