//! Network front-end gates: the TCP serving boundary must not change what
//! is served, and nothing a client sends may destabilise the server.
//!
//! 1. Remote answers over the frame protocol are bit-identical to
//!    in-process `submit_classed` for the full 42-query input set across
//!    every tenant class, and the per-tenant ledger accounts for both.
//! 2. Concurrent remote clients (N threads × tenant classes) stay
//!    bit-identical and the ledger balances across replicas.
//! 3. Hostile openings — bad magic, alien version, oversize length claims,
//!    undecodable bodies, truncation — are answered with typed error
//!    frames or a clean close; the listener survives and keeps serving.
//! 4. A seeded random-bytes fuzz loop at the socket layer: no handler
//!    panics, every connection terminates.
//! 5. `GET /metrics` on the same socket serves Prometheus text carrying
//!    both replica and `net.` series; other paths 404.
//! 6. Shutdown drains cleanly while a connection is parked mid-stream.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::error::{ClusterError, SiriusError};
use sirius::pipeline::{Sirius, SiriusConfig, SiriusResponse};
use sirius::prepare_input_set;
use sirius_server::{
    read_frame, ClusterConfig, Frame, FrameRead, NetClient, NetClientError, NetConfig, NetServer,
    RoutePolicy, ServerConfig, SiriusCluster, TenantClass, WireFault, MAX_FRAME_BODY,
};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

const CLASSES: [&str; 3] = ["premium", "standard", "best_effort"];

/// Tenant classes with hour-scale SLOs: admission never sheds, so the
/// bit-identity gates exercise the full pipeline for every query.
fn lenient_classes() -> Vec<TenantClass> {
    let slo = Duration::from_secs(3600);
    vec![
        TenantClass::new("premium", 2, slo, 3),
        TenantClass::new("standard", 1, slo, 2),
        TenantClass::new("best_effort", 0, slo, 1),
    ]
}

fn start_net(replicas: u32) -> NetServer {
    let sirius = shared_sirius();
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(replicas)
            .with_route(RoutePolicy::RoundRobin)
            .with_server(ServerConfig::default().with_tenant_classes(lenient_classes())),
    )
    .expect("cluster starts");
    NetServer::serve(cluster, "127.0.0.1:0", NetConfig::default()).expect("listener binds")
}

/// The payload fields of a response — everything except timing, which
/// legitimately differs between runs of the same query.
fn payload(r: &SiriusResponse) -> (String, sirius::pipeline::SiriusOutcome, Option<String>) {
    (
        r.recognized.clone(),
        r.outcome.clone(),
        r.matched_venue.clone(),
    )
}

/// Sums `tenant.{class}.{counter}` across every replica of the cluster.
fn tenant_total(net: &NetServer, class: &str, counter: &str) -> u64 {
    let snap = net.cluster().metrics_snapshot();
    net.cluster()
        .merged_counter(&snap, &format!("tenant.{class}.{counter}"))
}

#[test]
fn remote_answers_are_bit_identical_to_in_process_across_tenant_classes() {
    let net = start_net(2);
    let prepared = prepare_input_set(&shared_sirius(), 777);
    assert_eq!(prepared.len(), 42, "the full input set");
    let mut client = NetClient::connect(net.local_addr()).expect("client connects");

    for (i, p) in prepared.iter().enumerate() {
        let class = CLASSES[i % CLASSES.len()];
        let remote = client
            .submit(&p.input(), class, None)
            .expect("remote classed query served");
        let local = net
            .cluster()
            .submit_classed(p.input(), class)
            .expect("in-process admit")
            .wait()
            .expect("in-process query served");
        assert_eq!(
            payload(&remote),
            payload(&local),
            "remote answer must be bit-identical to in-process submit_classed (query {i})"
        );
    }

    // Both the remote and the in-process pass went through the same classed
    // admission, so each class's ledger holds exactly two passes' worth.
    for (c, class) in CLASSES.iter().enumerate() {
        let queries = (c..prepared.len()).step_by(CLASSES.len()).count() as u64;
        let expected = 2 * queries; // one remote + one in-process pass
        assert_eq!(
            tenant_total(&net, class, "accepted"),
            expected,
            "class {class} accepted ledger"
        );
        assert_eq!(
            tenant_total(&net, class, "completed"),
            expected,
            "class {class} completed ledger"
        );
        assert_eq!(tenant_total(&net, class, "failed"), 0);
    }

    let snap = net.cluster().metrics_snapshot();
    assert_eq!(snap.counter("net.frames_in"), Some(42));
    assert_eq!(snap.counter("net.frames_out"), Some(42));
    assert_eq!(snap.counter("net.errors_protocol"), Some(0));
    assert_eq!(snap.counter("net.handler_panics"), Some(0));
    assert!(snap.counter("net.bytes_in").unwrap() > 0);
    assert!(snap.counter("net.bytes_out").unwrap() > 0);
    net.shutdown();
}

#[test]
fn concurrent_remote_clients_stay_bit_identical_and_balance_the_ledger() {
    let net = start_net(2);
    let prepared = prepare_input_set(&shared_sirius(), 4242);

    // Class-less in-process baseline (leaves the tenant ledger untouched).
    let expected: Vec<_> = prepared
        .iter()
        .map(|p| {
            let r = net
                .cluster()
                .submit(p.input())
                .expect("baseline admit")
                .wait()
                .expect("baseline served");
            payload(&r)
        })
        .collect();

    // Six clients, two per class; thread t serves every query i with
    // i ≡ t (mod 3), so each class sees each congruence class twice.
    const THREADS: usize = 6;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let net = &net;
            let prepared = &prepared;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = NetClient::connect(net.local_addr()).expect("client connects");
                for (i, p) in prepared.iter().enumerate() {
                    if i % CLASSES.len() != t % CLASSES.len() {
                        continue;
                    }
                    let remote = client
                        .submit(&p.input(), CLASSES[t % CLASSES.len()], None)
                        .expect("concurrent remote query served");
                    assert_eq!(
                        payload(&remote),
                        expected[i],
                        "thread {t} query {i}: remote answer diverged from in-process"
                    );
                }
            });
        }
    });

    for (c, class) in CLASSES.iter().enumerate() {
        let queries = (c..prepared.len()).step_by(CLASSES.len()).count() as u64;
        let expected_accepted = 2 * queries; // two threads per class
        assert_eq!(
            tenant_total(&net, class, "accepted"),
            expected_accepted,
            "class {class} accepted ledger balances across replicas"
        );
        assert_eq!(
            tenant_total(&net, class, "completed"),
            expected_accepted,
            "class {class} completed ledger"
        );
        assert_eq!(tenant_total(&net, class, "failed"), 0);
    }

    let snap = net.cluster().metrics_snapshot();
    let remote_queries = 2 * prepared.len() as u64; // 6 threads × 14 queries
    assert_eq!(snap.counter("net.frames_in"), Some(remote_queries));
    assert_eq!(snap.counter("net.frames_out"), Some(remote_queries));
    assert_eq!(snap.counter("net.handler_panics"), Some(0));
    assert_eq!(snap.counter("net.connections_opened"), Some(THREADS as u64));
    net.shutdown();
}

/// Reads one frame off a raw hostile connection with a client-side timeout
/// so a wedged server fails the test instead of hanging it.
fn read_reply(stream: &mut TcpStream) -> FrameRead {
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    read_frame(stream)
}

fn expect_protocol_error(reply: FrameRead, what: &str) -> String {
    match reply {
        FrameRead::Frame(Frame::Error(WireFault::Protocol { message })) => message,
        other => panic!("{what}: expected a typed protocol-error frame, got {other:?}"),
    }
}

#[test]
fn hostile_frames_get_typed_errors_and_the_listener_survives() {
    let net = start_net(1);
    let addr = net.local_addr();

    // Bad magic (one exact header's worth): answered with a typed error
    // frame, then closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"JUNK\x01\x01\x00\x00\x00\x00").unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let msg = expect_protocol_error(read_reply(&mut s), "bad magic");
    assert!(msg.contains("magic"), "{msg}");
    assert!(matches!(read_reply(&mut s), FrameRead::Closed));

    // Alien protocol version.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut header = Vec::from(*b"SIRF");
    header.push(99); // version
    header.push(0x01); // Submit
    header.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&header).unwrap();
    let msg = expect_protocol_error(read_reply(&mut s), "bad version");
    assert!(msg.contains("version"), "{msg}");

    // Oversize length claim: rejected before any allocation.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut header = Vec::from(*b"SIRF");
    header.push(1);
    header.push(0x01);
    header.extend_from_slice(&(MAX_FRAME_BODY + 1).to_le_bytes());
    s.write_all(&header).unwrap();
    let msg = expect_protocol_error(read_reply(&mut s), "oversize claim");
    assert!(msg.contains("exceeds") && msg.contains("limit"), "{msg}");

    // Valid header, undecodable body.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::from(*b"SIRF");
    frame.push(1);
    frame.push(0x01);
    frame.extend_from_slice(&16u32.to_le_bytes());
    frame.extend_from_slice(&[0xFF; 16]);
    s.write_all(&frame).unwrap();
    expect_protocol_error(read_reply(&mut s), "garbage body");

    // Truncated body then half-close: the server must close cleanly, not
    // hang waiting for the missing bytes.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::from(*b"SIRF");
    frame.push(1);
    frame.push(0x01);
    frame.extend_from_slice(&100u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 10]);
    s.write_all(&frame).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    assert!(matches!(read_reply(&mut s), FrameRead::Closed));

    // An unknown tenant class travels back as the lossless typed error.
    let prepared = prepare_input_set(&shared_sirius(), 11);
    let mut client = NetClient::connect(addr).unwrap();
    match client.submit(&prepared[0].input(), "platinum", None) {
        Err(NetClientError::Fault(WireFault::Cluster(ClusterError::Replica {
            replica,
            source: SiriusError::UnknownTenantClass { class },
        }))) => {
            assert_eq!(replica, 0);
            assert_eq!(class, "platinum");
        }
        other => panic!("expected the typed UnknownTenantClass fault, got {other:?}"),
    }

    // After all that abuse the listener still serves real queries.
    let served = client
        .submit(&prepared[0].input(), "premium", None)
        .expect("server survives hostile peers");
    let local = net
        .cluster()
        .submit_classed(prepared[0].input(), "premium")
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(payload(&served), payload(&local));

    let snap = net.cluster().metrics_snapshot();
    assert_eq!(snap.counter("net.handler_panics"), Some(0));
    assert!(snap.counter("net.errors_protocol").unwrap() >= 4);
    net.shutdown();
}

/// SplitMix64 — deterministic seeds for the fuzz loop.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn socket_fuzz_random_bytes_never_kill_the_server() {
    let net = start_net(1);
    let addr = net.local_addr();
    let mut rng = Mix(0x5EED_F00D);

    for case in 0..48 {
        let mut bytes = Vec::new();
        if case % 2 == 0 {
            // Half the cases open with a plausible header so the body
            // decoders — not just the header validator — get exercised.
            bytes.extend_from_slice(b"SIRF");
            bytes.push(1);
            bytes.push((rng.next() % 4) as u8);
            bytes.extend_from_slice(&((rng.next() % 256) as u32).to_le_bytes());
        }
        let len = (rng.next() % 300) as usize;
        bytes.extend((0..len).map(|_| (rng.next() & 0xFF) as u8));

        let mut s = TcpStream::connect(addr).expect("fuzz connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let _ = s.write_all(&bytes);
        let _ = s.shutdown(Shutdown::Write);
        // The connection must terminate: an answer, an error frame, a
        // close, or a reset (the server closing with unread hostile bytes
        // pending sends RST) — never a hang; the client-side timeout turns
        // a hang into a test failure.
        let mut sink = Vec::new();
        match s.read_to_end(&mut sink) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("fuzz case {case}: connection hung or failed oddly: {e}"),
        }
    }

    // The server took 48 hostile connections without a single handler
    // panic, and still serves.
    let prepared = prepare_input_set(&shared_sirius(), 99);
    let mut client = NetClient::connect(addr).unwrap();
    client
        .submit(&prepared[0].input(), "standard", None)
        .expect("server serves after the fuzz barrage");
    let snap = net.cluster().metrics_snapshot();
    assert_eq!(snap.counter("net.handler_panics"), Some(0));
    assert_eq!(snap.counter("net.connections_opened"), Some(49));
    // The client observes a close a beat before the handler's bookkeeping
    // lands, so give the counters a bounded moment to settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let closed = net
            .cluster()
            .metrics_snapshot()
            .counter("net.connections_closed")
            .unwrap();
        if closed == 48 {
            break; // every fuzz handler exited; only the live client remains
        }
        assert!(
            std::time::Instant::now() < deadline,
            "fuzz handlers never finished closing: {closed}/48"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    net.shutdown();
}

#[test]
fn metrics_scrape_serves_prometheus_on_the_same_socket() {
    let net = start_net(2);
    let addr = net.local_addr();

    // Put one query through so replica series carry data.
    let prepared = prepare_input_set(&shared_sirius(), 3);
    let mut client = NetClient::connect(addr).unwrap();
    client
        .submit(&prepared[0].input(), "premium", None)
        .expect("query served");

    let (status, body) = sirius_server::http_get(addr, "/metrics").expect("scrape");
    assert_eq!(status, 200);
    assert!(
        body.contains("# TYPE"),
        "Prometheus exposition format expected:\n{body}"
    );
    assert!(body.contains("replica0_"), "replica series exported");
    assert!(body.contains("replica1_"), "every replica exported");
    assert!(
        body.contains("net_connections_opened"),
        "front-end series exported"
    );
    assert!(body.contains("net_frames_in"), "frame counters exported");

    let (status, _) = sirius_server::http_get(addr, "/somewhere").expect("scrape");
    assert_eq!(status, 404);

    let snap = net.cluster().metrics_snapshot();
    assert_eq!(
        snap.counter("net.http_scrapes"),
        Some(1),
        "404s don't count"
    );
    net.shutdown();
}

#[test]
fn shutdown_drains_cleanly_with_a_parked_connection() {
    let net = start_net(1);
    let prepared = prepare_input_set(&shared_sirius(), 8);
    let mut client = NetClient::connect(net.local_addr()).expect("client connects");
    client
        .submit(&prepared[0].input(), "premium", None)
        .expect("query served before shutdown");

    // The connection stays open, its handler parked in a blocking read.
    // Shutdown must unblock it, join every thread and drain the cluster —
    // if it wedges, the test harness times out.
    net.shutdown();

    if let Ok(r) = client.submit(&prepared[0].input(), "premium", None) {
        panic!("server answered after shutdown: {:?}", r.outcome);
    }
}
