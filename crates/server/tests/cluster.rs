//! Cluster front-end gates.
//!
//! 1. The sharded N-replica cluster must answer **bit-identically** to the
//!    serial monolithic `Sirius::process`, for the full 42-query input set,
//!    at every swept replica count × routing policy — routing and sharding
//!    are pure performance decisions, never semantic ones.
//! 2. Two server runtimes registered into one shared registry under
//!    distinct prefixes must never alias each other's metrics.
//! 3. The cluster's merged observability (counters summed, histograms
//!    merged at bucket granularity) must account for every query exactly
//!    once.

use std::sync::{Arc, OnceLock};

use sirius::error::{ClusterError, SiriusError};
use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome, SiriusResponse};
use sirius::prepare_input_set;
use sirius_server::{
    ClusterConfig, RoutePolicy, ServerConfig, ServerMetrics, SiriusCluster, SiriusServer,
};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

/// Building Sirius trains every model (seconds); share one instance across
/// the whole test binary.
fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

/// The fields that must match bit-for-bit (timing is wall-clock and always
/// differs between runs).
fn payload(r: &SiriusResponse) -> (String, SiriusOutcome, Option<String>) {
    (
        r.recognized.clone(),
        r.outcome.clone(),
        r.matched_venue.clone(),
    )
}

#[test]
fn cluster_outputs_identical_to_serial_for_every_size_and_policy() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    assert_eq!(prepared.len(), 42, "the full input set");
    let serial: Vec<_> = prepared
        .iter()
        .map(|p| sirius.process(&p.input()))
        .collect();

    for replicas in [1u32, 2, 4] {
        for route in RoutePolicy::ALL {
            let cluster = SiriusCluster::start(
                &sirius,
                ClusterConfig::new(replicas)
                    .with_route(route)
                    .with_server(ServerConfig::default().with_queue_depth(64)),
            )
            .expect("cluster start");
            assert_eq!(cluster.len(), replicas as usize);
            for (p, expect) in prepared.iter().zip(&serial) {
                let got = cluster
                    .process_sync(p.input())
                    .unwrap_or_else(|e| panic!("{} failed: {e}", p.spec.text));
                assert_eq!(
                    payload(&got),
                    payload(expect),
                    "{} diverged at N={replicas} route={route}",
                    p.spec.text
                );
            }
            // Every query accounted exactly once across the replicas.
            let snapshot = cluster.metrics_snapshot();
            assert_eq!(cluster.merged_counter(&snapshot, "completed"), 42);
            assert_eq!(cluster.merged_counter(&snapshot, "failed"), 0);
            let sojourn = cluster.merged_histogram(&snapshot, "sojourn_ns");
            assert_eq!(sojourn.count, 42);
            cluster.shutdown();
        }
    }
}

#[test]
fn round_robin_spreads_queries_across_all_replicas() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(4).with_server(ServerConfig::default().with_queue_depth(64)),
    )
    .expect("cluster start");
    let mut served = vec![0usize; cluster.len()];
    for p in prepared.iter().take(12) {
        let ticket = cluster.submit(p.input()).expect("submit");
        served[ticket.replica()] += 1;
        ticket.wait().expect("wait");
    }
    assert_eq!(served, vec![3, 3, 3, 3], "12 round-robin submits over 4");
    cluster.shutdown();
}

#[test]
fn consistent_hash_routes_identical_inputs_to_one_replica() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(4)
            .with_route(RoutePolicy::ConsistentHash)
            .with_server(ServerConfig::default().with_queue_depth(64)),
    )
    .expect("cluster start");
    let mut hit = vec![false; cluster.len()];
    for p in &prepared {
        let input = p.input();
        let first = cluster.route(&input);
        // Routing is stateless for hashing: the same input re-routes to the
        // same replica, every time.
        assert_eq!(cluster.route(&input), first, "{}", p.spec.text);
        hit[first] = true;
    }
    assert!(
        hit.iter().filter(|&&h| h).count() >= 2,
        "42 distinct inputs should spread over several replicas: {hit:?}"
    );
    cluster.shutdown();
}

#[test]
fn cluster_deadline_admission_sheds_with_replica_context() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(2)
            .with_route(RoutePolicy::LeastSojourn)
            .with_server(ServerConfig::default().with_queue_depth(64)),
    )
    .expect("cluster start");
    // Warm the service meters so the sojourn estimate is non-zero.
    for p in prepared.iter().take(4) {
        cluster.process_sync(p.input()).expect("warmup");
    }
    assert!(cluster.expected_sojourn() > std::time::Duration::ZERO);
    // An impossible deadline is shed up front by the routed replica, typed
    // with which replica made the call.
    let err = cluster
        .submit_with_deadline(prepared[0].input(), std::time::Duration::from_nanos(1))
        .expect_err("1ns deadline cannot be meetable on a warmed runtime");
    match err {
        ClusterError::Replica { replica, source } => {
            assert!(replica < cluster.len());
            assert!(
                matches!(source, SiriusError::DeadlineUnmeetable { .. }),
                "{source:?}"
            );
        }
        other => panic!("expected a replica-scoped shed, got {other:?}"),
    }
    // A generous deadline is admitted and served.
    let ok = cluster
        .submit_with_deadline(prepared[0].input(), std::time::Duration::from_secs(600))
        .expect("generous deadline admits")
        .wait()
        .expect("serves");
    assert!(!ok.recognized.is_empty());
    cluster.shutdown();
}

#[test]
fn zero_replica_cluster_is_a_typed_error() {
    let sirius = shared_sirius();
    assert_eq!(
        SiriusCluster::start(&sirius, ClusterConfig::new(0)).unwrap_err(),
        ClusterError::NoReplicas
    );
}

#[test]
fn two_servers_in_one_registry_do_not_alias_metrics() {
    // Regression for the single-registry world: two full runtimes wired
    // into one registry under distinct prefixes keep disjoint metrics —
    // queue gauges included — and their snapshots never bleed into each
    // other.
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let registry = sirius_obs::Registry::new();
    let a = SiriusServer::start_with_metrics(
        Arc::clone(&sirius),
        ServerConfig::default(),
        Arc::new(sirius_obs::NoopRecorder),
        ServerMetrics::in_registry(registry.clone(), "replica0."),
    );
    let b = SiriusServer::start_with_metrics(
        Arc::clone(&sirius),
        ServerConfig::default(),
        Arc::new(sirius_obs::NoopRecorder),
        ServerMetrics::in_registry(registry.clone(), "replica1."),
    );
    // 3 queries through a, 1 through b.
    for p in prepared.iter().take(3) {
        a.process_sync(p.input()).expect("a serves");
    }
    b.process_sync(prepared[3].input()).expect("b serves");

    let snap_a = a.metrics_snapshot();
    let snap_b = b.metrics_snapshot();
    for snap in [&snap_a, &snap_b] {
        assert_eq!(snap.counter("replica0.completed"), Some(3));
        assert_eq!(snap.counter("replica1.completed"), Some(1));
        assert_eq!(
            snap.histogram("replica0.sojourn_ns").map(|h| h.count),
            Some(3)
        );
        assert_eq!(
            snap.histogram("replica1.sojourn_ns").map(|h| h.count),
            Some(1)
        );
        // Gauges are registered per prefix too (capacity is config, not
        // traffic, so both exist independently).
        assert_eq!(snap.gauge("replica0.asr.queue_capacity"), Some(16));
        assert_eq!(snap.gauge("replica1.asr.queue_capacity"), Some(16));
        // The unprefixed single-server names must not appear at all.
        assert_eq!(snap.counter("completed"), None);
        assert!(snap.gauge("asr.queue_depth").is_none());
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn empty_input_still_routes_and_serves() {
    // Degenerate input (short silence) exercises the hash key on tiny
    // audio and the merge path on an empty-ish transcript.
    let sirius = shared_sirius();
    let cluster = SiriusCluster::start(
        &sirius,
        ClusterConfig::new(2).with_route(RoutePolicy::ConsistentHash),
    )
    .expect("cluster start");
    let input = SiriusInput {
        audio: vec![0.0; 1600],
        image: None,
    };
    let serial = sirius.process(&input);
    let got = cluster.process_sync(input).expect("serves silence");
    assert_eq!(payload(&got), payload(&serial));
    cluster.shutdown();
}
