//! Deadline-aware admission gates for the staged runtime.
//!
//! 1. A job that expires while queued is dropped at dequeue — its ticket
//!    completes with the typed [`SiriusError::DeadlineUnmeetable`] error and
//!    no stage spends service time on it.
//! 2. A deadline-aware shed at admission carries a sane `retry_after` hint
//!    derived from the backlog the estimator saw.
//! 3. With an effectively infinite SLO the deadline-aware policy degrades
//!    exactly to shed-on-full: only `Overloaded` rejections, no expiries
//!    (and the near-`Duration::MAX` deadline arithmetic does not panic).

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusConfig};
use sirius::prepare_input_set;
use sirius_server::{ServerConfig, SiriusServer, STAGES};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

#[test]
fn expired_jobs_complete_with_the_typed_error_and_consume_no_service() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());

    // The fresh runtime's meters are cold, so the estimator reads zero and
    // a zero deadline is admitted — and has already passed by the time the
    // ASR worker dequeues the job.
    assert_eq!(server.expected_sojourn(), Duration::ZERO, "cold estimator");
    let ticket = server
        .submit_with_deadline(prepared.first().expect("inputs").input(), Duration::ZERO)
        .expect("cold estimator admits a zero deadline");
    match ticket.wait() {
        Err(SiriusError::DeadlineUnmeetable {
            expected,
            deadline,
            retry_after,
        }) => {
            assert_eq!(deadline, Duration::ZERO);
            assert!(expected > Duration::ZERO, "the job did spend time queued");
            assert_eq!(retry_after, expected, "lateness over a zero deadline");
        }
        other => panic!("expired job must complete with DeadlineUnmeetable, got {other:?}"),
    }

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("asr.expired"), Some(1));
    assert_eq!(
        snap.histogram("asr.service_ns").unwrap().count,
        0,
        "no stage service time is ever spent on an expired job"
    );
    assert_eq!(snap.histogram("asr.queue_wait_ns").unwrap().count, 1);
    assert_eq!(snap.counter("admission.accepted"), Some(1));
    assert_eq!(snap.counter("completed"), Some(0));
    assert_eq!(snap.counter("failed"), Some(1));
    assert_eq!(snap.histogram("sojourn_failed_ns").unwrap().count, 1);
    server.shutdown();
}

#[test]
fn deadline_shed_at_admission_carries_a_sane_retry_hint() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 777);
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());

    // Warm the per-stage service meters with real traffic.
    let warmup = 6;
    for p in prepared.iter().take(warmup) {
        server.process_sync(p.input()).expect("query served");
    }
    let expected_now = server.expected_sojourn();
    assert!(
        expected_now > Duration::ZERO,
        "warm meters must make the estimator non-trivial"
    );

    let tiny = Duration::from_nanos(1);
    match server.submit_with_deadline(prepared.first().expect("inputs").input(), tiny) {
        Err(SiriusError::DeadlineUnmeetable {
            expected,
            deadline,
            retry_after,
        }) => {
            assert_eq!(deadline, tiny);
            assert!(expected > deadline);
            assert_eq!(retry_after, expected - deadline, "drain-rate hint");
            assert!(retry_after > Duration::ZERO && retry_after <= expected);
        }
        Err(other) => panic!("a 1ns deadline must be shed on a warm runtime, got {other}"),
        Ok(_) => panic!("a 1ns deadline must be shed on a warm runtime, got an admit"),
    }

    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("admission.shed_deadline"), Some(1));
    assert_eq!(snap.counter("admission.accepted"), Some(warmup as u64));
    assert_eq!(snap.counter("admission.shed"), Some(0));
    // The estimator's inputs are all exported: EWMA meters fed by the warm
    // traffic, and in-flight gauges back to zero on an idle runtime.
    assert!(snap.meter("asr.service_ewma_ns").unwrap().mean > 0.0);
    for stage in STAGES {
        assert_eq!(
            snap.gauge(&format!("{stage}.in_flight")),
            Some(0),
            "{stage}"
        );
    }
    server.shutdown();
}

#[test]
fn infinite_slo_degrades_to_shed_on_full() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 31415);

    // Same depth-1 topology as the shed-on-full burst gate in
    // `concurrency.rs`; the only change is the submit entry point.
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::default().with_queue_depth(1),
    );
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for _ in 0..3 {
        for p in prepared.iter() {
            match server.submit_with_deadline(p.input(), Duration::MAX) {
                Ok(ticket) => accepted.push(ticket),
                Err(SiriusError::Overloaded { stage }) => {
                    assert_eq!(stage, "asr", "shedding happens at admission");
                    shed += 1;
                }
                Err(other) => {
                    panic!("an infinite SLO must only ever shed on a full queue: {other}")
                }
            }
        }
    }
    assert!(shed > 0, "depth-1 queues must shed under a burst");
    assert!(!accepted.is_empty(), "an idle server must accept work");
    for ticket in accepted {
        ticket
            .wait()
            .expect("no admitted query expires under an infinite SLO");
    }
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("admission.shed_deadline"), Some(0));
    assert_eq!(snap.counter("admission.shed"), Some(shed));
    for stage in STAGES {
        assert_eq!(
            snap.counter(&format!("{stage}.expired")),
            Some(0),
            "{stage}"
        );
    }
    server.shutdown();
}
