//! Equivalence and telemetry gates for the streaming ASR serving path.
//!
//! 1. **Bit-identity**: the streaming server's answers — with and without
//!    speculative downstream pipelining, for both acoustic models, with
//!    and without cross-query batching — must match the serial pipeline's
//!    query for query. The streaming recognizer's final hypothesis equals
//!    batch recognition by construction, and speculative payloads are only
//!    reused when they ran on exactly the final hypothesis, so no
//!    combination may move a single bit.
//! 2. **Degenerate audio**: empty and non-finite audio must produce the
//!    serial pipeline's exact response (the streaming stage falls back to
//!    the batch ASR stage), never a typed streaming error the serial path
//!    would not surface.
//! 3. **Telemetry**: a streaming run emits partial-commit counters and
//!    latency histograms, and they reach the Prometheus export.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusResponse};
use sirius::prepare_input_set;
use sirius_server::{BatchPolicy, ServerConfig, SiriusServer, StreamPolicy, Ticket};
use sirius_speech::asr::AcousticModelKind;

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

/// Everything the client can observe about an answer (timings excluded —
/// wall-clock is allowed to differ, the bits are not).
fn payload(r: &SiriusResponse) -> (String, String, Option<String>) {
    (
        r.recognized.clone(),
        format!("{:?}", r.outcome),
        r.matched_venue.clone(),
    )
}

/// The streaming server must answer the full 42-query input set with
/// exactly the serial pipeline's bits: GMM with speculation on and off,
/// and DNN with the batch collector underneath the streaming recognizer.
#[test]
fn streaming_serving_is_bit_identical_to_serial() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);

    let cases: [(AcousticModelKind, bool, BatchPolicy, usize); 4] = [
        (AcousticModelKind::Gmm, false, BatchPolicy::default(), 1600),
        (AcousticModelKind::Gmm, true, BatchPolicy::default(), 1600),
        (AcousticModelKind::Gmm, true, BatchPolicy::default(), 320),
        (
            AcousticModelKind::Dnn,
            true,
            BatchPolicy::new(4, Duration::from_millis(1)),
            1600,
        ),
    ];
    for (kind, speculate, batch, chunk_samples) in cases {
        let serial: Vec<_> = prepared
            .iter()
            .map(|p| payload(&sirius.process_with(&p.input(), kind)))
            .collect();
        let mut stream = StreamPolicy::new(Duration::from_nanos(
            (chunk_samples as u64 * 1_000_000_000) / 16_000,
        ));
        if speculate {
            stream = stream.with_speculation();
        }
        let mut config = ServerConfig::with_workers(4)
            .with_queue_depth(prepared.len().max(16))
            .with_batch_policy(batch)
            .with_stream_policy(stream);
        config.acoustic = kind;
        let server = SiriusServer::start(Arc::clone(&sirius), config);

        let tickets: Vec<Ticket> = prepared
            .iter()
            .map(|p| server.submit(p.input()).expect("deep queue admits all"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let response = t.wait().expect("query served");
            assert_eq!(
                payload(&response),
                serial[i],
                "query {i} diverged ({kind}, speculate={speculate}, chunk={chunk_samples})"
            );
        }

        let snap = server.metrics_snapshot();
        assert!(
            snap.counter("asr.partials_emitted").unwrap() > 0,
            "streaming run emitted no partials ({kind})"
        );
        if speculate {
            let dispatched = snap.counter("asr.spec_dispatched").unwrap();
            let hits = snap.counter("asr.spec_hit").unwrap();
            let misses = snap.counter("asr.spec_miss").unwrap();
            assert!(dispatched > 0, "speculation never dispatched ({kind})");
            assert!(
                hits + misses <= prepared.len() as u64,
                "at most one reconcile per query"
            );
            // GMM beams converge through trailing silence, so most
            // hypotheses commit in full mid-stream and confirm; the DNN
            // beam keeps more alternatives alive to the last frame, so
            // its reconciles are expected to miss.
            if kind == AcousticModelKind::Gmm {
                assert!(
                    hits > 0,
                    "no speculation ever confirmed despite full mid-stream \
                     commits ({kind})"
                );
            }
        } else {
            assert_eq!(snap.counter("asr.spec_dispatched"), Some(0));
        }
        server.shutdown();
    }
}

/// Degenerate audio — empty, or containing NaN — must produce exactly the
/// serial pipeline's response through the streaming server.
#[test]
fn degenerate_audio_matches_serial_pipeline() {
    let sirius = shared_sirius();
    let mut nan_audio = vec![0.0f32; 16_000];
    nan_audio[8_000] = f32::NAN;
    let inputs = [
        SiriusInput {
            audio: Vec::new(),
            image: None,
        },
        SiriusInput {
            audio: nan_audio,
            image: None,
        },
        SiriusInput {
            audio: vec![0.0; 100],
            image: None,
        },
    ];
    let config = ServerConfig::with_workers(1)
        .with_stream_policy(StreamPolicy::new(Duration::from_millis(100)).with_speculation());
    let server = SiriusServer::start(Arc::clone(&sirius), config);
    for input in inputs {
        let serial = sirius.process_with(&input, AcousticModelKind::Gmm);
        let served = server
            .process_sync(input)
            .expect("degenerate audio is served, not errored");
        assert_eq!(payload(&served), payload(&serial));
    }
    server.shutdown();
}

/// Streaming telemetry reaches the snapshot and the Prometheus export.
#[test]
fn streaming_metrics_are_exported() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 99);
    let config = ServerConfig::with_workers(2)
        .with_queue_depth(64)
        .with_stream_policy(StreamPolicy::new(Duration::from_millis(100)).with_speculation());
    let server = SiriusServer::start(Arc::clone(&sirius), config);
    for p in prepared.iter().take(8) {
        server.process_sync(p.input()).expect("served");
    }
    let snap = server.metrics_snapshot();
    assert!(snap.counter("asr.partials_emitted").unwrap() > 0);
    let commits = snap.histogram("asr.commit_latency_ns").unwrap();
    assert_eq!(
        commits.count,
        snap.counter("asr.partials_emitted").unwrap(),
        "every emitted partial records one commit latency"
    );
    let first = snap.histogram("e2e.first_partial_ns").unwrap();
    assert!(
        first.count > 0 && first.count <= 8,
        "one first-partial per query at most"
    );
    let prom = snap.to_prometheus();
    for name in [
        "asr_partials_emitted",
        "asr_commit_latency_ns",
        "e2e_first_partial_ns",
        "asr_spec_dispatched",
        "asr_spec_hit",
        "asr_spec_miss",
    ] {
        assert!(prom.contains(name), "{name} missing from Prometheus export");
    }
    server.shutdown();
}
