//! Concurrent-serving gates for the staged runtime.
//!
//! 1. The staged path must produce per-query outputs identical to the
//!    serial monolithic `Sirius::process` — for the full 42-query input
//!    set, and while N client threads hammer the runtime concurrently.
//! 2. Admission control must *reject* (typed `Overloaded`), never deadlock,
//!    when the bounded queues fill.
//! 3. Shutdown must drain every accepted query.

use std::sync::{Arc, OnceLock};

use sirius::error::SiriusError;
use sirius::pipeline::{Sirius, SiriusConfig, SiriusInput, SiriusOutcome, SiriusResponse};
use sirius::prepare_input_set;
use sirius_server::{ServerConfig, SiriusServer};

static SIRIUS: OnceLock<Arc<Sirius>> = OnceLock::new();

/// Building Sirius trains every model (seconds); share one instance across
/// the whole test binary.
fn shared_sirius() -> Arc<Sirius> {
    Arc::clone(SIRIUS.get_or_init(|| Arc::new(Sirius::build(SiriusConfig::default()))))
}

/// The fields that must match bit-for-bit (timing is wall-clock and always
/// differs between runs).
fn payload(r: &SiriusResponse) -> (String, SiriusOutcome, Option<String>) {
    (
        r.recognized.clone(),
        r.outcome.clone(),
        r.matched_venue.clone(),
    )
}

#[test]
fn staged_outputs_identical_for_full_input_set() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 4242);
    assert_eq!(prepared.len(), 42);
    let serial: Vec<_> = prepared
        .iter()
        .map(|p| sirius.process(&p.input()))
        .collect();

    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());
    for (p, expect) in prepared.iter().zip(&serial) {
        let staged = server
            .process_sync(p.input())
            .unwrap_or_else(|e| panic!("{} failed: {e}", p.spec.text));
        assert_eq!(payload(&staged), payload(expect), "{}", p.spec.text);
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_match_serial_pipeline() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 777);
    let serial: Vec<_> = prepared
        .iter()
        .map(|p| sirius.process(&p.input()))
        .collect();

    // 4 heavy-stage workers, queues deep enough that nothing is shed: this
    // test is about output equivalence under real interleaving.
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::with_workers(4).with_queue_depth(256),
    );
    const CLIENTS: usize = 4;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let prepared = &prepared;
            let serial = &serial;
            scope.spawn(move || {
                // Each client walks the full set from a different offset so
                // all stages see mixed query kinds at once.
                for i in 0..prepared.len() {
                    let at = (i + client * 11) % prepared.len();
                    let p = &prepared[at];
                    let staged = server
                        .process_sync(p.input())
                        .unwrap_or_else(|e| panic!("client {client}: {} failed: {e}", p.spec.text));
                    assert_eq!(
                        payload(&staged),
                        payload(&serial[at]),
                        "client {client}: {}",
                        p.spec.text
                    );
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn admission_control_sheds_rather_than_deadlocks() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 31415);

    // One worker everywhere and depth-1 queues: a burst must overflow.
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::default().with_queue_depth(1),
    );
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    // Submit a burst far faster than one ASR worker can drain it.
    for _ in 0..3 {
        for p in prepared.iter() {
            match server.submit(p.input()) {
                Ok(ticket) => accepted.push(ticket),
                Err(SiriusError::Overloaded { stage }) => {
                    assert_eq!(stage, "asr", "shedding happens at admission");
                    shed += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
    assert!(shed > 0, "depth-1 queues must shed under a 126-query burst");
    assert!(!accepted.is_empty(), "an idle server must accept work");
    // Every accepted query completes (no deadlock, no lost tickets).
    for ticket in accepted {
        ticket.wait().expect("accepted queries complete");
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_queries() {
    let sirius = shared_sirius();
    let prepared = prepare_input_set(&sirius, 555);
    let server = SiriusServer::start(
        Arc::clone(&sirius),
        ServerConfig::default().with_queue_depth(64),
    );
    let tickets: Vec<_> = prepared
        .iter()
        .take(12)
        .map(|p| server.submit(p.input()).expect("queue deep enough"))
        .collect();
    // Shutdown begins while queries are still queued; all must complete.
    server.shutdown();
    for ticket in tickets {
        ticket.wait().expect("accepted queries survive shutdown");
    }
}

#[test]
fn degenerate_inputs_are_served_not_panicked_on() {
    let sirius = shared_sirius();
    let server = SiriusServer::start(Arc::clone(&sirius), ServerConfig::default());
    // Empty audio: the no-speech path must flow through every stage.
    let empty = SiriusInput {
        audio: Vec::new(),
        image: None,
    };
    let response = server.process_sync(empty).expect("empty audio is served");
    assert_eq!(response.recognized, "");
    // Non-finite samples: garbage in, a typed response (not a dead worker)
    // out. The next query must still be served by the same workers.
    let garbage = SiriusInput {
        audio: vec![f32::NAN; 1600],
        image: None,
    };
    let _ = server.process_sync(garbage).expect("NaN audio is served");
    let again = SiriusInput {
        audio: Vec::new(),
        image: None,
    };
    assert!(server.process_sync(again).is_ok(), "workers survived");
    server.shutdown();
}
