//! Roofline analysis of the Sirius Suite kernels across platforms.
//!
//! A roofline model bounds a kernel's attainable throughput by
//! `min(peak_flops, arithmetic_intensity × memory_bandwidth)`. The paper's
//! acceleration results (Table 5) are consistent with this first-order
//! view: high-intensity kernels (GMM, DNN, FD) ride the compute roof of the
//! GPU, while the FPGA's custom datapaths escape the instruction-issue roof
//! entirely. This module makes that analysis explicit and testable.

use serde::{Deserialize, Serialize};

use crate::platform::{spec, PlatformKind};

/// Arithmetic characteristics of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelArithmetic {
    /// Kernel name (matching `sirius-suite`).
    pub name: &'static str,
    /// Arithmetic intensity in FLOPs per byte of memory traffic.
    pub intensity_flops_per_byte: f64,
}

/// Estimated arithmetic intensities for the seven kernels.
///
/// GMM/DNN/FD stream large parameter matrices but reuse each frame many
/// times (moderate-to-high intensity); the NLP kernels are byte-oriented
/// with little arithmetic (low intensity); FE is stencil-like.
pub fn kernel_arithmetic() -> Vec<KernelArithmetic> {
    vec![
        KernelArithmetic {
            name: "GMM",
            intensity_flops_per_byte: 1.5,
        },
        KernelArithmetic {
            name: "DNN",
            intensity_flops_per_byte: 2.0,
        },
        KernelArithmetic {
            name: "Stemmer",
            intensity_flops_per_byte: 0.1,
        },
        KernelArithmetic {
            name: "Regex",
            intensity_flops_per_byte: 0.15,
        },
        KernelArithmetic {
            name: "CRF",
            intensity_flops_per_byte: 0.5,
        },
        KernelArithmetic {
            name: "FE",
            intensity_flops_per_byte: 0.8,
        },
        KernelArithmetic {
            name: "FD",
            intensity_flops_per_byte: 1.2,
        },
    ]
}

/// Which roof binds a kernel on a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by peak arithmetic throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
}

/// One point under a platform's roofline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Platform evaluated.
    pub platform: PlatformKind,
    /// Kernel name.
    pub kernel: &'static str,
    /// Attainable GFLOP/s under the roofline.
    pub attainable_gflops: f64,
    /// The binding roof.
    pub bound: Bound,
}

/// The ridge point of a platform: the arithmetic intensity (FLOPs/byte) at
/// which the compute and memory roofs meet.
pub fn ridge_point(platform: PlatformKind) -> f64 {
    let s = spec(platform);
    s.peak_tflops * 1e3 / s.memory_bw_gbs
}

/// Evaluates a kernel under a platform's roofline.
pub fn attainable(platform: PlatformKind, kernel: &KernelArithmetic) -> RooflinePoint {
    let s = spec(platform);
    let compute_roof = s.peak_tflops * 1e3; // GFLOP/s
    let memory_roof = kernel.intensity_flops_per_byte * s.memory_bw_gbs;
    let (attainable_gflops, bound) = if memory_roof < compute_roof {
        (memory_roof, Bound::Memory)
    } else {
        (compute_roof, Bound::Compute)
    };
    RooflinePoint {
        platform,
        kernel: kernel.name,
        attainable_gflops,
        bound,
    }
}

/// Full roofline sweep: every kernel on every platform.
pub fn sweep() -> Vec<RooflinePoint> {
    let kernels = kernel_arithmetic();
    PlatformKind::ALL
        .iter()
        .flat_map(|&p| kernels.iter().map(move |k| attainable(p, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sirius_kernel_is_memory_bound_on_every_platform() {
        // With intensities ≤ 2 FLOP/byte and ridge points ≥ 6 FLOP/byte on
        // every platform except the FPGA, these kernels sit left of the
        // ridge — which is exactly why data layout (coalescing) mattered so
        // much in the paper's GPU ports.
        for point in sweep() {
            if point.platform == PlatformKind::Fpga {
                continue; // the FPGA's DRAM roof is uniquely low
            }
            assert_eq!(point.bound, Bound::Memory, "{point:?}");
        }
    }

    #[test]
    fn gpu_attainable_exceeds_cpu_for_every_kernel() {
        for k in kernel_arithmetic() {
            let cpu = attainable(PlatformKind::Multicore, &k).attainable_gflops;
            let gpu = attainable(PlatformKind::Gpu, &k).attainable_gflops;
            assert!(gpu > cpu * 5.0, "{}: gpu {gpu} cpu {cpu}", k.name);
        }
    }

    #[test]
    fn ridge_points_match_specs() {
        // CPU: 500 GFLOPS / 25.6 GB/s ≈ 19.5 FLOP/byte.
        assert!((ridge_point(PlatformKind::Multicore) - 19.53).abs() < 0.1);
        // GPU: 3200 / 224 ≈ 14.3.
        assert!((ridge_point(PlatformKind::Gpu) - 14.29).abs() < 0.1);
        // FPGA: 500 / 6.4 ≈ 78 — starved for DRAM bandwidth, which is why
        // its wins come from on-fabric data reuse, not streaming.
        assert!(ridge_point(PlatformKind::Fpga) > 70.0);
    }

    #[test]
    fn intensity_orders_attainable_throughput() {
        let ks = kernel_arithmetic();
        let dnn = ks.iter().find(|k| k.name == "DNN").expect("DNN");
        let stem = ks.iter().find(|k| k.name == "Stemmer").expect("Stemmer");
        let a = attainable(PlatformKind::Gpu, dnn).attainable_gflops;
        let b = attainable(PlatformKind::Gpu, stem).attainable_gflops;
        assert!(a > b * 10.0);
    }
}
