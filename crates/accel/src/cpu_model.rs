//! First-order CPU pipeline bottleneck model (paper Figure 10).
//!
//! The paper uses Intel VTune's top-down methodology to attribute each
//! kernel's pipeline slots to front-end, bad-speculation and back-end
//! stalls, concluding that "even with all stall cycles removed ... the
//! maximum speed-up is bound by around 3×". We reproduce that analysis with
//! a simple issue model over per-kernel operation mixes: a 4-wide core where
//! branch mispredicts and cache misses insert stall cycles.

use serde::{Deserialize, Serialize};

/// Issue width of the modeled core (Haswell: 4 µops/cycle sustained).
pub const ISSUE_WIDTH: f64 = 4.0;
/// Branch mispredict penalty in cycles.
pub const MISPREDICT_PENALTY: f64 = 15.0;
/// L1-miss (L2 hit) penalty in cycles.
pub const L2_PENALTY: f64 = 12.0;
/// Last-level-cache miss (memory) penalty in cycles.
pub const MEMORY_PENALTY: f64 = 180.0;

/// Dynamic operation mix of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of instructions that are branches.
    pub branch_ratio: f64,
    /// Mispredict rate among branches.
    pub mispredict_rate: f64,
    /// Fraction of instructions that access memory.
    pub mem_ratio: f64,
    /// L1 miss rate among memory accesses.
    pub l1_miss_rate: f64,
    /// LLC miss rate among memory accesses.
    pub llc_miss_rate: f64,
    /// Exploitable instruction-level parallelism (independent µops/cycle).
    pub ilp: f64,
    /// Front-end supply limit in µops/cycle (i-cache pressure, decode).
    pub frontend_limit: f64,
}

/// Top-down pipeline-slot breakdown, fractions summing to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bottleneck {
    /// Achieved instructions per cycle.
    pub ipc: f64,
    /// Useful (retiring) slot fraction.
    pub retiring: f64,
    /// Front-end bound fraction.
    pub frontend: f64,
    /// Bad-speculation fraction.
    pub bad_speculation: f64,
    /// Back-end (memory/core) bound fraction.
    pub backend: f64,
}

impl Bottleneck {
    /// Speedup if every stall were removed (the paper's ≈3× bound argument):
    /// ideal IPC limited only by ILP and issue width.
    pub fn stall_free_speedup(&self, mix: &OpMix) -> f64 {
        let ideal_ipc = mix.ilp.min(ISSUE_WIDTH);
        ideal_ipc / self.ipc
    }
}

/// Analyzes an operation mix under the issue model.
pub fn analyze(mix: &OpMix) -> Bottleneck {
    // Cycles per instruction contributed by each mechanism.
    let base_cpi = 1.0 / mix.ilp.min(ISSUE_WIDTH);
    let frontend_cpi = (1.0 / mix.frontend_limit - 1.0 / ISSUE_WIDTH).max(0.0);
    let spec_cpi = mix.branch_ratio * mix.mispredict_rate * MISPREDICT_PENALTY;
    let backend_cpi =
        mix.mem_ratio * (mix.l1_miss_rate * L2_PENALTY + mix.llc_miss_rate * MEMORY_PENALTY);
    let total_cpi = base_cpi + frontend_cpi + spec_cpi + backend_cpi;
    let ipc = 1.0 / total_cpi;
    // Slot accounting: retiring uses ipc/WIDTH of the slots; stalls split
    // the rest proportionally to their CPI contributions.
    let retiring = ipc / ISSUE_WIDTH;
    let stall_total = frontend_cpi + spec_cpi + backend_cpi + (base_cpi - 1.0 / ISSUE_WIDTH);
    let stall_share = 1.0 - retiring;
    let share = |cpi: f64| {
        if stall_total <= 0.0 {
            0.0
        } else {
            stall_share * cpi / stall_total
        }
    };
    Bottleneck {
        ipc,
        retiring,
        frontend: share(frontend_cpi),
        bad_speculation: share(spec_cpi),
        backend: share(backend_cpi + (base_cpi - 1.0 / ISSUE_WIDTH)),
    }
}

/// Calibrated operation mixes for the seven Sirius Suite kernels, chosen to
/// reproduce Figure 10's findings: DNN and Regex run efficiently (IPC close
/// to 2), the branchy NLP kernels suffer bad speculation, GMM/FE are
/// backend-bound, and no kernel gains more than ≈4× from removing stalls.
pub fn kernel_mixes() -> Vec<(&'static str, OpMix)> {
    vec![
        (
            "GMM",
            OpMix {
                branch_ratio: 0.05,
                mispredict_rate: 0.02,
                mem_ratio: 0.45,
                l1_miss_rate: 0.08,
                llc_miss_rate: 0.004,
                ilp: 2.6,
                frontend_limit: 4.0,
            },
        ),
        (
            "DNN",
            OpMix {
                branch_ratio: 0.03,
                mispredict_rate: 0.01,
                mem_ratio: 0.40,
                l1_miss_rate: 0.03,
                llc_miss_rate: 0.001,
                ilp: 3.2,
                frontend_limit: 4.0,
            },
        ),
        (
            "Stemmer",
            OpMix {
                branch_ratio: 0.28,
                mispredict_rate: 0.10,
                mem_ratio: 0.35,
                l1_miss_rate: 0.04,
                llc_miss_rate: 0.002,
                ilp: 1.8,
                frontend_limit: 3.0,
            },
        ),
        (
            "Regex",
            OpMix {
                branch_ratio: 0.25,
                mispredict_rate: 0.025,
                mem_ratio: 0.30,
                l1_miss_rate: 0.02,
                llc_miss_rate: 0.001,
                ilp: 2.8,
                frontend_limit: 4.0,
            },
        ),
        (
            "CRF",
            OpMix {
                branch_ratio: 0.15,
                mispredict_rate: 0.06,
                mem_ratio: 0.40,
                l1_miss_rate: 0.07,
                llc_miss_rate: 0.003,
                ilp: 2.0,
                frontend_limit: 3.5,
            },
        ),
        (
            "FE",
            OpMix {
                branch_ratio: 0.10,
                mispredict_rate: 0.04,
                mem_ratio: 0.50,
                l1_miss_rate: 0.09,
                llc_miss_rate: 0.004,
                ilp: 2.4,
                frontend_limit: 4.0,
            },
        ),
        (
            "FD",
            OpMix {
                branch_ratio: 0.08,
                mispredict_rate: 0.03,
                mem_ratio: 0.42,
                l1_miss_rate: 0.05,
                llc_miss_rate: 0.002,
                ilp: 2.8,
                frontend_limit: 4.0,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        for (name, mix) in kernel_mixes() {
            let b = analyze(&mix);
            let sum = b.retiring + b.frontend + b.bad_speculation + b.backend;
            assert!((sum - 1.0).abs() < 1e-9, "{name}: {sum}");
            assert!(b.ipc > 0.0 && b.ipc <= ISSUE_WIDTH);
        }
    }

    #[test]
    fn dnn_and_regex_are_most_efficient() {
        // Paper Figure 10: "A few of the service components including DNN
        // and Regex execute relatively efficiently on Xeon cores."
        let mixes = kernel_mixes();
        let ipc =
            |name: &str| analyze(&mixes.iter().find(|(n, _)| *n == name).expect("kernel").1).ipc;
        let dnn = ipc("DNN");
        let regex = ipc("Regex");
        for name in ["GMM", "Stemmer", "CRF", "FE"] {
            assert!(dnn > ipc(name), "DNN vs {name}");
        }
        assert!(regex > ipc("Stemmer") && regex > ipc("CRF"));
    }

    #[test]
    fn stall_free_speedup_is_bounded_near_3x() {
        // Paper: "even with all stall cycles removed the maximum speed-up is
        // bound by around 3×".
        for (name, mix) in kernel_mixes() {
            let b = analyze(&mix);
            let s = b.stall_free_speedup(&mix);
            assert!(
                (1.0..=4.0).contains(&s),
                "{name}: stall-free speedup {s:.2}"
            );
        }
    }

    #[test]
    fn stemmer_is_speculation_heavy() {
        let mixes = kernel_mixes();
        let stem = analyze(
            &mixes
                .iter()
                .find(|(n, _)| *n == "Stemmer")
                .expect("kernel")
                .1,
        );
        let dnn = analyze(&mixes.iter().find(|(n, _)| *n == "DNN").expect("kernel").1);
        assert!(stem.bad_speculation > dnn.bad_speculation * 3.0);
    }

    #[test]
    fn perfect_mix_has_no_stalls() {
        let mix = OpMix {
            branch_ratio: 0.0,
            mispredict_rate: 0.0,
            mem_ratio: 0.0,
            l1_miss_rate: 0.0,
            llc_miss_rate: 0.0,
            ilp: 4.0,
            frontend_limit: 4.0,
        };
        let b = analyze(&mix);
        assert!((b.ipc - 4.0).abs() < 1e-9);
        assert!((b.retiring - 1.0).abs() < 1e-9);
    }
}
