//! Service-level latency composition (paper Figure 14).
//!
//! A Sirius service is a weighted mix of Sirius Suite kernels plus a
//! residual (HMM search for ASR, orchestration otherwise). Given per-kernel
//! speedups from [`crate::model`], the service latency on a platform follows
//! from the cycle shares: `S_service = 1 / Σ_c (share_c / S_c)`.
//!
//! The residual HMM search is assumed to gain 3.7× on accelerators,
//! following the paper ("we assume a 3.7× speedup for the HMM \[35\] as a
//! reasonable lower bound", Section 4.4.1).

use serde::{Deserialize, Serialize};

use crate::model::{profile, KernelProfile};
use crate::platform::PlatformKind;

/// The four service configurations of paper Figures 14–19.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Speech recognition with GMM scoring (Sphinx path).
    AsrGmm,
    /// Speech recognition with DNN scoring (Kaldi/RASR path).
    AsrDnn,
    /// Question answering (OpenEphyra NLP components).
    Qa,
    /// Image matching.
    Imm,
}

impl ServiceKind {
    /// All services in the paper's figure order.
    pub const ALL: [ServiceKind; 4] = [
        ServiceKind::AsrGmm,
        ServiceKind::AsrDnn,
        ServiceKind::Qa,
        ServiceKind::Imm,
    ];
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceKind::AsrGmm => f.write_str("ASR (GMM)"),
            ServiceKind::AsrDnn => f.write_str("ASR (DNN)"),
            ServiceKind::Qa => f.write_str("QA"),
            ServiceKind::Imm => f.write_str("IMM"),
        }
    }
}

/// Speedup assumed for the HMM search residual on accelerators [paper 35].
pub const HMM_ACCEL_SPEEDUP: f64 = 3.7;

/// One component of a service: a kernel (by Sirius Suite name) or the
/// residual, with its share of the service's single-core cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Sirius Suite kernel name, or "HMM" / "other" for residuals.
    pub name: &'static str,
    /// Fraction of the service's baseline cycles (shares sum to 1).
    pub share: f64,
}

/// Cycle-share decomposition of a service (paper Figure 9).
pub fn components(service: ServiceKind) -> Vec<Component> {
    match service {
        ServiceKind::AsrGmm => vec![
            Component {
                name: "GMM",
                share: 0.85,
            },
            Component {
                name: "HMM",
                share: 0.15,
            },
        ],
        ServiceKind::AsrDnn => vec![
            Component {
                name: "DNN",
                share: 0.85,
            },
            Component {
                name: "HMM",
                share: 0.15,
            },
        ],
        // The three NLP kernels are 85% of QA cycles (Figure 9); the paper
        // focuses on the NLP components comprising 88% of QA, leaving a
        // small non-NLP residue.
        ServiceKind::Qa => vec![
            Component {
                name: "Stemmer",
                share: 0.378,
            },
            Component {
                name: "Regex",
                share: 0.334,
            },
            Component {
                name: "CRF",
                share: 0.238,
            },
            Component {
                name: "other",
                share: 0.05,
            },
        ],
        // IMM is dominated by FE + FD (Figure 9); the ANN lookup residue is
        // negligible, matching the paper's Figure 16 throughput numbers.
        ServiceKind::Imm => vec![
            Component {
                name: "FE",
                share: 0.61,
            },
            Component {
                name: "FD",
                share: 0.39,
            },
        ],
    }
}

fn component_speedup(name: &str, kind: PlatformKind) -> f64 {
    match name {
        "HMM" => match kind {
            // The CMP port threads the search too, with modest gains.
            PlatformKind::Multicore => 1.8,
            // GPU hosts run the rescoring-style hybrid search a bit above
            // the paper's 3.7x lower bound [62]; Phi/FPGA use the bound.
            PlatformKind::Gpu => 4.2,
            _ => HMM_ACCEL_SPEEDUP,
        },
        "other" => match kind {
            PlatformKind::Multicore => 1.5,
            _ => 1.0,
        },
        kernel => profile(kernel)
            .as_ref()
            .map(|p: &KernelProfile| p.modeled_speedup(kind))
            .unwrap_or(1.0),
    }
}

/// Modeled end-to-end service speedup on a platform (paper Figure 14,
/// expressed as baseline-latency / platform-latency).
pub fn service_speedup(service: ServiceKind, kind: PlatformKind) -> f64 {
    // RWTH RASR's out-of-the-box CMP and GPU ports parallelize the entire
    // framework — HMM search included (Table 5 footnote: "* This includes
    // DNN and HMM combined") — so the whole-service speedup is the kernel
    // number itself on those platforms.
    if service == ServiceKind::AsrDnn && matches!(kind, PlatformKind::Multicore | PlatformKind::Gpu)
    {
        return profile("DNN")
            .expect("DNN profile exists")
            .modeled_speedup(kind);
    }
    let total: f64 = components(service)
        .iter()
        .map(|c| c.share / component_speedup(c.name, kind))
        .sum();
    1.0 / total
}

/// Modeled service latency on a platform, given the measured single-core
/// baseline latency in seconds.
pub fn service_latency(service: ServiceKind, kind: PlatformKind, baseline_secs: f64) -> f64 {
    baseline_secs / service_speedup(service, kind)
}

/// Energy efficiency (performance/W) relative to the multicore platform
/// (paper Figure 15; performance = 1/latency, watts from Table 6).
pub fn perf_per_watt_vs_cmp(service: ServiceKind, kind: PlatformKind) -> f64 {
    let cmp = crate::platform::spec(PlatformKind::Multicore);
    let p = crate::platform::spec(kind);
    let cmp_perf = service_speedup(service, PlatformKind::Multicore);
    let perf = service_speedup(service, kind);
    (perf / p.tdp_watts) / (cmp_perf / cmp.tdp_watts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        for s in ServiceKind::ALL {
            let sum: f64 = components(s).iter().map(|c| c.share).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{s}: {sum}");
        }
    }

    #[test]
    fn fpga_beats_gpu_except_asr_dnn() {
        // Paper 5.1.1: "The FPGA outperforms the GPU for most of the
        // services except ASR (DNN/HMM)."
        for s in ServiceKind::ALL {
            let fpga = service_speedup(s, PlatformKind::Fpga);
            let gpu = service_speedup(s, PlatformKind::Gpu);
            if s == ServiceKind::AsrDnn {
                assert!(gpu > fpga, "{s}: gpu {gpu:.1} <= fpga {fpga:.1}");
            } else {
                assert!(fpga > gpu, "{s}: fpga {fpga:.1} <= gpu {gpu:.1}");
            }
        }
    }

    #[test]
    fn asr_gmm_fpga_speedup_matches_paper_band() {
        // Paper: ASR (GMM/HMM) 4.2 s → 0.19 s on FPGA, a ~22× reduction.
        let s = service_speedup(ServiceKind::AsrGmm, PlatformKind::Fpga);
        assert!((15.0..=30.0).contains(&s), "ASR GMM FPGA speedup {s:.1}");
        let latency = service_latency(ServiceKind::AsrGmm, PlatformKind::Fpga, 4.2);
        assert!((0.1..=0.3).contains(&latency), "latency {latency:.2}s");
    }

    #[test]
    fn qa_gains_are_limited() {
        // Paper Figure 16: "For QA, the throughput improvement across the
        // platforms is generally more limited than other services."
        for kind in [PlatformKind::Gpu, PlatformKind::Fpga] {
            let qa = service_speedup(ServiceKind::Qa, kind);
            let asr = service_speedup(ServiceKind::AsrGmm, kind);
            let imm = service_speedup(ServiceKind::Imm, kind);
            assert!(
                qa < asr && qa < imm,
                "{kind}: qa {qa:.1} asr {asr:.1} imm {imm:.1}"
            );
        }
    }

    #[test]
    fn phi_is_slower_than_threaded_cmp() {
        for s in ServiceKind::ALL {
            let phi = service_speedup(s, PlatformKind::Phi);
            let cmp = service_speedup(s, PlatformKind::Multicore);
            if s == ServiceKind::AsrDnn {
                continue; // RASR's Phi port is competitive on DNN.
            }
            assert!(phi < cmp * 1.6, "{s}: phi {phi:.1} vs cmp {cmp:.1}");
        }
    }

    #[test]
    fn fpga_has_best_perf_per_watt() {
        // Paper Figure 15: FPGA exceeds every other platform by a margin,
        // >12× over the multicore for most services.
        for s in ServiceKind::ALL {
            let fpga = perf_per_watt_vs_cmp(s, PlatformKind::Fpga);
            for other in [PlatformKind::Gpu, PlatformKind::Phi] {
                assert!(fpga > perf_per_watt_vs_cmp(s, other), "{s} vs {other}");
            }
        }
        assert!(perf_per_watt_vs_cmp(ServiceKind::AsrGmm, PlatformKind::Fpga) > 12.0);
    }

    #[test]
    fn gpu_perf_per_watt_below_baseline_for_qa() {
        // Paper: the GPU's perf/W "is worse than the baseline for QA".
        let qa = perf_per_watt_vs_cmp(ServiceKind::Qa, PlatformKind::Gpu);
        assert!(qa < 1.0, "QA GPU perf/W {qa:.2}");
    }
}
