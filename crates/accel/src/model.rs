//! Analytic accelerator performance model.
//!
//! We cannot execute CUDA, Phi or RTL in this reproduction, so GPU, Phi and
//! FPGA speedups are *modeled* from first-order platform parameters (paper
//! Table 3) and per-kernel achieved-utilization parameters calibrated
//! against the paper's measured Table 5 (DESIGN.md documents this
//! substitution; the multicore port in `sirius-suite` is measured for real).
//!
//! Model structure, per kernel `k` and platform `p`:
//!
//! * **CMP** (threads): Amdahl's law over the parallel fraction `f_k` with
//!   `4 × yield_k` effective threads (SMT and framework-level overlap give
//!   yields above 1).
//! * **GPU / Phi** (offload): `S = R_p × B_k × U_{k,p} / (1 + x_p)` where
//!   `R_p` is the platform:single-core peak-FLOPS ratio from Table 3,
//!   `B_k ≈ 8` is how far the scalar baseline sits below one core's peak,
//!   `U_{k,p} ∈ (0, 1]` is the achieved fraction of platform peak
//!   (coalescing, divergence, vector friendliness), and `x_p` is the
//!   host-device transfer overhead.
//! * **FPGA** (custom datapath): `S = s_k × n_k / (1 + x_p)` where `s_k` is
//!   the single-core pipeline speedup of the custom datapath and `n_k` is
//!   the number of cores that fit the fabric (the paper instantiates
//!   multiple cores to fill the FPGA, e.g. 3 GMM cores → 169×).

use serde::{Deserialize, Serialize};

use crate::platform::{spec, PlatformKind};

/// Single-core peak TFLOPS of the baseline Haswell (0.5 TFLOPS / 4 cores).
pub const CORE_PEAK_TFLOPS: f64 = 0.125;

/// Host-device transfer overhead per platform (fraction of kernel time).
pub fn transfer_overhead(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::Multicore => 0.0,
        PlatformKind::Gpu => 0.05,
        PlatformKind::Phi => 0.08,
        PlatformKind::Fpga => 0.02,
    }
}

/// Calibrated model parameters for one Sirius Suite kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name, matching `sirius-suite` ("GMM", "DNN", ...).
    pub name: &'static str,
    /// Parallelizable fraction of the kernel (Amdahl, CMP port).
    pub parallel_fraction: f64,
    /// Effective-thread yield on the CMP (1.0 = physical cores only;
    /// >1 captures SMT or framework-level overlap).
    pub cmp_thread_yield: f64,
    /// How far the scalar baseline sits below single-core peak FLOPS.
    pub baseline_inefficiency: f64,
    /// Achieved fraction of GPU peak (coalescing, divergence).
    pub gpu_utilization: f64,
    /// Achieved fraction of Phi peak (auto-vectorization quality).
    pub phi_utilization: f64,
    /// Pipeline speedup of one custom FPGA core.
    pub fpga_core_speedup: f64,
    /// FPGA cores instantiated to fill the fabric.
    pub fpga_cores: f64,
}

impl KernelProfile {
    /// Modeled speedup of this kernel on `kind`, relative to the
    /// single-threaded baseline.
    pub fn modeled_speedup(&self, kind: PlatformKind) -> f64 {
        let x = transfer_overhead(kind);
        match kind {
            PlatformKind::Multicore => {
                let threads = 4.0 * self.cmp_thread_yield;
                let f = self.parallel_fraction;
                1.0 / ((1.0 - f) + f / threads)
            }
            PlatformKind::Gpu => {
                let ratio = spec(kind).peak_tflops / CORE_PEAK_TFLOPS;
                ratio * self.baseline_inefficiency * self.gpu_utilization / (1.0 + x)
            }
            PlatformKind::Phi => {
                let ratio = spec(kind).peak_tflops / CORE_PEAK_TFLOPS;
                ratio * self.baseline_inefficiency * self.phi_utilization / (1.0 + x)
            }
            PlatformKind::Fpga => self.fpga_core_speedup * self.fpga_cores / (1.0 + x),
        }
    }
}

/// The calibrated profiles for the seven Sirius Suite kernels, in Table 4
/// order. Parameter values are chosen so the modeled Table 5 lands within
/// tolerance of the paper's measured/cited Table 5 (see `paper::TABLE5`).
pub fn kernel_profiles() -> Vec<KernelProfile> {
    vec![
        KernelProfile {
            name: "GMM",
            parallel_fraction: 0.952,
            cmp_thread_yield: 1.0,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.359,
            phi_utilization: 0.0088,
            fpga_core_speedup: 57.5,
            fpga_cores: 3.0,
        },
        KernelProfile {
            name: "DNN",
            parallel_fraction: 0.952,
            cmp_thread_yield: 2.0,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.280,
            phi_utilization: 0.090,
            fpga_core_speedup: 37.6,
            fpga_cores: 3.0,
        },
        KernelProfile {
            name: "Stemmer",
            parallel_fraction: 1.0,
            cmp_thread_yield: 1.0,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.0318,
            phi_utilization: 0.045,
            fpga_core_speedup: 6.12,
            fpga_cores: 5.0,
        },
        KernelProfile {
            name: "Regex",
            parallel_fraction: 0.991,
            cmp_thread_yield: 1.0,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.246,
            phi_utilization: 0.0088,
            fpga_core_speedup: 57.2,
            fpga_cores: 3.0,
        },
        KernelProfile {
            name: "CRF",
            parallel_fraction: 0.973,
            cmp_thread_yield: 1.0,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.0226,
            phi_utilization: 0.0378,
            fpga_core_speedup: 6.94,
            fpga_cores: 1.0,
        },
        KernelProfile {
            name: "FE",
            parallel_fraction: 0.969,
            cmp_thread_yield: 1.5,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.0615,
            phi_utilization: 0.0201,
            fpga_core_speedup: 30.6,
            fpga_cores: 1.0,
        },
        KernelProfile {
            name: "FD",
            parallel_fraction: 0.997,
            cmp_thread_yield: 1.5,
            baseline_inefficiency: 8.0,
            gpu_utilization: 0.692,
            phi_utilization: 0.102,
            fpga_core_speedup: 65.3,
            fpga_cores: 1.0,
        },
    ]
}

/// Looks up a kernel profile by name.
pub fn profile(name: &str) -> Option<KernelProfile> {
    kernel_profiles().into_iter().find(|p| p.name == name)
}

/// The paper's published numbers, for comparison and shape tests.
pub mod paper {
    /// Table 5 of the paper: speedup of each kernel on each platform,
    /// rows in Table 4 order, columns (CMP, GPU, Phi, FPGA).
    pub const TABLE5: [(&str, [f64; 4]); 7] = [
        ("GMM", [3.5, 70.0, 1.1, 169.0]),
        ("DNN", [6.0, 54.7, 11.2, 110.5]),
        ("Stemmer", [4.0, 6.2, 5.6, 30.0]),
        ("Regex", [3.9, 48.0, 1.1, 168.2]),
        ("CRF", [3.7, 3.8, 4.7, 7.5]),
        ("FE", [5.2, 10.5, 2.5, 34.6]),
        ("FD", [5.9, 120.5, 12.7, 75.5]),
    ];

    /// Paper speedup of `kernel` on platform column `col` (CMP=0 .. FPGA=3).
    pub fn table5(kernel: &str, col: usize) -> Option<f64> {
        TABLE5
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, row)| row[col])
    }

    /// Average query-latency reduction of GPU-accelerated datacenters
    /// (Section 5.2.5).
    pub const GPU_MEAN_LATENCY_REDUCTION: f64 = 10.0;
    /// Average query-latency reduction of FPGA-accelerated datacenters.
    pub const FPGA_MEAN_LATENCY_REDUCTION: f64 = 16.0;
    /// Average TCO reduction of GPU-accelerated datacenters.
    pub const GPU_MEAN_TCO_REDUCTION: f64 = 2.6;
    /// Average TCO reduction of FPGA-accelerated datacenters.
    pub const FPGA_MEAN_TCO_REDUCTION: f64 = 1.4;
    /// The scalability gap: machine-scaling required for IPA-query parity
    /// with web search on general-purpose servers (Figure 7a).
    pub const SCALABILITY_GAP: f64 = 165.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    const COLS: [PlatformKind; 4] = PlatformKind::ALL;

    #[test]
    fn modeled_table5_is_within_tolerance_of_paper() {
        for profile in kernel_profiles() {
            for (col, &kind) in COLS.iter().enumerate() {
                let modeled = profile.modeled_speedup(kind);
                let published = paper::table5(profile.name, col).expect("kernel in table");
                let ratio = modeled / published;
                assert!(
                    (0.8..=1.25).contains(&ratio),
                    "{} on {kind}: modeled {modeled:.1} vs paper {published:.1}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn winners_match_the_paper() {
        // Paper: FPGA wins every kernel except FD, where the GPU wins.
        for profile in kernel_profiles() {
            let best = COLS
                .iter()
                .max_by(|a, b| {
                    profile
                        .modeled_speedup(**a)
                        .total_cmp(&profile.modeled_speedup(**b))
                })
                .copied()
                .expect("non-empty");
            let expected = if profile.name == "FD" {
                PlatformKind::Gpu
            } else {
                PlatformKind::Fpga
            };
            assert_eq!(best, expected, "kernel {}", profile.name);
        }
    }

    #[test]
    fn phi_loses_to_cmp_where_the_paper_says_so() {
        // Table 5: the Phi trails the pthreaded CMP on GMM (1.1 vs 3.5),
        // Regex (1.1 vs 3.9) and FE (2.5 vs 5.2) — the compiler-only port
        // fails to recover a good data layout there.
        for name in ["GMM", "Regex", "FE"] {
            let p = profile(name).expect("kernel");
            assert!(
                p.modeled_speedup(PlatformKind::Phi) < p.modeled_speedup(PlatformKind::Multicore),
                "{name}"
            );
        }
    }

    #[test]
    fn profiles_cover_the_suite() {
        let names: Vec<&str> = kernel_profiles().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["GMM", "DNN", "Stemmer", "Regex", "CRF", "FE", "FD"]
        );
        assert!(profile("GMM").is_some());
        assert!(profile("nope").is_none());
    }

    #[test]
    fn utilizations_are_physical() {
        for p in kernel_profiles() {
            assert!((0.0..=1.0).contains(&p.gpu_utilization), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.phi_utilization), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.parallel_fraction), "{}", p.name);
        }
    }
}
