//! # sirius-accel
//!
//! Accelerator platform modeling for the Sirius reproduction (Hauswald et
//! al., ASPLOS 2015): platform specifications (paper Tables 3/6), an
//! analytic per-kernel speedup model calibrated against the paper's
//! Table 5 (GPU/Phi/FPGA cannot be executed here — see DESIGN.md), the
//! service-level latency/energy composition (Figures 14/15), and a
//! top-down CPU bottleneck model (Figure 10).

#![warn(missing_docs)]

pub mod cpu_model;
pub mod model;
pub mod platform;
pub mod roofline;
pub mod service;

pub use model::{kernel_profiles, paper, KernelProfile};
pub use platform::{all_specs, spec, PlatformKind, PlatformSpec};
pub use service::{service_latency, service_speedup, ServiceKind};
