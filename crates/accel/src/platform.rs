//! Accelerator platform specifications (paper Tables 3 and 6).

use serde::{Deserialize, Serialize};

/// The four platforms the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Intel Xeon E3-1240 v3 multicore CPU (the baseline host).
    Multicore,
    /// NVIDIA GTX 770 GPU.
    Gpu,
    /// Intel Xeon Phi 5110P manycore co-processor.
    Phi,
    /// Xilinx Virtex-6 ML605 FPGA.
    Fpga,
}

impl PlatformKind {
    /// All platforms in the paper's column order.
    pub const ALL: [PlatformKind; 4] = [
        PlatformKind::Multicore,
        PlatformKind::Gpu,
        PlatformKind::Phi,
        PlatformKind::Fpga,
    ];

    /// Accelerators only (everything but the multicore baseline).
    pub const ACCELERATORS: [PlatformKind; 3] =
        [PlatformKind::Gpu, PlatformKind::Phi, PlatformKind::Fpga];
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformKind::Multicore => f.write_str("CMP"),
            PlatformKind::Gpu => f.write_str("GPU"),
            PlatformKind::Phi => f.write_str("Phi"),
            PlatformKind::Fpga => f.write_str("FPGA"),
        }
    }
}

/// Hardware specification of one platform (paper Table 3) plus its power
/// and purchase cost (paper Table 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Which platform this is.
    pub kind: PlatformKind,
    /// Marketing model name.
    pub model: &'static str,
    /// Core clock in GHz.
    pub frequency_ghz: f64,
    /// Number of cores (SMs for the GPU; `None` for the FPGA fabric).
    pub cores: Option<u32>,
    /// Hardware threads (`None` for the FPGA).
    pub hw_threads: Option<u32>,
    /// On-board memory in GB.
    pub memory_gb: f64,
    /// Memory bandwidth in GB/s.
    pub memory_bw_gbs: f64,
    /// Peak single-precision TFLOPS.
    pub peak_tflops: f64,
    /// Thermal design power in watts (Table 6).
    pub tdp_watts: f64,
    /// Purchase cost in USD (Table 6).
    pub cost_usd: f64,
}

/// Returns the Table 3 + Table 6 specification for a platform.
pub fn spec(kind: PlatformKind) -> PlatformSpec {
    match kind {
        PlatformKind::Multicore => PlatformSpec {
            kind,
            model: "Intel Xeon E3-1240 V3",
            frequency_ghz: 3.40,
            cores: Some(4),
            hw_threads: Some(8),
            memory_gb: 12.0,
            memory_bw_gbs: 25.6,
            peak_tflops: 0.5,
            tdp_watts: 80.0,
            cost_usd: 250.0,
        },
        PlatformKind::Gpu => PlatformSpec {
            kind,
            model: "NVIDIA GTX 770",
            frequency_ghz: 1.05,
            cores: Some(8),
            hw_threads: Some(12_288),
            memory_gb: 2.0,
            memory_bw_gbs: 224.0,
            peak_tflops: 3.2,
            tdp_watts: 230.0,
            cost_usd: 399.0,
        },
        PlatformKind::Phi => PlatformSpec {
            kind,
            model: "Intel Xeon Phi 5110P",
            frequency_ghz: 1.05,
            cores: Some(60),
            hw_threads: Some(240),
            memory_gb: 8.0,
            memory_bw_gbs: 320.0,
            peak_tflops: 2.1,
            tdp_watts: 225.0,
            cost_usd: 2_437.0,
        },
        PlatformKind::Fpga => PlatformSpec {
            kind,
            model: "Xilinx Virtex-6 ML605",
            frequency_ghz: 0.40,
            cores: None,
            hw_threads: None,
            memory_gb: 0.5,
            memory_bw_gbs: 6.40,
            peak_tflops: 0.5,
            tdp_watts: 22.0,
            cost_usd: 1_795.0,
        },
    }
}

/// All four specs, in the paper's column order.
pub fn all_specs() -> Vec<PlatformSpec> {
    PlatformKind::ALL.iter().map(|&k| spec(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3_and_table6() {
        let cmp = spec(PlatformKind::Multicore);
        assert_eq!(cmp.frequency_ghz, 3.40);
        assert_eq!(cmp.cores, Some(4));
        assert_eq!(cmp.tdp_watts, 80.0);
        assert_eq!(cmp.cost_usd, 250.0);

        let gpu = spec(PlatformKind::Gpu);
        assert_eq!(gpu.peak_tflops, 3.2);
        assert_eq!(gpu.memory_bw_gbs, 224.0);
        assert_eq!(gpu.cost_usd, 399.0);

        let phi = spec(PlatformKind::Phi);
        assert_eq!(phi.cores, Some(60));
        assert_eq!(phi.hw_threads, Some(240));
        assert_eq!(phi.cost_usd, 2_437.0);

        let fpga = spec(PlatformKind::Fpga);
        assert_eq!(fpga.frequency_ghz, 0.40);
        assert_eq!(fpga.tdp_watts, 22.0);
        assert!(fpga.cores.is_none());
    }

    #[test]
    fn fpga_has_lowest_power_gpu_highest() {
        let specs = all_specs();
        let min = specs
            .iter()
            .min_by(|a, b| a.tdp_watts.total_cmp(&b.tdp_watts))
            .expect("non-empty");
        let max = specs
            .iter()
            .max_by(|a, b| a.tdp_watts.total_cmp(&b.tdp_watts))
            .expect("non-empty");
        assert_eq!(min.kind, PlatformKind::Fpga);
        assert_eq!(max.kind, PlatformKind::Gpu);
    }

    #[test]
    fn display_names() {
        assert_eq!(PlatformKind::Multicore.to_string(), "CMP");
        assert_eq!(PlatformKind::Fpga.to_string(), "FPGA");
    }
}
