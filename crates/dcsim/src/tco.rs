//! Google-style total-cost-of-ownership model (paper Table 7, Figure 18).
//!
//! Implements the TCO model of Barroso, Clidaras & Hölzle ("The Datacenter
//! as a Computer", 2nd ed.) with the paper's parameters: datacenter capex
//! amortized over 12 years at $10/W, servers over 3 years, 45% average
//! utilization, $0.067/kWh, PUE 1.1, and the OpenCompute baseline server
//! ($2,102, 163.6 W).

use serde::{Deserialize, Serialize};

use sirius_accel::platform::{spec, PlatformKind};

/// Model parameters (paper Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoParams {
    /// Datacenter depreciation time in years.
    pub dc_depreciation_years: f64,
    /// Server depreciation time in years.
    pub server_depreciation_years: f64,
    /// Average server utilization (affects energy draw).
    pub avg_utilization: f64,
    /// Electricity cost in $ per kWh.
    pub electricity_per_kwh: f64,
    /// Datacenter construction cost in $ per provisioned watt.
    pub dc_price_per_watt: f64,
    /// Datacenter opex in $ per watt per month.
    pub dc_opex_per_watt_month: f64,
    /// Server opex as a fraction of server capex per year.
    pub server_opex_fraction_per_year: f64,
    /// Baseline server price in $ (OpenCompute configuration).
    pub server_price: f64,
    /// Baseline server power in watts.
    pub server_power: f64,
    /// Power usage effectiveness.
    pub pue: f64,
}

impl Default for TcoParams {
    fn default() -> Self {
        Self {
            dc_depreciation_years: 12.0,
            server_depreciation_years: 3.0,
            avg_utilization: 0.45,
            electricity_per_kwh: 0.067,
            dc_price_per_watt: 10.0,
            dc_opex_per_watt_month: 0.04,
            server_opex_fraction_per_year: 0.05,
            server_price: 2_102.0,
            server_power: 163.6,
            pue: 1.1,
        }
    }
}

/// Monthly cost breakdown for one server (and its datacenter share).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoBreakdown {
    /// Amortized server purchase cost.
    pub server_capex: f64,
    /// Server maintenance opex.
    pub server_opex: f64,
    /// Amortized datacenter construction (provisioned power).
    pub dc_capex: f64,
    /// Datacenter operational expenditure.
    pub dc_opex: f64,
    /// Electricity at average utilization, including PUE overhead.
    pub energy: f64,
}

impl TcoBreakdown {
    /// Total monthly cost.
    pub fn total(&self) -> f64 {
        self.server_capex + self.server_opex + self.dc_capex + self.dc_opex + self.energy
    }
}

/// A server configuration: the baseline host plus an optional accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Attached accelerator, if any (`Multicore` means no accelerator).
    pub accelerator: PlatformKind,
}

impl ServerConfig {
    /// The plain multicore baseline server.
    pub fn baseline() -> Self {
        Self {
            accelerator: PlatformKind::Multicore,
        }
    }

    /// A server augmented with the given accelerator.
    pub fn with_accelerator(kind: PlatformKind) -> Self {
        Self { accelerator: kind }
    }

    /// Total purchase price (host + accelerator card).
    pub fn price(&self, params: &TcoParams) -> f64 {
        match self.accelerator {
            PlatformKind::Multicore => params.server_price,
            k => params.server_price + spec(k).cost_usd,
        }
    }

    /// Total provisioned power in watts.
    pub fn power(&self, params: &TcoParams) -> f64 {
        match self.accelerator {
            PlatformKind::Multicore => params.server_power,
            k => params.server_power + spec(k).tdp_watts,
        }
    }
}

/// Monthly TCO of one server under the model.
pub fn monthly_tco(config: &ServerConfig, params: &TcoParams) -> TcoBreakdown {
    let price = config.price(params);
    let watts = config.power(params);
    let hours_per_month = 24.0 * 365.25 / 12.0;
    TcoBreakdown {
        server_capex: price / (params.server_depreciation_years * 12.0),
        server_opex: price * params.server_opex_fraction_per_year / 12.0,
        dc_capex: watts * params.dc_price_per_watt / (params.dc_depreciation_years * 12.0),
        dc_opex: watts * params.dc_opex_per_watt_month,
        energy: watts
            * params.avg_utilization
            * params.pue
            * hours_per_month
            * params.electricity_per_kwh
            / 1000.0,
    }
}

/// Relative datacenter TCO of serving a fixed query load on `config`
/// servers versus baseline servers, given the per-server throughput
/// improvement of the configuration (paper Figure 18, where values below
/// 1.0 are TCO reductions).
pub fn normalized_dc_tco(
    config: &ServerConfig,
    throughput_improvement: f64,
    params: &TcoParams,
) -> f64 {
    assert!(throughput_improvement > 0.0, "throughput must be positive");
    let accel = monthly_tco(config, params).total();
    let base = monthly_tco(&ServerConfig::baseline(), params).total();
    (accel / throughput_improvement) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_monthly_tco_is_plausible() {
        let t = monthly_tco(&ServerConfig::baseline(), &TcoParams::default());
        // ~ $58 capex + $9 opex + $11 dc capex + $7 dc opex + $4 energy.
        assert!((t.server_capex - 2102.0 / 36.0).abs() < 1e-9);
        assert!((80.0..100.0).contains(&t.total()), "total {}", t.total());
    }

    #[test]
    fn accelerators_raise_per_server_cost() {
        let params = TcoParams::default();
        let base = monthly_tco(&ServerConfig::baseline(), &params).total();
        for kind in PlatformKind::ACCELERATORS {
            let t = monthly_tco(&ServerConfig::with_accelerator(kind), &params).total();
            assert!(t > base, "{kind}");
        }
    }

    #[test]
    fn gpu_server_is_cheaper_than_fpga_server() {
        // GPU: +$399/+230W; FPGA: +$1795/+22W. Capex dominates.
        let params = TcoParams::default();
        let gpu = monthly_tco(&ServerConfig::with_accelerator(PlatformKind::Gpu), &params);
        let fpga = monthly_tco(&ServerConfig::with_accelerator(PlatformKind::Fpga), &params);
        assert!(gpu.total() < fpga.total());
        // But the FPGA server burns less energy.
        assert!(fpga.energy < gpu.energy);
    }

    #[test]
    fn throughput_gains_reduce_normalized_tco() {
        let params = TcoParams::default();
        let config = ServerConfig::with_accelerator(PlatformKind::Gpu);
        let at_1x = normalized_dc_tco(&config, 1.0, &params);
        let at_10x = normalized_dc_tco(&config, 10.0, &params);
        assert!(at_1x > 1.0, "accelerator at no gain must cost more");
        assert!(at_10x < 0.2);
        assert!((at_1x / at_10x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_asr_dnn_tco_reduction_exceeds_8x() {
        // Paper 5.2.2: "GPU achieves over 8x TCO reduction for ASR(DNN)".
        let params = TcoParams::default();
        let speedup =
            sirius_accel::service_speedup(sirius_accel::ServiceKind::AsrDnn, PlatformKind::Gpu);
        let tput = speedup / 4.0; // vs all-4-core query-parallel baseline
        let tco = normalized_dc_tco(
            &ServerConfig::with_accelerator(PlatformKind::Gpu),
            tput,
            &params,
        );
        assert!(1.0 / tco > 8.0, "reduction {}", 1.0 / tco);
    }

    #[test]
    fn fpga_imm_tco_reduction_exceeds_4x() {
        // Paper 5.2.2: "FPGA achieves over 4x TCO reduction for IMM".
        let params = TcoParams::default();
        let speedup =
            sirius_accel::service_speedup(sirius_accel::ServiceKind::Imm, PlatformKind::Fpga);
        let tput = speedup / 4.0;
        let tco = normalized_dc_tco(
            &ServerConfig::with_accelerator(PlatformKind::Fpga),
            tput,
            &params,
        );
        assert!(1.0 / tco > 4.0, "reduction {}", 1.0 / tco);
    }
}
