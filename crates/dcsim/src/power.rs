//! Power-capped datacenter analysis.
//!
//! The paper motivates the FPGA's perf/W advantage for "datacenters with
//! power constraints, especially for augmenting existing filled datacenters
//! that are equipped with capped power infrastructure support"
//! (Section 5.2.3). This module answers: under a fixed facility power
//! budget, which platform serves the most queries?

use serde::{Deserialize, Serialize};

use sirius_accel::platform::PlatformKind;
use sirius_accel::service::{service_speedup, ServiceKind};

use crate::design::BASELINE_CORES;
use crate::tco::{ServerConfig, TcoParams};

/// Throughput achievable for one service under a facility power cap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCapPoint {
    /// Server platform.
    pub platform: PlatformKind,
    /// Service evaluated.
    pub service: ServiceKind,
    /// Servers that fit the power budget.
    pub servers: u64,
    /// Aggregate throughput relative to one baseline CMP server.
    pub relative_throughput: f64,
}

/// How many `platform` servers fit a `budget_watts` facility budget
/// (provisioned at PUE-inflated nameplate power).
pub fn servers_in_budget(platform: PlatformKind, budget_watts: f64, params: &TcoParams) -> u64 {
    let config = match platform {
        PlatformKind::Multicore => ServerConfig::baseline(),
        p => ServerConfig::with_accelerator(p),
    };
    let per_server = config.power(params) * params.pue;
    if per_server <= 0.0 {
        return 0;
    }
    (budget_watts / per_server).floor() as u64
}

/// Evaluates all platforms for `service` under a power cap, best first.
pub fn power_capped_throughput(
    service: ServiceKind,
    budget_watts: f64,
    params: &TcoParams,
) -> Vec<PowerCapPoint> {
    let mut out: Vec<PowerCapPoint> = PlatformKind::ALL
        .iter()
        .map(|&platform| {
            let servers = servers_in_budget(platform, budget_watts, params);
            let per_server = match platform {
                PlatformKind::Multicore => BASELINE_CORES,
                p => service_speedup(service, p),
            };
            PowerCapPoint {
                platform,
                service,
                servers,
                relative_throughput: servers as f64 * per_server / BASELINE_CORES,
            }
        })
        .collect();
    out.sort_by(|a, b| b.relative_throughput.total_cmp(&a.relative_throughput));
    out
}

/// The platform maximizing throughput under the cap for `service`.
pub fn best_under_power_cap(
    service: ServiceKind,
    budget_watts: f64,
    params: &TcoParams,
) -> PlatformKind {
    power_capped_throughput(service, budget_watts, params)
        .first()
        .map(|p| p.platform)
        .unwrap_or(PlatformKind::Multicore)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TcoParams {
        TcoParams::default()
    }

    #[test]
    fn server_counts_respect_power_draw() {
        let p = params();
        // 100 kW budget; baseline 163.6 W * 1.1 PUE ≈ 180 W → ~555 servers.
        let cmp = servers_in_budget(PlatformKind::Multicore, 100_000.0, &p);
        assert!((540..=560).contains(&cmp), "cmp {cmp}");
        // GPU servers draw more (163.6 + 230 W); fewer fit.
        let gpu = servers_in_budget(PlatformKind::Gpu, 100_000.0, &p);
        assert!(gpu < cmp);
        // FPGA adds only 22 W; nearly as many fit as baseline.
        let fpga = servers_in_budget(PlatformKind::Fpga, 100_000.0, &p);
        assert!(fpga > gpu && fpga > cmp * 8 / 10);
    }

    #[test]
    fn fpga_wins_every_service_under_a_power_cap() {
        // The paper's perf/W argument: with capped power, the FPGA's low
        // draw plus high speedup dominates.
        let p = params();
        for s in ServiceKind::ALL {
            if s == ServiceKind::AsrDnn {
                continue; // the GPU's outlier DNN speedup can still win
            }
            assert_eq!(
                best_under_power_cap(s, 50_000.0, &p),
                PlatformKind::Fpga,
                "{s}"
            );
        }
    }

    #[test]
    fn throughput_scales_with_budget() {
        let p = params();
        let small = power_capped_throughput(ServiceKind::Imm, 10_000.0, &p);
        let large = power_capped_throughput(ServiceKind::Imm, 100_000.0, &p);
        let f = |pts: &[PowerCapPoint]| {
            pts.iter()
                .find(|x| x.platform == PlatformKind::Fpga)
                .expect("fpga present")
                .relative_throughput
        };
        let ratio = f(&large) / f(&small);
        assert!((9.0..=11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn results_are_sorted_best_first() {
        let pts = power_capped_throughput(ServiceKind::Qa, 30_000.0, &params());
        for w in pts.windows(2) {
            assert!(w[0].relative_throughput >= w[1].relative_throughput);
        }
    }
}
