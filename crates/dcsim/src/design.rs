//! Datacenter design-space exploration (paper Figures 19/20, Tables 8/9).
//!
//! Combines the service-level acceleration model (`sirius-accel`) with the
//! TCO model to pick homogeneous and heterogeneous (partitioned) datacenter
//! designs under the paper's three objectives: minimize latency, minimize
//! TCO under a latency constraint, and maximize energy efficiency under a
//! latency constraint. The latency constraint is the CMP (sub-query
//! parallel) latency, as in Table 8.

use serde::{Deserialize, Serialize};

use sirius_accel::platform::PlatformKind;
use sirius_accel::service::{perf_per_watt_vs_cmp, service_speedup, ServiceKind};

use crate::tco::{normalized_dc_tco, ServerConfig, TcoParams};

/// Cores of the baseline server; the CMP reference throughput uses all of
/// them for query-level parallelism (paper Figure 16).
pub const BASELINE_CORES: f64 = 4.0;

/// One point in the latency/TCO trade-off space (paper Figure 19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Server platform.
    pub platform: PlatformKind,
    /// Service evaluated.
    pub service: ServiceKind,
    /// Query-latency improvement over the single-core baseline.
    pub latency_improvement: f64,
    /// Throughput improvement over the all-cores CMP baseline.
    pub throughput_improvement: f64,
    /// Normalized DC TCO (values < 1 are reductions; paper Figure 18).
    pub tco_normalized: f64,
    /// Performance per watt relative to the CMP server (paper Figure 15).
    pub perf_per_watt: f64,
}

/// Throughput improvement of `platform` for `service` versus the CMP
/// query-parallel baseline (Figure 16: the ρ→1 lower bound).
pub fn throughput_improvement(service: ServiceKind, platform: PlatformKind) -> f64 {
    if platform == PlatformKind::Multicore {
        // Query-level parallelism on all four cores defines the baseline.
        1.0
    } else {
        service_speedup(service, platform) / BASELINE_CORES
    }
}

/// Evaluates one (platform, service) design point.
pub fn design_point(
    service: ServiceKind,
    platform: PlatformKind,
    params: &TcoParams,
) -> DesignPoint {
    let tput = throughput_improvement(service, platform);
    let config = match platform {
        PlatformKind::Multicore => ServerConfig::baseline(),
        k => ServerConfig::with_accelerator(k),
    };
    DesignPoint {
        platform,
        service,
        latency_improvement: service_speedup(service, platform),
        throughput_improvement: tput,
        tco_normalized: normalized_dc_tco(&config, tput, params),
        perf_per_watt: perf_per_watt_vs_cmp(service, platform),
    }
}

/// The full design space: every platform × service (paper Figure 19).
pub fn design_space(params: &TcoParams) -> Vec<DesignPoint> {
    let mut out = Vec::new();
    for service in ServiceKind::ALL {
        for platform in PlatformKind::ALL {
            out.push(design_point(service, platform, params));
        }
    }
    out
}

/// Design objectives (paper Table 8 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize query latency.
    MinLatency,
    /// Minimize TCO subject to latency no worse than CMP (sub-query).
    MinTcoWithLatencyConstraint,
    /// Maximize perf/W subject to latency no worse than CMP (sub-query).
    MaxEfficiencyWithLatencyConstraint,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::MinLatency => f.write_str("Hmg-latency"),
            Objective::MinTcoWithLatencyConstraint => f.write_str("Hmg-TCO (w/ L constraint)"),
            Objective::MaxEfficiencyWithLatencyConstraint => {
                f.write_str("Hmg-power eff. (w/ L constraint)")
            }
        }
    }
}

fn meets_latency_constraint(service: ServiceKind, platform: PlatformKind) -> bool {
    service_speedup(service, platform) >= service_speedup(service, PlatformKind::Multicore)
}

/// Geometric-mean score across all four services.
fn aggregate<F: Fn(ServiceKind) -> f64>(f: F) -> f64 {
    let product: f64 = ServiceKind::ALL.iter().map(|&s| f(s)).product();
    product.powf(1.0 / ServiceKind::ALL.len() as f64)
}

/// Geometric-mean throughput improvement of a homogeneous `platform`
/// datacenter across the four services — Table 8's capacity angle: how
/// many query-parallel CMP replicas one accelerated machine substitutes
/// for. The multicore platform is the baseline and scores 1.
pub fn homogeneous_throughput_improvement(platform: PlatformKind) -> f64 {
    aggregate(|s| throughput_improvement(s, platform))
}

/// Picks the single best platform for a homogeneous datacenter (Table 8):
/// one configuration shared by all services, scored by the geometric mean
/// across services.
pub fn homogeneous_design(
    objective: Objective,
    candidates: &[PlatformKind],
    params: &TcoParams,
) -> Option<PlatformKind> {
    let feasible: Vec<PlatformKind> = candidates
        .iter()
        .copied()
        .filter(|&p| match objective {
            Objective::MinLatency => true,
            _ => ServiceKind::ALL
                .iter()
                .all(|&s| meets_latency_constraint(s, p)),
        })
        .collect();
    feasible.into_iter().max_by(|&a, &b| {
        let score = |p: PlatformKind| match objective {
            Objective::MinLatency => aggregate(|s| service_speedup(s, p)),
            Objective::MinTcoWithLatencyConstraint => {
                1.0 / aggregate(|s| design_point(s, p, params).tco_normalized)
            }
            Objective::MaxEfficiencyWithLatencyConstraint => {
                aggregate(|s| perf_per_watt_vs_cmp(s, p))
            }
        };
        score(a).total_cmp(&score(b))
    })
}

/// Picks the best platform per service for a partitioned heterogeneous
/// datacenter (Table 9). Returns `(service, platform)` pairs.
pub fn heterogeneous_design(
    objective: Objective,
    candidates: &[PlatformKind],
    params: &TcoParams,
) -> Vec<(ServiceKind, PlatformKind)> {
    ServiceKind::ALL
        .iter()
        .map(|&service| {
            let best = candidates
                .iter()
                .copied()
                .filter(|&p| match objective {
                    Objective::MinLatency => true,
                    _ => meets_latency_constraint(service, p),
                })
                .max_by(|&a, &b| {
                    let score = |p: PlatformKind| match objective {
                        Objective::MinLatency => service_speedup(service, p),
                        Objective::MinTcoWithLatencyConstraint => {
                            1.0 / design_point(service, p, params).tco_normalized
                        }
                        Objective::MaxEfficiencyWithLatencyConstraint => {
                            perf_per_watt_vs_cmp(service, p)
                        }
                    };
                    score(a).total_cmp(&score(b))
                })
                .unwrap_or(PlatformKind::Multicore);
            (service, best)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Query-level results (paper Figure 20)
// ---------------------------------------------------------------------

/// The three query classes of the taxonomy (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Voice command: ASR only.
    Vc,
    /// Voice query: ASR + QA.
    Vq,
    /// Voice-image query: ASR + QA + IMM.
    Viq,
}

impl QueryClass {
    /// All classes in taxonomy order.
    pub const ALL: [QueryClass; 3] = [QueryClass::Vc, QueryClass::Vq, QueryClass::Viq];
}

impl std::fmt::Display for QueryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryClass::Vc => f.write_str("VC"),
            QueryClass::Vq => f.write_str("VQ"),
            QueryClass::Viq => f.write_str("VIQ"),
        }
    }
}

/// Baseline single-core service times in seconds, used to weight the
/// query-level composition. Defaults follow the paper's measurements
/// (ASR ≈ 4.2 s; QA dominates; VIQ adds IMM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineSeconds {
    /// ASR service time.
    pub asr: f64,
    /// QA service time.
    pub qa: f64,
    /// IMM service time.
    pub imm: f64,
}

impl Default for BaselineSeconds {
    fn default() -> Self {
        Self {
            asr: 4.2,
            qa: 10.0,
            imm: 5.0,
        }
    }
}

impl BaselineSeconds {
    /// Baseline latency of a query class (sum of its services).
    pub fn query_latency(&self, class: QueryClass) -> f64 {
        match class {
            QueryClass::Vc => self.asr,
            QueryClass::Vq => self.asr + self.qa,
            QueryClass::Viq => self.asr + self.qa + self.imm,
        }
    }
}

/// Query-class latency reduction on `platform`, deploying ASR with GMM
/// scoring (the configuration both accelerated DCs of Figure 20 use).
pub fn query_latency_reduction(
    class: QueryClass,
    platform: PlatformKind,
    baselines: &BaselineSeconds,
) -> f64 {
    let accel = |service: ServiceKind, secs: f64| secs / service_speedup(service, platform);
    let accel_latency = match class {
        QueryClass::Vc => accel(ServiceKind::AsrGmm, baselines.asr),
        QueryClass::Vq => {
            accel(ServiceKind::AsrGmm, baselines.asr) + accel(ServiceKind::Qa, baselines.qa)
        }
        QueryClass::Viq => {
            accel(ServiceKind::AsrGmm, baselines.asr)
                + accel(ServiceKind::Qa, baselines.qa)
                + accel(ServiceKind::Imm, baselines.imm)
        }
    };
    baselines.query_latency(class) / accel_latency
}

/// Per-query-class metrics for an accelerated DC (paper Figure 20).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Query class.
    pub class: QueryClass,
    /// Latency reduction over the single-core baseline.
    pub latency_reduction: f64,
    /// Normalized DC TCO (< 1 is a reduction).
    pub tco_normalized: f64,
}

/// Evaluates all query classes for a platform (Figure 20).
pub fn query_level_metrics(platform: PlatformKind, params: &TcoParams) -> Vec<QueryMetrics> {
    let baselines = BaselineSeconds::default();
    let config = match platform {
        PlatformKind::Multicore => ServerConfig::baseline(),
        k => ServerConfig::with_accelerator(k),
    };
    QueryClass::ALL
        .iter()
        .map(|&class| {
            let red = query_latency_reduction(class, platform, &baselines);
            let tput = if platform == PlatformKind::Multicore {
                1.0
            } else {
                red / BASELINE_CORES
            };
            QueryMetrics {
                class,
                latency_reduction: red,
                tco_normalized: normalized_dc_tco(&config, tput, params),
            }
        })
        .collect()
}

/// Mean latency reduction across query classes (the paper's headline 10×
/// GPU / 16× FPGA numbers).
pub fn mean_query_latency_reduction(platform: PlatformKind) -> f64 {
    let baselines = BaselineSeconds::default();
    let sum: f64 = QueryClass::ALL
        .iter()
        .map(|&c| query_latency_reduction(c, platform, &baselines))
        .sum();
    sum / QueryClass::ALL.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TcoParams {
        TcoParams::default()
    }

    #[test]
    fn design_space_covers_all_combinations() {
        let space = design_space(&params());
        assert_eq!(space.len(), 16);
        assert!(space.iter().all(|p| p.latency_improvement > 0.0));
    }

    #[test]
    fn homogeneous_throughput_improvement_is_anchored_at_multicore() {
        // The CMP baseline scores exactly 1; accelerated designs beat it
        // (the geomean includes QA, whose acceleration is modest, so the
        // aggregate sits well below the best single-service speedup).
        let cmp = homogeneous_throughput_improvement(PlatformKind::Multicore);
        assert!((cmp - 1.0).abs() < 1e-12);
        let gpu = homogeneous_throughput_improvement(PlatformKind::Gpu);
        let fpga = homogeneous_throughput_improvement(PlatformKind::Fpga);
        assert!(gpu > 1.0, "GPU aggregate {gpu:.2}");
        assert!(fpga > gpu, "FPGA {fpga:.2} must beat GPU {gpu:.2}");
    }

    #[test]
    fn min_latency_homogeneous_design_is_fpga() {
        // Table 8, row 1: FPGA when all candidates are allowed.
        let all = PlatformKind::ALL;
        assert_eq!(
            homogeneous_design(Objective::MinLatency, &all, &params()),
            Some(PlatformKind::Fpga)
        );
    }

    #[test]
    fn min_latency_without_fpga_is_gpu() {
        let no_fpga = [
            PlatformKind::Multicore,
            PlatformKind::Gpu,
            PlatformKind::Phi,
        ];
        assert_eq!(
            homogeneous_design(Objective::MinLatency, &no_fpga, &params()),
            Some(PlatformKind::Gpu)
        );
    }

    #[test]
    fn tco_homogeneous_design_is_gpu() {
        // Table 8, row 2: GPU with or without the FPGA as a candidate.
        assert_eq!(
            homogeneous_design(
                Objective::MinTcoWithLatencyConstraint,
                &PlatformKind::ALL,
                &params()
            ),
            Some(PlatformKind::Gpu)
        );
    }

    #[test]
    fn efficiency_homogeneous_design_is_fpga() {
        // Table 8, row 3: FPGA.
        assert_eq!(
            homogeneous_design(
                Objective::MaxEfficiencyWithLatencyConstraint,
                &PlatformKind::ALL,
                &params()
            ),
            Some(PlatformKind::Fpga)
        );
    }

    #[test]
    fn heterogeneous_latency_design_uses_gpu_for_asr_dnn() {
        // Table 9, row 1: GPU optimizes ASR (DNN); FPGA the rest.
        let picks = heterogeneous_design(Objective::MinLatency, &PlatformKind::ALL, &params());
        for (service, platform) in picks {
            if service == ServiceKind::AsrDnn {
                assert_eq!(platform, PlatformKind::Gpu, "{service}");
            } else {
                assert_eq!(platform, PlatformKind::Fpga, "{service}");
            }
        }
    }

    #[test]
    fn heterogeneous_tco_prefers_fpga_for_qa_and_imm() {
        // Table 9, row 2: FPGA gives extra TCO improvement for QA and IMM.
        let picks = heterogeneous_design(
            Objective::MinTcoWithLatencyConstraint,
            &PlatformKind::ALL,
            &params(),
        );
        let pick = |s: ServiceKind| picks.iter().find(|(x, _)| *x == s).expect("present").1;
        assert_eq!(pick(ServiceKind::Qa), PlatformKind::Fpga);
        assert_eq!(pick(ServiceKind::Imm), PlatformKind::Fpga);
        assert_eq!(pick(ServiceKind::AsrDnn), PlatformKind::Gpu);
    }

    #[test]
    fn mean_latency_reductions_match_headline_bands() {
        // Paper Section 5.2.5: GPU DCs average ~10x, FPGA DCs ~16x.
        let gpu = mean_query_latency_reduction(PlatformKind::Gpu);
        let fpga = mean_query_latency_reduction(PlatformKind::Fpga);
        assert!((7.0..=14.0).contains(&gpu), "GPU mean reduction {gpu:.1}");
        assert!(
            (10.0..=22.0).contains(&fpga),
            "FPGA mean reduction {fpga:.1}"
        );
        assert!(fpga > gpu, "FPGA must beat GPU on latency");
    }

    #[test]
    fn vc_queries_gain_most() {
        // VC exercises only ASR, the most accelerable service; VQ includes
        // QA, which limits the gain.
        let b = BaselineSeconds::default();
        for p in [PlatformKind::Gpu, PlatformKind::Fpga] {
            let vc = query_latency_reduction(QueryClass::Vc, p, &b);
            let vq = query_latency_reduction(QueryClass::Vq, p, &b);
            assert!(vc > vq, "{p}: vc {vc:.1} vq {vq:.1}");
        }
    }

    #[test]
    fn query_metrics_are_consistent() {
        let m = query_level_metrics(PlatformKind::Gpu, &params());
        assert_eq!(m.len(), 3);
        for qm in m {
            assert!(qm.latency_reduction > 1.0, "{:?}", qm.class);
            assert!(qm.tco_normalized > 0.0);
        }
    }
}
