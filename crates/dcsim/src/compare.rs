//! Model-vs-measured queueing comparison.
//!
//! Figure 17 of the paper is the closed-form M/M/1 latency-vs-load curve.
//! With the staged serving runtime (`sirius-server`) the same curve can be
//! *measured*: drive the runtime open-loop at a swept arrival rate λ and
//! record mean sojourn time per point. This module lines those measurements
//! up against the [`Mm1`] prediction and quantifies the gap, turning the
//! figure from a formula into a validation of one.
//!
//! The comparison is honest about its own limits: the runtime is a tandem
//! of stage queues with generally-distributed service times, not a single
//! exponential server, so the model is an approximation — the relative
//! error column is the point of the exercise, not a residual to hide.

use crate::queue::Mm1;

/// One measured operating point of a running server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// Measured mean sojourn time (queue wait + service) in seconds.
    pub mean_latency: f64,
}

/// One measured point lined up against the model's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonRow {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// Utilization ρ = λ/μ under the model's service rate.
    pub rho: f64,
    /// Measured mean sojourn seconds.
    pub measured: f64,
    /// Predicted mean sojourn seconds, `1/(μ−λ)`; infinite at ρ ≥ 1.
    pub predicted: f64,
    /// |measured − predicted| / predicted, when the prediction is finite
    /// and positive.
    pub relative_error: Option<f64>,
}

/// A swept-load comparison of measured sojourn times against an M/M/1 model.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueComparison {
    /// The model's service rate μ (queries/second).
    pub mu: f64,
    /// One row per measured operating point, in input order.
    pub rows: Vec<ComparisonRow>,
}

impl QueueComparison {
    /// Lines `points` up against `model`.
    pub fn against(model: Mm1, points: &[MeasuredPoint]) -> Self {
        let rows = points
            .iter()
            .map(|p| {
                let predicted = model.latency(p.lambda);
                let relative_error = (predicted.is_finite() && predicted > 0.0)
                    .then(|| (p.mean_latency - predicted).abs() / predicted);
                ComparisonRow {
                    lambda: p.lambda,
                    rho: p.lambda / model.mu,
                    measured: p.mean_latency,
                    predicted,
                    relative_error,
                }
            })
            .collect();
        Self { mu: model.mu, rows }
    }

    /// Convenience: build the model from a measured mean service time
    /// (seconds per query at zero load), then compare.
    ///
    /// # Panics
    ///
    /// Panics if `mean_service_time <= 0`.
    pub fn against_service_time(mean_service_time: f64, points: &[MeasuredPoint]) -> Self {
        Self::against(Mm1::from_service_time(mean_service_time), points)
    }

    /// Mean relative error over the stable (finite-prediction) points;
    /// `None` when no point is stable.
    pub fn mean_relative_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self.rows.iter().filter_map(|r| r.relative_error).collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// Worst relative error over the stable points.
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.relative_error)
            .max_by(|a, b| a.partial_cmp(b).expect("finite errors"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_generated_points_have_zero_error() {
        let model = Mm1 { mu: 20.0 };
        let points: Vec<MeasuredPoint> = [4.0, 10.0, 16.0]
            .iter()
            .map(|&lambda| MeasuredPoint {
                lambda,
                mean_latency: model.latency(lambda),
            })
            .collect();
        let cmp = QueueComparison::against(model, &points);
        assert_eq!(cmp.rows.len(), 3);
        for row in &cmp.rows {
            assert!(row.relative_error.expect("stable") < 1e-12);
            assert!(row.rho < 1.0);
        }
        assert!(cmp.mean_relative_error().expect("stable") < 1e-12);
        assert!(cmp.worst_relative_error().expect("stable") < 1e-12);
    }

    #[test]
    fn overloaded_points_have_no_relative_error() {
        let cmp = QueueComparison::against_service_time(
            0.1,
            &[
                MeasuredPoint {
                    lambda: 5.0,
                    mean_latency: 0.25,
                },
                MeasuredPoint {
                    lambda: 12.0,
                    mean_latency: 40.0,
                },
            ],
        );
        assert!((cmp.mu - 10.0).abs() < 1e-12);
        assert!(cmp.rows[0].relative_error.is_some());
        assert_eq!(cmp.rows[1].predicted, f64::INFINITY);
        assert!(cmp.rows[1].relative_error.is_none());
        // Summary statistics only cover the stable point.
        let expected = (0.25 - 0.2f64).abs() / 0.2;
        assert!((cmp.mean_relative_error().unwrap() - expected).abs() < 1e-12);
        assert_eq!(
            cmp.mean_relative_error(),
            cmp.worst_relative_error(),
            "single stable point"
        );
    }

    #[test]
    fn all_unstable_yields_no_summary() {
        let cmp = QueueComparison::against(
            Mm1 { mu: 1.0 },
            &[MeasuredPoint {
                lambda: 2.0,
                mean_latency: 10.0,
            }],
        );
        assert!(cmp.mean_relative_error().is_none());
        assert!(cmp.worst_relative_error().is_none());
    }

    #[test]
    fn measured_above_model_reports_positive_error() {
        // A tandem pipeline has more queueing than a single M/M/1 server;
        // the comparison must report that gap, not mask it.
        let model = Mm1 { mu: 10.0 };
        let cmp = QueueComparison::against(
            model,
            &[MeasuredPoint {
                lambda: 5.0,
                mean_latency: 0.3,
            }],
        );
        let err = cmp.rows[0].relative_error.unwrap();
        assert!((err - 0.5).abs() < 1e-12, "expected 50% gap, got {err}");
    }
}
