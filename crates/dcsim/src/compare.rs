//! Model-vs-measured queueing comparison.
//!
//! Figure 17 of the paper is the closed-form M/M/1 latency-vs-load curve.
//! With the staged serving runtime (`sirius-server`) the same curve can be
//! *measured*: drive the runtime open-loop at a swept arrival rate λ and
//! record mean sojourn time per point. This module lines those measurements
//! up against the [`Mm1`] prediction and quantifies the gap, turning the
//! figure from a formula into a validation of one.
//!
//! The comparison is honest about its own limits: the runtime is a tandem
//! of stage queues with generally-distributed service times, not a single
//! exponential server, so the model is an approximation — the relative
//! error column is the point of the exercise, not a residual to hide.

use serde::{Deserialize, Serialize};

use crate::queue::{mm1k_blocking_probability, Mm1};

/// One measured operating point of a running server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// Measured mean sojourn time (queue wait + service) in seconds.
    pub mean_latency: f64,
}

/// One measured point lined up against the model's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonRow {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// Utilization ρ = λ/μ under the model's service rate.
    pub rho: f64,
    /// Measured mean sojourn seconds.
    pub measured: f64,
    /// Predicted mean sojourn seconds, `1/(μ−λ)`; infinite at ρ ≥ 1.
    pub predicted: f64,
    /// |measured − predicted| / predicted, when the prediction is finite
    /// and positive.
    pub relative_error: Option<f64>,
}

/// A swept-load comparison of measured sojourn times against an M/M/1 model.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueComparison {
    /// The model's service rate μ (queries/second).
    pub mu: f64,
    /// One row per measured operating point, in input order.
    pub rows: Vec<ComparisonRow>,
}

impl QueueComparison {
    /// Lines `points` up against `model`.
    pub fn against(model: Mm1, points: &[MeasuredPoint]) -> Self {
        let rows = points
            .iter()
            .map(|p| {
                let predicted = model.latency(p.lambda);
                let relative_error = (predicted.is_finite() && predicted > 0.0)
                    .then(|| (p.mean_latency - predicted).abs() / predicted);
                ComparisonRow {
                    lambda: p.lambda,
                    rho: p.lambda / model.mu,
                    measured: p.mean_latency,
                    predicted,
                    relative_error,
                }
            })
            .collect();
        Self { mu: model.mu, rows }
    }

    /// Convenience: build the model from a measured mean service time
    /// (seconds per query at zero load), then compare.
    ///
    /// # Panics
    ///
    /// Panics if `mean_service_time <= 0`.
    pub fn against_service_time(mean_service_time: f64, points: &[MeasuredPoint]) -> Self {
        Self::against(Mm1::from_service_time(mean_service_time), points)
    }

    /// Mean relative error over the stable (finite-prediction) points;
    /// `None` when no point is stable.
    pub fn mean_relative_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self.rows.iter().filter_map(|r| r.relative_error).collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// Worst relative error over the stable points.
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.relative_error)
            .max_by(|a, b| a.partial_cmp(b).expect("finite errors"))
    }
}

/// One stage of a measured tandem queue, as exported by the staged
/// runtime's per-stage telemetry (`sirius-server` queue-wait/service
/// histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct StageMeasurement {
    /// Stage name (`asr`, `classify`, ...).
    pub stage: String,
    /// Jobs that passed through the stage during the window. In Sirius the
    /// stages see *different* populations — actions exit at the classifier,
    /// so IMM/QA serve only the question subset.
    pub completions: u64,
    /// Mean queue wait in seconds.
    pub mean_wait: f64,
    /// Mean service time in seconds.
    pub mean_service: f64,
}

impl StageMeasurement {
    /// The stage's measured mean sojourn (wait + service) in seconds.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_wait + self.mean_service
    }
}

/// Mean sojourns below this many seconds (0.1 ms) sit at the timer's
/// effective measurement floor: scheduling noise and timestamp quantization
/// are the same order as the quantity itself, so a *relative* error on such
/// a stage is noise amplified by a near-zero denominator (a 0.045 ms
/// measurement against a 0.017 ms prediction reads as 175% "error" while
/// being 0.03 ms apart). Stages where both sides are below the floor report
/// an absolute gap instead and stay out of the mean.
pub const MEASUREMENT_FLOOR_SECONDS: f64 = 1e-4;

/// One stage's measurement lined up against its own M/M/1 prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct TandemStageRow {
    /// Stage name.
    pub stage: String,
    /// The stage's own arrival rate λₛ = completions / window (actions
    /// exiting early make λ differ per stage).
    pub lambda: f64,
    /// Utilization ρₛ = λₛ·E[Sₛ].
    pub rho: f64,
    /// Measured mean stage sojourn (wait + service) seconds.
    pub measured: f64,
    /// Predicted mean stage sojourn `1/(μₛ−λₛ)`; infinite at ρₛ ≥ 1.
    pub predicted: f64,
    /// Whether both measured and predicted sojourns are below
    /// [`MEASUREMENT_FLOOR_SECONDS`] — too small for a meaningful relative
    /// comparison.
    pub below_floor: bool,
    /// |measured − predicted| / predicted, when the prediction is finite
    /// and positive and the stage is not [`TandemStageRow::below_floor`].
    pub relative_error: Option<f64>,
    /// |measured − predicted| seconds, when the prediction is finite — the
    /// honest error statistic for sub-floor stages.
    pub absolute_error: Option<f64>,
}

/// Per-stage queueing comparison for a tandem of stage queues, plus the
/// end-to-end reconciliation: the population-weighted sum of per-stage
/// sojourns must reconstruct the measured end-to-end sojourn (the paper's
/// per-service decomposition, checked against its own total).
#[derive(Debug, Clone, PartialEq)]
pub struct TandemComparison {
    /// One row per stage, in input order.
    pub rows: Vec<TandemStageRow>,
    /// Measured end-to-end mean sojourn seconds.
    pub measured_total: f64,
    /// End-to-end mean reconstructed from the per-stage measurements:
    /// Σₛ (completionsₛ / queries) · (waitₛ + serviceₛ).
    pub reconstructed_total: f64,
}

impl TandemComparison {
    /// Lines per-stage measurements over a window of `wall_seconds` (in
    /// which `queries` queries completed end-to-end with mean sojourn
    /// `measured_total`) against independent per-stage M/M/1 models.
    ///
    /// Stages with no completions or non-positive mean service are carried
    /// as unpredicted rows (no model can be fit), not dropped.
    pub fn against(
        wall_seconds: f64,
        queries: u64,
        measured_total: f64,
        stages: &[StageMeasurement],
    ) -> Self {
        let mut reconstructed_total = 0.0;
        let rows = stages
            .iter()
            .map(|s| {
                if queries > 0 {
                    reconstructed_total +=
                        (s.completions as f64 / queries as f64) * s.mean_sojourn();
                }
                let lambda = if wall_seconds > 0.0 {
                    s.completions as f64 / wall_seconds
                } else {
                    0.0
                };
                let measured = s.mean_sojourn();
                let (rho, predicted) = if s.mean_service > 0.0 && s.completions > 0 {
                    let model = Mm1::from_service_time(s.mean_service);
                    (lambda / model.mu, model.latency(lambda))
                } else {
                    (0.0, f64::NAN)
                };
                let below_floor = predicted.is_finite()
                    && measured < MEASUREMENT_FLOOR_SECONDS
                    && predicted < MEASUREMENT_FLOOR_SECONDS;
                let relative_error = (!below_floor && predicted.is_finite() && predicted > 0.0)
                    .then(|| (measured - predicted).abs() / predicted);
                let absolute_error = predicted.is_finite().then(|| (measured - predicted).abs());
                TandemStageRow {
                    stage: s.stage.clone(),
                    lambda,
                    rho,
                    measured,
                    predicted,
                    below_floor,
                    relative_error,
                    absolute_error,
                }
            })
            .collect();
        Self {
            rows,
            measured_total,
            reconstructed_total,
        }
    }

    /// |reconstructed − measured| / measured for the end-to-end mean;
    /// `None` when the measured total is not positive.
    pub fn reconstruction_error(&self) -> Option<f64> {
        (self.measured_total > 0.0)
            .then(|| (self.reconstructed_total - self.measured_total).abs() / self.measured_total)
    }

    /// Mean per-stage relative error over the stable (finite-prediction)
    /// stages, excluding sub-floor stages (see
    /// [`MEASUREMENT_FLOOR_SECONDS`]); `None` when no stage qualifies.
    pub fn mean_relative_error(&self) -> Option<f64> {
        let errors: Vec<f64> = self.rows.iter().filter_map(|r| r.relative_error).collect();
        if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }

    /// Worst per-stage relative error over the stable stages.
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.relative_error)
            .max_by(|a, b| a.partial_cmp(b).expect("finite errors"))
    }
}

/// One measured shed-rate operating point of a shed-on-full admission
/// policy: at offered load ρ, `shed` of `offered` arrivals were rejected
/// because the bounded admission queue (system capacity `capacity`,
/// waiting room plus servers) was full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPoint {
    /// Offered load ρ = λ/μ.
    pub rho: f64,
    /// Total system capacity K of the admission queue (queue depth plus
    /// in-service slots).
    pub capacity: usize,
    /// Arrivals offered during the window.
    pub offered: u64,
    /// Arrivals shed because the queue was full.
    pub shed: u64,
}

impl ShedPoint {
    /// The measured shed fraction (0 when nothing was offered).
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// One shed-rate measurement lined up against the M/M/1/K blocking
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedRow {
    /// Offered load ρ.
    pub rho: f64,
    /// Measured shed fraction.
    pub measured: f64,
    /// Predicted blocking probability
    /// [`mm1k_blocking_probability`]`(rho, capacity)`.
    pub predicted: f64,
    /// |measured − predicted|, an absolute probability gap (relative error
    /// explodes when the prediction is a near-zero tail probability).
    pub absolute_error: f64,
}

/// Measured shed rates of shed-on-full admission control lined up against
/// the closed-form M/M/1/K blocking probability — the admission-control
/// analogue of [`QueueComparison`]. As there, the model is an
/// approximation (the runtime is a tandem with general service times, not
/// one exponential server) and the error column is the point, not a
/// residual to hide.
#[derive(Debug, Clone, PartialEq)]
pub struct ShedComparison {
    /// One row per measured point, in input order.
    pub rows: Vec<ShedRow>,
}

impl ShedComparison {
    /// Lines each measured point up against its own M/M/1/K prediction.
    pub fn against(points: &[ShedPoint]) -> Self {
        let rows = points
            .iter()
            .map(|p| {
                let measured = p.shed_rate();
                let predicted = mm1k_blocking_probability(p.rho, p.capacity);
                ShedRow {
                    rho: p.rho,
                    measured,
                    predicted,
                    absolute_error: (measured - predicted).abs(),
                }
            })
            .collect();
        Self { rows }
    }

    /// Worst absolute probability gap over all points.
    pub fn worst_absolute_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .map(|r| r.absolute_error)
            .max_by(|a, b| a.partial_cmp(b).expect("finite errors"))
    }
}

/// One measured operating point of a replica-cluster throughput sweep: an
/// N-replica sharded cluster (`sirius-server`'s `SiriusCluster`) driven to
/// saturation under one routing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPoint {
    /// Replica count N.
    pub replicas: u32,
    /// Routing policy name (`round_robin`, `consistent_hash`,
    /// `least_sojourn`).
    pub route: String,
    /// Measured saturated throughput in queries per second.
    pub qps: f64,
    /// Measured median sojourn in milliseconds.
    pub p50_ms: f64,
    /// Measured p99 sojourn in milliseconds.
    pub p99_ms: f64,
}

/// One cluster measurement normalized against its own single-replica
/// baseline and against an accelerated per-machine design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterRow {
    /// Replica count N.
    pub replicas: u32,
    /// Routing policy name.
    pub route: String,
    /// Measured saturated throughput in queries per second.
    pub qps: f64,
    /// Throughput speedup over the same policy's 1-replica point; `None`
    /// when that baseline was not measured.
    pub speedup: Option<f64>,
    /// Scaling efficiency `speedup / N` (1 is perfectly linear scale-out;
    /// the shared-memory replicas contend for cores, so real sweeps sit
    /// below it).
    pub efficiency: Option<f64>,
    /// How many machines of the accelerated homogeneous design (Table 8's
    /// per-machine throughput improvement) deliver the same throughput as
    /// these N multicore replicas: `speedup / accel_improvement`. Below N
    /// means the accelerated scale-up beats this scale-out.
    pub accelerated_equivalent: Option<f64>,
    /// Measured median sojourn in milliseconds.
    pub p50_ms: f64,
    /// Measured p99 sojourn in milliseconds.
    pub p99_ms: f64,
}

/// Measured N-replica scaling lined up against the paper's datacenter
/// designs — the cluster analogue of [`ShedComparison`]. Speedup-vs-N is
/// computed per routing policy against that policy's own 1-replica
/// baseline; the `accelerated_equivalent` column restates each point in
/// machines of a Table 8 homogeneous accelerated design
/// (`sirius_dcsim::design::homogeneous_throughput_improvement`), which is
/// the paper's scale-out-vs-scale-up trade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterComparison {
    /// Per-machine throughput improvement of the accelerated design the
    /// rows are restated against (1 for a multicore-only datacenter).
    pub accel_improvement: f64,
    /// One row per measured point, in input order.
    pub rows: Vec<ClusterRow>,
}

impl ClusterComparison {
    /// Normalizes `points` per routing policy against that policy's
    /// 1-replica point, restating throughput in machines of an accelerated
    /// design with per-machine improvement `accel_improvement`.
    pub fn against(points: &[ClusterPoint], accel_improvement: f64) -> Self {
        let baseline = |route: &str| {
            points
                .iter()
                .find(|p| p.replicas == 1 && p.route == route && p.qps > 0.0)
                .map(|p| p.qps)
        };
        let rows = points
            .iter()
            .map(|p| {
                let speedup = baseline(&p.route).map(|base| p.qps / base);
                ClusterRow {
                    replicas: p.replicas,
                    route: p.route.clone(),
                    qps: p.qps,
                    speedup,
                    efficiency: speedup.map(|s| s / f64::from(p.replicas.max(1))),
                    accelerated_equivalent: (accel_improvement > 0.0)
                        .then_some(())
                        .and(speedup)
                        .map(|s| s / accel_improvement),
                    p50_ms: p.p50_ms,
                    p99_ms: p.p99_ms,
                }
            })
            .collect();
        Self {
            accel_improvement,
            rows,
        }
    }

    /// The measured speedup of one `(replicas, route)` point.
    pub fn speedup_at(&self, replicas: u32, route: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.replicas == replicas && r.route == route)
            .and_then(|r| r.speedup)
    }

    /// Worst (smallest) scaling efficiency over the multi-replica points —
    /// single-replica rows are trivially 1 and excluded.
    pub fn worst_efficiency(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.replicas > 1)
            .filter_map(|r| r.efficiency)
            .min_by(|a, b| a.partial_cmp(b).expect("finite efficiencies"))
    }

    /// Best (largest) measured speedup over all points.
    pub fn best_speedup(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.speedup)
            .max_by(|a, b| a.partial_cmp(b).expect("finite speedups"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_generated_points_have_zero_error() {
        let model = Mm1 { mu: 20.0 };
        let points: Vec<MeasuredPoint> = [4.0, 10.0, 16.0]
            .iter()
            .map(|&lambda| MeasuredPoint {
                lambda,
                mean_latency: model.latency(lambda),
            })
            .collect();
        let cmp = QueueComparison::against(model, &points);
        assert_eq!(cmp.rows.len(), 3);
        for row in &cmp.rows {
            assert!(row.relative_error.expect("stable") < 1e-12);
            assert!(row.rho < 1.0);
        }
        assert!(cmp.mean_relative_error().expect("stable") < 1e-12);
        assert!(cmp.worst_relative_error().expect("stable") < 1e-12);
    }

    #[test]
    fn overloaded_points_have_no_relative_error() {
        let cmp = QueueComparison::against_service_time(
            0.1,
            &[
                MeasuredPoint {
                    lambda: 5.0,
                    mean_latency: 0.25,
                },
                MeasuredPoint {
                    lambda: 12.0,
                    mean_latency: 40.0,
                },
            ],
        );
        assert!((cmp.mu - 10.0).abs() < 1e-12);
        assert!(cmp.rows[0].relative_error.is_some());
        assert_eq!(cmp.rows[1].predicted, f64::INFINITY);
        assert!(cmp.rows[1].relative_error.is_none());
        // Summary statistics only cover the stable point.
        let expected = (0.25 - 0.2f64).abs() / 0.2;
        assert!((cmp.mean_relative_error().unwrap() - expected).abs() < 1e-12);
        assert_eq!(
            cmp.mean_relative_error(),
            cmp.worst_relative_error(),
            "single stable point"
        );
    }

    #[test]
    fn all_unstable_yields_no_summary() {
        let cmp = QueueComparison::against(
            Mm1 { mu: 1.0 },
            &[MeasuredPoint {
                lambda: 2.0,
                mean_latency: 10.0,
            }],
        );
        assert!(cmp.mean_relative_error().is_none());
        assert!(cmp.worst_relative_error().is_none());
    }

    #[test]
    fn tandem_reconstruction_weights_stages_by_population() {
        // 100 queries in 10 s; 40 exit at classify (actions), 60 continue.
        let stages = vec![
            StageMeasurement {
                stage: "asr".into(),
                completions: 100,
                mean_wait: 0.01,
                mean_service: 0.04,
            },
            StageMeasurement {
                stage: "classify".into(),
                completions: 100,
                mean_wait: 0.0,
                mean_service: 0.001,
            },
            StageMeasurement {
                stage: "qa".into(),
                completions: 60,
                mean_wait: 0.02,
                mean_service: 0.08,
            },
        ];
        // Exact weighted total: 0.05 + 0.001 + 0.6·0.1 = 0.111.
        let cmp = TandemComparison::against(10.0, 100, 0.111, &stages);
        assert_eq!(cmp.rows.len(), 3);
        assert!((cmp.reconstructed_total - 0.111).abs() < 1e-12);
        assert!(cmp.reconstruction_error().unwrap() < 1e-9);
        // Per-stage λ reflects each stage's own population.
        assert!((cmp.rows[0].lambda - 10.0).abs() < 1e-12);
        assert!((cmp.rows[2].lambda - 6.0).abs() < 1e-12);
        // ρ = λ·E[S]: ASR at 10·0.04 = 0.4.
        assert!((cmp.rows[0].rho - 0.4).abs() < 1e-12);
        assert!(cmp.mean_relative_error().is_some());
        assert!(cmp.worst_relative_error().unwrap() >= cmp.mean_relative_error().unwrap());
    }

    #[test]
    fn sub_floor_stages_report_absolute_error_and_stay_out_of_the_mean() {
        // Regression: a 45 µs classify stage against a 17 µs prediction —
        // both below the 0.1 ms timer floor — used to contribute a 1.75
        // relative error and drag the tandem mean from ~0.1 to ~0.49. It
        // must report the 28 µs absolute gap instead and be excluded.
        let stages = vec![
            StageMeasurement {
                stage: "asr".into(),
                completions: 100,
                mean_wait: 0.01,
                mean_service: 0.04,
            },
            StageMeasurement {
                stage: "classify".into(),
                completions: 100,
                mean_wait: 0.0,
                mean_service: 0.000_045,
            },
        ];
        let cmp = TandemComparison::against(10.0, 100, 0.05, &stages);
        let asr = &cmp.rows[0];
        let classify = &cmp.rows[1];
        assert!(!asr.below_floor);
        assert!(asr.relative_error.is_some());
        assert!(asr.absolute_error.is_some());
        assert!(classify.below_floor, "45 µs sojourn is below the floor");
        assert!(classify.relative_error.is_none());
        let gap = classify.absolute_error.expect("finite prediction");
        assert!(
            gap < MEASUREMENT_FLOOR_SECONDS,
            "sub-floor absolute gap {gap}"
        );
        // The mean now covers only the ASR stage.
        assert_eq!(cmp.mean_relative_error(), asr.relative_error);
        assert_eq!(cmp.worst_relative_error(), asr.relative_error);
    }

    #[test]
    fn tandem_handles_empty_and_saturated_stages() {
        let stages = vec![
            // Saturated: λ = 30/s against μ = 20/s → no finite prediction.
            StageMeasurement {
                stage: "asr".into(),
                completions: 300,
                mean_wait: 1.0,
                mean_service: 0.05,
            },
            // Idle stage: no completions, no model.
            StageMeasurement {
                stage: "imm".into(),
                completions: 0,
                mean_wait: 0.0,
                mean_service: 0.0,
            },
        ];
        let cmp = TandemComparison::against(10.0, 300, 1.05, &stages);
        assert!(cmp.rows[0].rho > 1.0);
        assert!(cmp.rows[0].relative_error.is_none());
        assert!(cmp.rows[1].predicted.is_nan());
        assert!(cmp.rows[1].relative_error.is_none());
        assert!(cmp.mean_relative_error().is_none());
        // The idle stage contributes nothing to the reconstruction.
        assert!((cmp.reconstructed_total - 1.05).abs() < 1e-12);
        // Degenerate windows are handled, not divided by.
        let degenerate = TandemComparison::against(0.0, 0, 0.0, &stages);
        assert_eq!(degenerate.rows[0].lambda, 0.0);
        assert!(degenerate.reconstruction_error().is_none());
    }

    #[test]
    fn shed_comparison_tracks_blocking_probability() {
        let points = vec![
            // Model-generated: 1000 offered at ρ = 1 with K = 9 → 100 shed.
            ShedPoint {
                rho: 1.0,
                capacity: 9,
                offered: 1000,
                shed: 100,
            },
            // Overload point with a deliberate measurement gap.
            ShedPoint {
                rho: 2.0,
                capacity: 1,
                offered: 100,
                shed: 80,
            },
            // Nothing offered: shed rate is defined as zero.
            ShedPoint {
                rho: 0.5,
                capacity: 4,
                offered: 0,
                shed: 0,
            },
        ];
        let cmp = ShedComparison::against(&points);
        assert!(cmp.rows[0].absolute_error < 1e-12);
        // ρ = 2, K = 1 → P = ρ/(1+ρ) = 2/3; measured 0.8 → gap 0.1333…
        assert!((cmp.rows[1].predicted - 2.0 / 3.0).abs() < 1e-12);
        assert!((cmp.rows[1].absolute_error - (0.8 - 2.0 / 3.0)).abs() < 1e-12);
        assert_eq!(cmp.rows[2].measured, 0.0);
        assert_eq!(cmp.worst_absolute_error(), Some(cmp.rows[1].absolute_error));
        assert!(ShedComparison::against(&[])
            .worst_absolute_error()
            .is_none());
    }

    fn cluster_point(replicas: u32, route: &str, qps: f64) -> ClusterPoint {
        ClusterPoint {
            replicas,
            route: route.into(),
            qps,
            p50_ms: 10.0,
            p99_ms: 25.0,
        }
    }

    #[test]
    fn cluster_scaling_normalizes_per_route() {
        let points = vec![
            cluster_point(1, "round_robin", 10.0),
            cluster_point(2, "round_robin", 18.0),
            cluster_point(4, "round_robin", 30.0),
            cluster_point(1, "least_sojourn", 12.0),
            cluster_point(4, "least_sojourn", 42.0),
        ];
        let cmp = ClusterComparison::against(&points, 2.5);
        assert_eq!(cmp.rows.len(), 5);
        // Speedups are against the same route's own baseline.
        assert!((cmp.speedup_at(2, "round_robin").unwrap() - 1.8).abs() < 1e-12);
        assert!((cmp.speedup_at(4, "least_sojourn").unwrap() - 3.5).abs() < 1e-12);
        // Efficiency = speedup / N; worst over the multi-replica points.
        assert!((cmp.rows[2].efficiency.unwrap() - 0.75).abs() < 1e-12);
        assert!((cmp.worst_efficiency().unwrap() - 0.75).abs() < 1e-12);
        assert!((cmp.best_speedup().unwrap() - 3.5).abs() < 1e-12);
        // 3.5x over one multicore replica ≙ 1.4 machines of a 2.5x design.
        assert!((cmp.rows[4].accelerated_equivalent.unwrap() - 1.4).abs() < 1e-12);
        // The trivial baselines carry speedup 1, efficiency 1.
        assert!((cmp.rows[0].speedup.unwrap() - 1.0).abs() < 1e-12);
        assert!((cmp.rows[0].efficiency.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_rows_without_a_baseline_carry_no_speedup() {
        // No 1-replica point for this route, and a degenerate accelerated
        // improvement: nothing to normalize against.
        let points = vec![cluster_point(4, "consistent_hash", 30.0)];
        let cmp = ClusterComparison::against(&points, 0.0);
        assert_eq!(cmp.rows[0].speedup, None);
        assert_eq!(cmp.rows[0].efficiency, None);
        assert_eq!(cmp.rows[0].accelerated_equivalent, None);
        assert!(cmp.worst_efficiency().is_none());
        assert!(cmp.best_speedup().is_none());
        assert!(cmp.speedup_at(1, "consistent_hash").is_none());
        // A zero-throughput "baseline" is not a baseline either.
        let broken = ClusterComparison::against(
            &[
                cluster_point(1, "round_robin", 0.0),
                cluster_point(2, "round_robin", 18.0),
            ],
            2.5,
        );
        assert_eq!(broken.rows[1].speedup, None);
    }

    #[test]
    fn measured_above_model_reports_positive_error() {
        // A tandem pipeline has more queueing than a single M/M/1 server;
        // the comparison must report that gap, not mask it.
        let model = Mm1 { mu: 10.0 };
        let cmp = QueueComparison::against(
            model,
            &[MeasuredPoint {
                lambda: 5.0,
                mean_latency: 0.3,
            }],
        );
        let err = cmp.rows[0].relative_error.unwrap();
        assert!((err - 0.5).abs() < 1e-12, "expected 50% gap, got {err}");
    }
}
