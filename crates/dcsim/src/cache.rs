//! Cache-hit-adjusted M/M/1 queueing model.
//!
//! The serving runtime's keyed result caches (`sirius-cache` wired into
//! `sirius-server`) deflect a fraction `h` of admitted queries away from the
//! Classify/IMM/QA backend: a hit is answered straight out of the ASR stage
//! at a near-constant cost `t_hit`, and only the remaining `(1 − h)·λ`
//! misses reach the backend queue. The M/M/1 picture of the server
//! therefore changes in two coupled ways:
//!
//! * **Offered load deflection** — the backend sees arrival rate
//!   `λ_eff = λ·(1 − h)`, so at fixed λ its utilization drops from `λ/μ` to
//!   `λ(1−h)/μ`.
//! * **Capacity multiplication** — conversely, the λ that drives the
//!   backend to any fixed utilization grows by `1/(1 − h)`; at the limit
//!   the cache multiplies sustainable throughput at a latency bound by the
//!   same factor (plus the slack the bound leaves for the cheap hits).
//!
//! The predicted mean sojourn mixes the two populations:
//!
//! ```text
//! W(λ) = h·t_hit + (1 − h) · 1/(μ − λ(1−h))
//! ```
//!
//! With `h = 0` this degenerates to the plain [`Mm1`] latency, which is the
//! anchor unit test of the module. [`CacheComparison`] lines the prediction
//! up against measured sweep points from the benchmark harness the same way
//! `compare::QueueComparison` does for the uncached model — the relative
//! error column is the deliverable, not a residual to hide.

use crate::queue::Mm1;

/// An M/M/1 backend fronted by a result cache with hit ratio `hit_ratio`
/// and per-hit service cost `hit_cost` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedMm1 {
    /// The backend queue (Classify/IMM/QA path) serving cache misses.
    pub backend: Mm1,
    /// Fraction of admitted queries answered from the cache, in `[0, 1)`.
    pub hit_ratio: f64,
    /// Mean time to serve a cache hit, in seconds (ASR + lookup; no
    /// backend queueing).
    pub hit_cost: f64,
}

impl CachedMm1 {
    /// Creates a cached model over `backend`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= hit_ratio < 1` (a cache that answers everything
    /// leaves no backend to model) and `hit_cost >= 0`.
    pub fn new(backend: Mm1, hit_ratio: f64, hit_cost: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&hit_ratio),
            "hit ratio must be in [0, 1)"
        );
        assert!(hit_cost >= 0.0, "hit cost must be non-negative");
        Self {
            backend,
            hit_ratio,
            hit_cost,
        }
    }

    /// The arrival rate the backend actually sees at offered rate
    /// `lambda`: `λ·(1 − h)`.
    pub fn effective_lambda(&self, lambda: f64) -> f64 {
        lambda * (1.0 - self.hit_ratio)
    }

    /// Backend utilization at offered rate `lambda`:
    /// `ρ_eff = λ(1−h)/μ`.
    pub fn effective_rho(&self, lambda: f64) -> f64 {
        self.effective_lambda(lambda) / self.backend.mu
    }

    /// Predicted mean sojourn across both populations at offered rate
    /// `lambda`: `h·t_hit + (1−h)/(μ − λ(1−h))`. Infinite once the
    /// deflected load saturates the backend (`λ(1−h) ≥ μ`).
    pub fn latency(&self, lambda: f64) -> f64 {
        let miss = self.backend.latency(self.effective_lambda(lambda));
        if miss.is_infinite() {
            return f64::INFINITY;
        }
        self.hit_ratio * self.hit_cost + (1.0 - self.hit_ratio) * miss
    }

    /// Maximum offered rate λ that keeps the *backend* utilization at or
    /// below `rho`: `ρ·μ / (1 − h)` — the capacity multiplier `1/(1 − h)`
    /// over the uncached server.
    pub fn max_lambda_at_rho(&self, rho: f64) -> f64 {
        rho * self.backend.mu / (1.0 - self.hit_ratio)
    }

    /// Maximum offered rate that keeps the predicted mean sojourn at or
    /// below `latency_bound` seconds. Zero if the bound is unreachable even
    /// at zero load.
    pub fn max_throughput(&self, latency_bound: f64) -> f64 {
        if self.latency(0.0) > latency_bound {
            return 0.0;
        }
        // Solve h·t + (1−h)/(μ − λ(1−h)) = B for λ.
        let h = self.hit_ratio;
        let slack = latency_bound - h * self.hit_cost;
        // latency(0) <= bound guarantees slack >= (1−h)/μ > 0.
        (self.backend.mu - (1.0 - h) / slack).max(0.0) / (1.0 - h)
    }
}

/// One measured operating point of a cache-enabled server sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePoint {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// Measured aggregate cache hit ratio over the point's window.
    pub hit_ratio: f64,
    /// Measured mean sojourn time in seconds.
    pub mean_latency: f64,
}

/// One measured point lined up against the cached model's prediction,
/// evaluated at the point's own *measured* hit ratio (the model supplies
/// `μ` and `t_hit`; the workload supplies `h`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheRow {
    /// Offered arrival rate λ in queries per second.
    pub lambda: f64,
    /// The point's measured hit ratio.
    pub hit_ratio: f64,
    /// Backend utilization `λ(1−h)/μ` under the model.
    pub effective_rho: f64,
    /// Measured mean sojourn seconds.
    pub measured: f64,
    /// Predicted mean sojourn seconds; infinite past backend saturation.
    pub predicted: f64,
    /// |measured − predicted| / predicted, when the prediction is finite
    /// and positive.
    pub relative_error: Option<f64>,
}

/// A swept-load comparison of measured cache-enabled sojourn times against
/// the [`CachedMm1`] prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheComparison {
    /// The backend service rate μ (queries/second).
    pub mu: f64,
    /// The per-hit cost `t_hit` used for every row, in seconds.
    pub hit_cost: f64,
    /// One row per measured operating point, in input order.
    pub rows: Vec<CacheRow>,
}

impl CacheComparison {
    /// Lines `points` up against a backend with service rate `backend.mu`
    /// and per-hit cost `hit_cost`, evaluating each row at its own measured
    /// hit ratio.
    ///
    /// # Panics
    ///
    /// Panics if any point's hit ratio is outside `[0, 1)` or
    /// `hit_cost < 0`.
    pub fn against(backend: Mm1, hit_cost: f64, points: &[CachePoint]) -> Self {
        let rows = points
            .iter()
            .map(|p| {
                let model = CachedMm1::new(backend, p.hit_ratio, hit_cost);
                let predicted = model.latency(p.lambda);
                let relative_error = (predicted.is_finite() && predicted > 0.0)
                    .then(|| (p.mean_latency - predicted).abs() / predicted);
                CacheRow {
                    lambda: p.lambda,
                    hit_ratio: p.hit_ratio,
                    effective_rho: model.effective_rho(p.lambda),
                    measured: p.mean_latency,
                    predicted,
                    relative_error,
                }
            })
            .collect();
        Self {
            mu: backend.mu,
            hit_cost,
            rows,
        }
    }

    /// The worst finite relative error across rows, if any row has one.
    pub fn worst_relative_error(&self) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.relative_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hit_ratio_reduces_to_plain_mm1() {
        let backend = Mm1 { mu: 10.0 };
        let cached = CachedMm1::new(backend, 0.0, 0.002);
        for lambda in [0.0, 2.5, 7.0, 9.9, 11.0] {
            let plain = backend.latency(lambda);
            let mixed = cached.latency(lambda);
            if plain.is_infinite() {
                assert_eq!(mixed, f64::INFINITY);
            } else {
                assert!((mixed - plain).abs() < 1e-12, "λ={lambda}");
            }
        }
        assert!((cached.max_throughput(0.5) - backend.max_throughput(0.5)).abs() < 1e-9);
    }

    #[test]
    fn half_hit_ratio_doubles_capacity_at_fixed_backend_utilization() {
        let backend = Mm1 { mu: 10.0 };
        let plain = CachedMm1::new(backend, 0.0, 0.0);
        let cached = CachedMm1::new(backend, 0.5, 0.0);
        let rho = 0.8;
        assert!((cached.max_lambda_at_rho(rho) / plain.max_lambda_at_rho(rho) - 2.0).abs() < 1e-12);
        // The same λ loads the cached backend half as hard.
        assert!((cached.effective_rho(8.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn latency_mixes_hit_and_miss_populations() {
        let backend = Mm1 { mu: 10.0 }; // 100 ms bare service
        let cached = CachedMm1::new(backend, 0.5, 0.004);
        // λ = 10 saturates the plain server but the cached backend sees
        // λ_eff = 5, so W = 0.5·0.004 + 0.5·(1/(10−5)) = 0.102.
        assert_eq!(backend.latency(10.0), f64::INFINITY);
        assert!((cached.latency(10.0) - 0.102).abs() < 1e-12);
        // Saturation moves out to λ(1−h) ≥ μ, i.e. λ ≥ 20.
        assert_eq!(cached.latency(20.0), f64::INFINITY);
        assert!(cached.latency(19.9).is_finite());
    }

    #[test]
    fn max_throughput_solves_the_mixed_latency_bound() {
        let cached = CachedMm1::new(Mm1 { mu: 10.0 }, 0.5, 0.004);
        let bound = 0.25;
        let lambda = cached.max_throughput(bound);
        assert!(lambda > 0.0);
        assert!((cached.latency(lambda) - bound).abs() < 1e-9);
        // An unreachable bound yields zero.
        assert_eq!(cached.max_throughput(0.01), 0.0);
    }

    #[test]
    fn comparison_rows_line_up_and_report_error() {
        let points = [
            CachePoint {
                lambda: 4.0,
                hit_ratio: 0.0,
                mean_latency: 0.18,
            },
            CachePoint {
                lambda: 12.0,
                hit_ratio: 0.5,
                mean_latency: 0.14,
            },
            CachePoint {
                lambda: 25.0,
                hit_ratio: 0.5,
                mean_latency: 0.9,
            },
        ];
        let cmp = CacheComparison::against(Mm1 { mu: 10.0 }, 0.004, &points);
        assert_eq!(cmp.rows.len(), 3);
        // Row 0: uncached point matches the plain model exactly.
        assert!((cmp.rows[0].predicted - 1.0 / 6.0).abs() < 1e-12);
        // Row 1: deflected load keeps the point stable.
        assert!((cmp.rows[1].effective_rho - 0.6).abs() < 1e-12);
        assert!(cmp.rows[1].predicted.is_finite());
        // Row 2: λ_eff = 12.5 > μ — saturated, no relative error.
        assert_eq!(cmp.rows[2].predicted, f64::INFINITY);
        assert!(cmp.rows[2].relative_error.is_none());
        let worst = cmp.worst_relative_error().unwrap();
        assert!(worst > 0.0 && worst.is_finite());
    }

    #[test]
    #[should_panic(expected = "hit ratio")]
    fn full_hit_ratio_is_rejected() {
        CachedMm1::new(Mm1 { mu: 10.0 }, 1.0, 0.001);
    }
}
