//! M/M/1 queueing model for leaf servers (paper Figure 17).
//!
//! The paper models each server as an M/M/1 queue: at load `ρ = λ/μ` the
//! mean sojourn (queueing + service) time is `W = 1 / (μ − λ)`. An
//! accelerated server with service-rate speedup `S` can then absorb more
//! load at the same latency; at 100% load the throughput gain degenerates to
//! `S` itself (Figure 16 is "a lower bound of throughput improvement for a
//! queuing system").

/// An M/M/1 queue with service rate `mu` (queries/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Service rate μ in queries per second.
    pub mu: f64,
}

impl Mm1 {
    /// Creates a queue from the mean service time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `service_time <= 0`.
    pub fn from_service_time(service_time: f64) -> Self {
        assert!(service_time > 0.0, "service time must be positive");
        Self {
            mu: 1.0 / service_time,
        }
    }

    /// Mean latency (waiting + service) at arrival rate `lambda`.
    ///
    /// Returns `f64::INFINITY` for `lambda >= mu` (unstable queue).
    pub fn latency(&self, lambda: f64) -> f64 {
        if lambda >= self.mu {
            f64::INFINITY
        } else {
            1.0 / (self.mu - lambda)
        }
    }

    /// Mean latency at utilization `rho = lambda / mu`.
    pub fn latency_at_load(&self, rho: f64) -> f64 {
        self.latency(rho * self.mu)
    }

    /// Maximum arrival rate that keeps mean latency at or below
    /// `latency_bound` seconds. Zero if the bound is below the bare service
    /// time.
    pub fn max_throughput(&self, latency_bound: f64) -> f64 {
        if latency_bound <= 0.0 {
            return 0.0;
        }
        (self.mu - 1.0 / latency_bound).max(0.0)
    }
}

/// Throughput improvement of a server accelerated by `speedup`, relative to
/// the baseline server running at utilization `rho`, under the constraint
/// that mean latency may not exceed the baseline's (paper Figure 17).
///
/// Closed form: the baseline at load `ρ` has latency `1/(μ(1−ρ))`; the
/// accelerated server (rate `Sμ`) matching that latency absorbs
/// `λ' = Sμ − μ(1−ρ)`, so the improvement is `(S − (1 − ρ)) / ρ`.
///
/// # Panics
///
/// Panics unless `0 < rho <= 1` and `speedup >= 1`.
pub fn throughput_improvement_at_load(speedup: f64, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "load must be in (0, 1]");
    assert!(speedup >= 1.0, "speedup must be >= 1");
    (speedup - (1.0 - rho)) / rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_closed_form() {
        let q = Mm1 { mu: 10.0 };
        assert!((q.latency(0.0) - 0.1).abs() < 1e-12);
        assert!((q.latency(5.0) - 0.2).abs() < 1e-12);
        assert_eq!(q.latency(10.0), f64::INFINITY);
        assert_eq!(q.latency(12.0), f64::INFINITY);
    }

    #[test]
    fn latency_is_monotone_in_load() {
        let q = Mm1::from_service_time(0.05);
        let mut prev = 0.0;
        for i in 1..20 {
            let rho = i as f64 / 20.0;
            let l = q.latency_at_load(rho);
            assert!(l > prev, "latency must grow with load");
            prev = l;
        }
    }

    #[test]
    fn max_throughput_inverts_latency() {
        let q = Mm1 { mu: 20.0 };
        let bound = q.latency(15.0);
        assert!((q.max_throughput(bound) - 15.0).abs() < 1e-9);
        assert_eq!(q.max_throughput(1.0 / 25.0), 0.0);
    }

    #[test]
    fn improvement_equals_speedup_at_full_load() {
        // Figure 16 is the ρ = 1 lower bound of Figure 17.
        for s in [2.0, 10.0, 54.7] {
            assert!((throughput_improvement_at_load(s, 1.0) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn improvement_grows_as_load_drops() {
        // Paper: "the lower the server load, the bigger impact latency
        // reduction would have on throughput improvement."
        let mut prev = 0.0;
        for rho in [0.9, 0.7, 0.5, 0.3, 0.1] {
            let imp = throughput_improvement_at_load(10.0, rho);
            assert!(imp > prev, "rho={rho}");
            prev = imp;
        }
        assert!(throughput_improvement_at_load(10.0, 0.1) > 90.0);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_panics() {
        let _ = throughput_improvement_at_load(2.0, 0.0);
    }
}
