//! M/M/1 queueing model for leaf servers (paper Figure 17).
//!
//! The paper models each server as an M/M/1 queue: at load `ρ = λ/μ` the
//! mean sojourn (queueing + service) time is `W = 1 / (μ − λ)`. An
//! accelerated server with service-rate speedup `S` can then absorb more
//! load at the same latency; at 100% load the throughput gain degenerates to
//! `S` itself (Figure 16 is "a lower bound of throughput improvement for a
//! queuing system").

/// An M/M/1 queue with service rate `mu` (queries/second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Service rate μ in queries per second.
    pub mu: f64,
}

impl Mm1 {
    /// Creates a queue from the mean service time in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `service_time <= 0`.
    pub fn from_service_time(service_time: f64) -> Self {
        assert!(service_time > 0.0, "service time must be positive");
        Self {
            mu: 1.0 / service_time,
        }
    }

    /// Mean latency (waiting + service) at arrival rate `lambda`.
    ///
    /// Returns `f64::INFINITY` for `lambda >= mu` (unstable queue).
    pub fn latency(&self, lambda: f64) -> f64 {
        if lambda >= self.mu {
            f64::INFINITY
        } else {
            1.0 / (self.mu - lambda)
        }
    }

    /// Mean latency at utilization `rho = lambda / mu`.
    pub fn latency_at_load(&self, rho: f64) -> f64 {
        self.latency(rho * self.mu)
    }

    /// Maximum arrival rate that keeps mean latency at or below
    /// `latency_bound` seconds. Zero if the bound is below the bare service
    /// time.
    pub fn max_throughput(&self, latency_bound: f64) -> f64 {
        if latency_bound <= 0.0 {
            return 0.0;
        }
        (self.mu - 1.0 / latency_bound).max(0.0)
    }
}

/// Blocking (shed) probability of an M/M/1/K queue: a single exponential
/// server with `capacity` total system slots (queue positions plus the one
/// in service) that rejects arrivals finding the system full.
///
/// This is the closed-form model of shed-on-full admission control: the
/// staged runtime's bounded ASR queue *is* the finite waiting room, and the
/// measured shed fraction at offered load ρ should track
/// `P(block) = (1 − ρ)·ρ^K / (1 − ρ^(K+1))` (and `1/(K+1)` exactly at
/// ρ = 1). Unlike the plain [`Mm1`], the formula is well defined above
/// saturation: as ρ → ∞ the blocking probability approaches 1.
///
/// # Panics
///
/// Panics if `rho < 0` or `capacity == 0` (a system that can hold nothing
/// is not a queue).
pub fn mm1k_blocking_probability(rho: f64, capacity: usize) -> f64 {
    assert!(rho >= 0.0, "offered load must be non-negative");
    assert!(capacity > 0, "system capacity must be at least 1");
    let k = capacity as f64;
    if (rho - 1.0).abs() < 1e-12 {
        return 1.0 / (k + 1.0);
    }
    if rho > 1.0 {
        // ρ^K overflows for large K; multiplying numerator and denominator
        // by ρ^−(K+1) gives the equivalent form in inv = 1/ρ < 1.
        let inv = 1.0 / rho;
        return (1.0 - inv) / (1.0 - inv.powf(k + 1.0));
    }
    (1.0 - rho) * rho.powf(k) / (1.0 - rho.powf(k + 1.0))
}

/// Throughput improvement of a server accelerated by `speedup`, relative to
/// the baseline server running at utilization `rho`, under the constraint
/// that mean latency may not exceed the baseline's (paper Figure 17).
///
/// Closed form: the baseline at load `ρ` has latency `1/(μ(1−ρ))`; the
/// accelerated server (rate `Sμ`) matching that latency absorbs
/// `λ' = Sμ − μ(1−ρ)`, so the improvement is `(S − (1 − ρ)) / ρ`.
///
/// # Panics
///
/// Panics unless `0 < rho <= 1` and `speedup >= 1`.
pub fn throughput_improvement_at_load(speedup: f64, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "load must be in (0, 1]");
    assert!(speedup >= 1.0, "speedup must be >= 1");
    (speedup - (1.0 - rho)) / rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_matches_closed_form() {
        let q = Mm1 { mu: 10.0 };
        assert!((q.latency(0.0) - 0.1).abs() < 1e-12);
        assert!((q.latency(5.0) - 0.2).abs() < 1e-12);
        assert_eq!(q.latency(10.0), f64::INFINITY);
        assert_eq!(q.latency(12.0), f64::INFINITY);
    }

    #[test]
    fn latency_is_monotone_in_load() {
        let q = Mm1::from_service_time(0.05);
        let mut prev = 0.0;
        for i in 1..20 {
            let rho = i as f64 / 20.0;
            let l = q.latency_at_load(rho);
            assert!(l > prev, "latency must grow with load");
            prev = l;
        }
    }

    #[test]
    fn max_throughput_inverts_latency() {
        let q = Mm1 { mu: 20.0 };
        let bound = q.latency(15.0);
        assert!((q.max_throughput(bound) - 15.0).abs() < 1e-9);
        assert_eq!(q.max_throughput(1.0 / 25.0), 0.0);
    }

    #[test]
    fn improvement_equals_speedup_at_full_load() {
        // Figure 16 is the ρ = 1 lower bound of Figure 17.
        for s in [2.0, 10.0, 54.7] {
            assert!((throughput_improvement_at_load(s, 1.0) - s).abs() < 1e-12);
        }
    }

    #[test]
    fn improvement_grows_as_load_drops() {
        // Paper: "the lower the server load, the bigger impact latency
        // reduction would have on throughput improvement."
        let mut prev = 0.0;
        for rho in [0.9, 0.7, 0.5, 0.3, 0.1] {
            let imp = throughput_improvement_at_load(10.0, rho);
            assert!(imp > prev, "rho={rho}");
            prev = imp;
        }
        assert!(throughput_improvement_at_load(10.0, 0.1) > 90.0);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn zero_load_panics() {
        let _ = throughput_improvement_at_load(2.0, 0.0);
    }

    #[test]
    fn mm1k_blocking_matches_closed_form() {
        // K = 1 (no waiting room): P = ρ/(1+ρ) — the Erlang loss B(1, ρ).
        for rho in [0.2, 0.5, 2.0] {
            let expect = rho / (1.0 + rho);
            assert!(
                (mm1k_blocking_probability(rho, 1) - expect).abs() < 1e-12,
                "rho={rho}"
            );
        }
        // At ρ = 1 the K+1 system states are equiprobable.
        assert!((mm1k_blocking_probability(1.0, 16) - 1.0 / 17.0).abs() < 1e-12);
        // Direct form and rescaled form agree across the ρ = 1 boundary.
        let below = mm1k_blocking_probability(1.0 - 1e-9, 16);
        let above = mm1k_blocking_probability(1.0 + 1e-9, 16);
        assert!((below - above).abs() < 1e-6, "{below} vs {above}");
        // No blocking with an empty system, total blocking far past
        // saturation, and monotone in offered load between the two.
        assert_eq!(mm1k_blocking_probability(0.0, 8), 0.0);
        assert!(mm1k_blocking_probability(100.0, 8) > 0.98);
        let mut prev = -1.0;
        for i in 0..40 {
            let p = mm1k_blocking_probability(i as f64 * 0.1, 17);
            assert!(
                p >= prev && (0.0..=1.0).contains(&p),
                "rho={}",
                i as f64 * 0.1
            );
            prev = p;
        }
        // Huge K stays finite (the overflow-prone branch).
        let p = mm1k_blocking_probability(1.5, 10_000);
        assert!((p - (1.0 - 1.0 / 1.5)).abs() < 1e-9);
    }
}
