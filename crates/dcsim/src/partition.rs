//! Partitioned-datacenter sizing (paper Section 5.2.4, Table 9).
//!
//! A partitioned heterogeneous datacenter dedicates a pool of servers to
//! each service. Given a query mix and per-service single-core demand, this
//! module sizes each pool for a target aggregate throughput and compares
//! the total cost against homogeneous designs — making Table 9's
//! "improvement over the homogeneous baseline" concrete.

use serde::{Deserialize, Serialize};

use sirius_accel::platform::PlatformKind;
use sirius_accel::service::{service_speedup, ServiceKind};

use crate::design::BASELINE_CORES;
use crate::tco::{monthly_tco, ServerConfig, TcoParams};

/// Demand for one service: queries/sec and the single-core seconds each
/// query costs on the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceDemand {
    /// The service.
    pub service: ServiceKind,
    /// Aggregate arrival rate in queries per second.
    pub qps: f64,
    /// Mean single-core service time per query in seconds.
    pub service_secs: f64,
}

/// The default demand mix: VQ-heavy traffic over the paper's measured
/// single-core service times (ASR ≈ 4.2 s, QA ≈ 10 s, IMM ≈ 5 s).
pub fn default_demand(total_qps: f64) -> Vec<ServiceDemand> {
    vec![
        ServiceDemand {
            service: ServiceKind::AsrGmm,
            qps: total_qps, // every query is spoken
            service_secs: 4.2,
        },
        ServiceDemand {
            service: ServiceKind::Qa,
            qps: total_qps * 26.0 / 42.0, // VQ + VIQ fraction of the input set
            service_secs: 10.0,
        },
        ServiceDemand {
            service: ServiceKind::Imm,
            qps: total_qps * 10.0 / 42.0, // VIQ fraction
            service_secs: 5.0,
        },
    ]
}

/// Sizing of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// The service this pool serves.
    pub service: ServiceKind,
    /// Platform of the pool's servers.
    pub platform: PlatformKind,
    /// Number of servers needed (ceiling of fractional demand).
    pub servers: u64,
    /// Monthly TCO of the pool.
    pub monthly_cost: f64,
}

/// Sizes a pool: how many `platform` servers sustain `demand` at the target
/// utilization (servers run at `utilization` of their capacity, paper
/// Table 7: 45% average).
pub fn size_partition(
    demand: &ServiceDemand,
    platform: PlatformKind,
    utilization: f64,
    params: &TcoParams,
) -> Partition {
    assert!(
        utilization > 0.0 && utilization <= 1.0,
        "utilization in (0,1]"
    );
    // One server's throughput: 4 cores at query parallelism, scaled by the
    // platform's service speedup over a single core.
    let per_core_qps = 1.0 / demand.service_secs;
    let server_qps = match platform {
        PlatformKind::Multicore => per_core_qps * BASELINE_CORES,
        p => per_core_qps * service_speedup(demand.service, p),
    };
    let needed = demand.qps / (server_qps * utilization);
    let servers = needed.ceil().max(1.0) as u64;
    let config = match platform {
        PlatformKind::Multicore => ServerConfig::baseline(),
        p => ServerConfig::with_accelerator(p),
    };
    Partition {
        service: demand.service,
        platform,
        servers,
        monthly_cost: monthly_tco(&config, params).total() * servers as f64,
    }
}

/// A complete datacenter plan: one partition per service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterPlan {
    /// The sized partitions.
    pub partitions: Vec<Partition>,
}

impl DatacenterPlan {
    /// Total servers across partitions.
    pub fn total_servers(&self) -> u64 {
        self.partitions.iter().map(|p| p.servers).sum()
    }

    /// Total monthly cost.
    pub fn monthly_cost(&self) -> f64 {
        self.partitions.iter().map(|p| p.monthly_cost).sum()
    }
}

/// Plans a homogeneous datacenter: every partition uses `platform`.
pub fn homogeneous_plan(
    demands: &[ServiceDemand],
    platform: PlatformKind,
    utilization: f64,
    params: &TcoParams,
) -> DatacenterPlan {
    DatacenterPlan {
        partitions: demands
            .iter()
            .map(|d| size_partition(d, platform, utilization, params))
            .collect(),
    }
}

/// Plans a partitioned heterogeneous datacenter: each service picks the
/// platform minimizing its pool cost.
pub fn heterogeneous_plan(
    demands: &[ServiceDemand],
    candidates: &[PlatformKind],
    utilization: f64,
    params: &TcoParams,
) -> DatacenterPlan {
    DatacenterPlan {
        partitions: demands
            .iter()
            .map(|d| {
                candidates
                    .iter()
                    .map(|&p| size_partition(d, p, utilization, params))
                    .min_by(|a, b| a.monthly_cost.total_cmp(&b.monthly_cost))
                    .expect("at least one candidate")
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TcoParams {
        TcoParams::default()
    }

    #[test]
    fn accelerated_pools_need_fewer_servers() {
        let demand = default_demand(100.0);
        let cmp = homogeneous_plan(&demand, PlatformKind::Multicore, 0.45, &params());
        let gpu = homogeneous_plan(&demand, PlatformKind::Gpu, 0.45, &params());
        let fpga = homogeneous_plan(&demand, PlatformKind::Fpga, 0.45, &params());
        // The QA pool limits the GPU's aggregate gain (its QA speedup is
        // modest); the FPGA shrinks every pool substantially.
        assert!(gpu.total_servers() * 10 < cmp.total_servers() * 6);
        assert!(fpga.total_servers() * 10 < cmp.total_servers() * 4);
    }

    #[test]
    fn accelerated_dcs_cost_less_at_scale() {
        let demand = default_demand(200.0);
        let cmp = homogeneous_plan(&demand, PlatformKind::Multicore, 0.45, &params());
        let gpu = homogeneous_plan(&demand, PlatformKind::Gpu, 0.45, &params());
        assert!(
            gpu.monthly_cost() < cmp.monthly_cost(),
            "gpu {} vs cmp {}",
            gpu.monthly_cost(),
            cmp.monthly_cost()
        );
    }

    #[test]
    fn heterogeneous_plan_is_no_worse_than_any_homogeneous_plan() {
        let demand = default_demand(150.0);
        let hetero = heterogeneous_plan(&demand, &PlatformKind::ALL, 0.45, &params());
        for p in PlatformKind::ALL {
            let homo = homogeneous_plan(&demand, p, 0.45, &params());
            assert!(
                hetero.monthly_cost() <= homo.monthly_cost() + 1e-9,
                "hetero {} vs {p} {}",
                hetero.monthly_cost(),
                homo.monthly_cost()
            );
        }
    }

    #[test]
    fn hetero_gains_over_best_homogeneous_are_modest() {
        // Paper Section 5.2.4: "the partitioned heterogeneity in our study
        // does not provide much benefit over the homogeneous design."
        let demand = default_demand(500.0);
        let hetero = heterogeneous_plan(&demand, &PlatformKind::ALL, 0.45, &params());
        let best_homo = PlatformKind::ALL
            .iter()
            .map(|&p| homogeneous_plan(&demand, p, 0.45, &params()).monthly_cost())
            .fold(f64::INFINITY, f64::min);
        let gain = best_homo / hetero.monthly_cost();
        assert!(
            (1.0..1.6).contains(&gain),
            "heterogeneous gain {gain:.2} should be modest"
        );
    }

    #[test]
    fn pool_sizes_scale_linearly_with_load() {
        let d1 = default_demand(100.0);
        let d10 = default_demand(1000.0);
        let p1 = homogeneous_plan(&d1, PlatformKind::Gpu, 0.45, &params());
        let p10 = homogeneous_plan(&d10, PlatformKind::Gpu, 0.45, &params());
        let ratio = p10.total_servers() as f64 / p1.total_servers() as f64;
        assert!((8.0..=12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "utilization in (0,1]")]
    fn zero_utilization_panics() {
        let demand = default_demand(10.0);
        let _ = size_partition(&demand[0], PlatformKind::Gpu, 0.0, &params());
    }
}
